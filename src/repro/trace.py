"""``python -m repro.trace`` — analyse an exported trace file.

Examples::

    python -m repro.scenarios --run fleet-throttled-rebalance --trace trace.json
    python -m repro.trace trace.json                  # critical-path breakdown
    python -m repro.trace trace.json --top 20
    python -m repro.trace trace.json --chrome chrome.json   # Perfetto-loadable
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.obs.analysis import render_breakdown
from repro.obs.export import TRACE_FORMAT, to_chrome


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Print a per-query critical-path breakdown of an exported "
        "trace, and optionally convert it to Chrome trace-event format.",
    )
    parser.add_argument("file", type=Path, help="trace file written by --trace")
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="number of slowest queries to show (default: 10)",
    )
    parser.add_argument(
        "--chrome",
        type=Path,
        default=None,
        metavar="OUT",
        help="also write a Chrome trace-event conversion to OUT "
        "(load in Perfetto or chrome://tracing)",
    )
    return parser


def load_trace(path: Path) -> dict:
    """Load and sanity-check a trace document."""
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ConfigurationError(f"cannot read trace file {path}: {error}") from error
    if not isinstance(document, dict) or document.get("format") != TRACE_FORMAT:
        raise ConfigurationError(
            f"{path} is not a {TRACE_FORMAT} document; export one with "
            "python -m repro.scenarios --run <name> --trace <file>"
        )
    return document


def main(argv: Optional[Sequence[str]] = None) -> int:
    arguments = build_parser().parse_args(argv)
    if arguments.top < 1:
        raise ConfigurationError(f"--top must be >= 1, got {arguments.top}")
    document = load_trace(arguments.file)
    if arguments.chrome is not None:
        arguments.chrome.write_text(
            json.dumps(to_chrome(document), indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {arguments.chrome}")
    print(render_breakdown(document, top=arguments.top))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        sys.exit(2)
    except BrokenPipeError:
        # Output was piped to a consumer that closed early (e.g. head).
        sys.exit(0)
