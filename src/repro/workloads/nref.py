"""A protein-database workload in the spirit of the NREF benchmark.

The paper's mixed workload includes "a 4-table join that counts protein
sequences matching a specific criteria from NREF" over a 13 GB database.
This module provides a synthetic protein reference database — proteins,
source organisms, sequences and annotations — and the corresponding counting
join.
"""

from __future__ import annotations

from typing import Dict, Union

from repro.engine.catalog import Catalog
from repro.engine.predicate import Comparison, Literal, col, conjunction, eq, in_list
from repro.engine.query import AggregateSpec, JoinCondition, Query
from repro.engine.relation import Relation
from repro.engine.schema import Column, TableSchema
from repro.engine.types import DataType
from repro.exceptions import ConfigurationError
from repro.workloads.datagen import DataGenerator, ScaleProfile, TableProfile

TAXONOMY_DOMAINS = ["Bacteria", "Archaea", "Eukaryota", "Viruses"]
ANNOTATION_KEYWORDS = ["kinase", "transferase", "hydrolase", "ligase", "receptor", "membrane"]


def _schemas() -> Dict[str, TableSchema]:
    return {
        "organism": TableSchema(
            "organism",
            [
                Column("org_id", DataType.INTEGER),
                Column("org_name", DataType.STRING),
                Column("org_domain", DataType.STRING),
            ],
        ),
        "protein": TableSchema(
            "protein",
            [
                Column("prot_id", DataType.INTEGER),
                Column("prot_name", DataType.STRING),
                Column("prot_org_id", DataType.INTEGER),
                Column("prot_length", DataType.INTEGER),
            ],
        ),
        "sequence": TableSchema(
            "sequence",
            [
                Column("seq_id", DataType.INTEGER),
                Column("seq_prot_id", DataType.INTEGER),
                Column("seq_length", DataType.INTEGER),
                Column("seq_gc_content", DataType.FLOAT),
            ],
        ),
        "annotation": TableSchema(
            "annotation",
            [
                Column("ann_id", DataType.INTEGER),
                Column("ann_prot_id", DataType.INTEGER),
                Column("ann_keyword", DataType.STRING),
                Column("ann_confidence", DataType.FLOAT),
            ],
        ),
    }


SCALES: Dict[str, ScaleProfile] = {
    "tiny": ScaleProfile(
        "tiny",
        {
            "organism": TableProfile(1, 12),
            "protein": TableProfile(2, 30),
            "sequence": TableProfile(2, 30),
            "annotation": TableProfile(2, 40),
        },
    ),
    "small": ScaleProfile(
        "small",
        {
            "organism": TableProfile(1, 20),
            "protein": TableProfile(3, 40),
            "sequence": TableProfile(3, 40),
            "annotation": TableProfile(3, 60),
        },
    ),
    # The paper's NREF database is ~13 GB: ~13 objects in total.
    "paper": ScaleProfile(
        "paper",
        {
            "organism": TableProfile(1, 30),
            "protein": TableProfile(4, 60),
            "sequence": TableProfile(4, 60),
            "annotation": TableProfile(4, 80),
        },
    ),
}


def resolve_scale(scale: Union[str, ScaleProfile]) -> ScaleProfile:
    """Look up a named scale profile or pass an explicit one through."""
    if isinstance(scale, ScaleProfile):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise ConfigurationError(
            f"unknown NREF scale {scale!r}; expected one of {sorted(SCALES)}"
        ) from None


def build_catalog(
    scale: Union[str, ScaleProfile] = "small",
    seed: int = 23,
    catalog: Catalog | None = None,
) -> Catalog:
    """Generate the protein reference database, optionally into an existing catalog."""
    profile = resolve_scale(scale)
    generator = DataGenerator(seed)
    schemas = _schemas()
    catalog = catalog if catalog is not None else Catalog()

    organism_rows = [
        {
            "org_id": index,
            "org_name": f"Organism#{index}",
            "org_domain": generator.weighted_choice(TAXONOMY_DOMAINS, [0.5, 0.1, 0.3, 0.1]),
        }
        for index in range(profile.profile("organism").total_rows)
    ]
    protein_rows = [
        {
            "prot_id": index,
            "prot_name": f"Protein#{index}",
            "prot_org_id": generator.integer(0, len(organism_rows) - 1),
            "prot_length": generator.integer(50, 3000),
        }
        for index in range(profile.profile("protein").total_rows)
    ]
    sequence_rows = [
        {
            "seq_id": index,
            "seq_prot_id": index % len(protein_rows),
            "seq_length": generator.integer(50, 3000),
            "seq_gc_content": generator.decimal(0.2, 0.8),
        }
        for index in range(profile.profile("sequence").total_rows)
    ]
    annotation_rows = [
        {
            "ann_id": index,
            "ann_prot_id": generator.integer(0, len(protein_rows) - 1),
            "ann_keyword": generator.choice(ANNOTATION_KEYWORDS),
            "ann_confidence": generator.decimal(0.0, 1.0),
        }
        for index in range(profile.profile("annotation").total_rows)
    ]

    rows_by_table = {
        "organism": organism_rows,
        "protein": protein_rows,
        "sequence": sequence_rows,
        "annotation": annotation_rows,
    }
    for table, rows in rows_by_table.items():
        catalog.register(
            Relation.from_rows(schemas[table], rows, profile.profile(table).rows_per_segment)
        )
    return catalog


def sequence_count() -> Query:
    """The 4-table counting join of the paper's NREF client.

    Counts protein sequences from bacterial or archaeal organisms annotated
    with enzymatic keywords, grouped by taxonomic domain.
    """
    return Query(
        name="nref_sequence_count",
        tables=["protein", "organism", "sequence", "annotation"],
        joins=[
            JoinCondition("protein", "prot_org_id", "organism", "org_id"),
            JoinCondition("sequence", "seq_prot_id", "protein", "prot_id"),
            JoinCondition("annotation", "ann_prot_id", "protein", "prot_id"),
        ],
        filters={
            "organism": in_list("org_domain", ["Bacteria", "Archaea"]),
            "annotation": conjunction(
                [
                    in_list("ann_keyword", ["kinase", "transferase", "hydrolase"]),
                    Comparison(">=", col("ann_confidence"), Literal(0.2)),
                ]
            ),
            "sequence": Comparison(">=", col("seq_length"), Literal(100)),
        },
        group_by=["org_domain"],
        aggregates=[
            AggregateSpec("count", None, "matching_sequences"),
            AggregateSpec("avg", col("seq_length"), "avg_sequence_length"),
        ],
        order_by=["org_domain"],
    )


def long_protein_report() -> Query:
    """Secondary NREF-style query: long proteins per organism domain."""
    return Query(
        name="nref_long_protein_report",
        tables=["protein", "organism"],
        joins=[JoinCondition("protein", "prot_org_id", "organism", "org_id")],
        filters={"protein": Comparison(">=", col("prot_length"), Literal(1000))},
        group_by=["org_domain"],
        aggregates=[
            AggregateSpec("count", None, "long_proteins"),
            AggregateSpec("max", col("prot_length"), "longest"),
        ],
        order_by=["org_domain"],
    )


QUERIES = {"sequence_count": sequence_count, "long_protein_report": long_protein_report}


def query(name: str) -> Query:
    """Build the NREF query registered under ``name``."""
    try:
        return QUERIES[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown NREF query {name!r}; expected one of {sorted(QUERIES)}"
        ) from None
