"""Synthetic workloads used in the paper's evaluation.

Four benchmark suites are modelled:

* :mod:`repro.workloads.tpch` — a TPC-H-like schema and data generator with
  the queries the paper runs (Q1, Q3, Q5, Q6, Q12).
* :mod:`repro.workloads.ssb` — a Star Schema Benchmark-like suite (Q1.1,
  Q2.1, Q3.1).
* :mod:`repro.workloads.mrbench` — the "analytics benchmark" of Pavlo et al.
  (rankings/uservisits join task).
* :mod:`repro.workloads.nref` — a protein-database workload in the spirit of
  the NREF benchmark (4-table join counting sequences matching a criterion).

Data is generated deterministically from a seed.  Segment counts are scaled
to mirror the paper's object counts (e.g. TPC-H Q12 at "SF-50" touches ~57
one-gigabyte objects) while row counts stay small enough to execute real
joins quickly; the cost model — not the Python row count — is what converts
work into simulated seconds.
"""

from repro.workloads.datagen import DataGenerator, TableProfile, ScaleProfile
from repro.workloads import tpch, ssb, mrbench, nref

__all__ = [
    "DataGenerator",
    "ScaleProfile",
    "TableProfile",
    "mrbench",
    "nref",
    "ssb",
    "tpch",
]
