"""A Star Schema Benchmark (SSB)-like workload.

The paper uses SSB at SF-50 as one of the mixed-workload clients (Figure 8).
SSB denormalises TPC-H into one large ``lineorder`` fact table and four
dimension tables; analytical queries join the fact table with a subset of
dimensions under selective filters.  Table and column names are prefixed so
the workload can coexist with the TPC-H tables inside a single catalog.
"""

from __future__ import annotations

from typing import Dict, Union

from repro.engine.catalog import Catalog
from repro.engine.predicate import (
    Arithmetic,
    Between,
    Comparison,
    Literal,
    between,
    col,
    conjunction,
    eq,
)
from repro.engine.query import AggregateSpec, JoinCondition, Query
from repro.engine.relation import Relation
from repro.engine.schema import Column, TableSchema
from repro.engine.types import DataType
from repro.exceptions import ConfigurationError
from repro.workloads.datagen import DataGenerator, ScaleProfile, TableProfile

SSB_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
SSB_YEARS = list(range(1992, 1999))


def _schemas() -> Dict[str, TableSchema]:
    return {
        "dates": TableSchema(
            "dates",
            [
                Column("d_datekey", DataType.INTEGER),
                Column("d_year", DataType.INTEGER),
                Column("d_month", DataType.INTEGER),
                Column("d_weeknum", DataType.INTEGER),
            ],
        ),
        "ssb_customer": TableSchema(
            "ssb_customer",
            [
                Column("sc_custkey", DataType.INTEGER),
                Column("sc_region", DataType.STRING),
                Column("sc_nation", DataType.STRING),
                Column("sc_city", DataType.STRING),
            ],
        ),
        "ssb_supplier": TableSchema(
            "ssb_supplier",
            [
                Column("ss_suppkey", DataType.INTEGER),
                Column("ss_region", DataType.STRING),
                Column("ss_nation", DataType.STRING),
                Column("ss_city", DataType.STRING),
            ],
        ),
        "ssb_part": TableSchema(
            "ssb_part",
            [
                Column("sp_partkey", DataType.INTEGER),
                Column("sp_mfgr", DataType.STRING),
                Column("sp_category", DataType.STRING),
                Column("sp_brand", DataType.STRING),
            ],
        ),
        "lineorder": TableSchema(
            "lineorder",
            [
                Column("lo_orderkey", DataType.INTEGER),
                Column("lo_custkey", DataType.INTEGER),
                Column("lo_partkey", DataType.INTEGER),
                Column("lo_suppkey", DataType.INTEGER),
                Column("lo_orderdatekey", DataType.INTEGER),
                Column("lo_quantity", DataType.INTEGER),
                Column("lo_extendedprice", DataType.FLOAT),
                Column("lo_discount", DataType.FLOAT),
                Column("lo_revenue", DataType.FLOAT),
                Column("lo_supplycost", DataType.FLOAT),
            ],
        ),
    }


SCALES: Dict[str, ScaleProfile] = {
    "tiny": ScaleProfile(
        "tiny",
        {
            "dates": TableProfile(1, 24),
            "ssb_customer": TableProfile(1, 16),
            "ssb_supplier": TableProfile(1, 8),
            "ssb_part": TableProfile(1, 12),
            "lineorder": TableProfile(4, 40),
        },
    ),
    "small": ScaleProfile(
        "small",
        {
            "dates": TableProfile(1, 48),
            "ssb_customer": TableProfile(1, 30),
            "ssb_supplier": TableProfile(1, 15),
            "ssb_part": TableProfile(1, 24),
            "lineorder": TableProfile(10, 60),
        },
    ),
    # SF-50 equivalent: the lineorder fact table dominates (~50 objects).
    "sf50": ScaleProfile(
        "sf50",
        {
            "dates": TableProfile(1, 60),
            "ssb_customer": TableProfile(2, 40),
            "ssb_supplier": TableProfile(1, 24),
            "ssb_part": TableProfile(2, 32),
            "lineorder": TableProfile(48, 80),
        },
    ),
}


def resolve_scale(scale: Union[str, ScaleProfile]) -> ScaleProfile:
    """Look up a named SSB scale profile or pass an explicit one through."""
    if isinstance(scale, ScaleProfile):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise ConfigurationError(
            f"unknown SSB scale {scale!r}; expected one of {sorted(SCALES)}"
        ) from None


def build_catalog(
    scale: Union[str, ScaleProfile] = "small",
    seed: int = 7,
    catalog: Catalog | None = None,
) -> Catalog:
    """Generate the SSB-like dataset, optionally into an existing catalog."""
    profile = resolve_scale(scale)
    generator = DataGenerator(seed)
    schemas = _schemas()
    catalog = catalog if catalog is not None else Catalog()

    dates_rows = [
        {
            "d_datekey": index,
            "d_year": SSB_YEARS[index % len(SSB_YEARS)],
            "d_month": (index % 12) + 1,
            "d_weeknum": (index % 52) + 1,
        }
        for index in range(profile.profile("dates").total_rows)
    ]
    customer_rows = [
        {
            "sc_custkey": index,
            "sc_region": generator.choice(SSB_REGIONS),
            "sc_nation": f"NATION#{generator.integer(0, 24)}",
            "sc_city": f"CITY#{generator.integer(0, 9)}",
        }
        for index in range(profile.profile("ssb_customer").total_rows)
    ]
    supplier_rows = [
        {
            "ss_suppkey": index,
            "ss_region": generator.choice(SSB_REGIONS),
            "ss_nation": f"NATION#{generator.integer(0, 24)}",
            "ss_city": f"CITY#{generator.integer(0, 9)}",
        }
        for index in range(profile.profile("ssb_supplier").total_rows)
    ]
    part_rows = [
        {
            "sp_partkey": index,
            "sp_mfgr": f"MFGR#{index % 5}",
            "sp_category": f"MFGR#{index % 5}{index % 5}",
            "sp_brand": f"MFGR#{index % 5}{index % 5}{index % 40}",
        }
        for index in range(profile.profile("ssb_part").total_rows)
    ]
    lineorder_rows = []
    for index in range(profile.profile("lineorder").total_rows):
        quantity = generator.integer(1, 50)
        price = generator.decimal(900.0, 50000.0)
        discount = generator.decimal(0.0, 0.10)
        lineorder_rows.append(
            {
                "lo_orderkey": index // 4,
                "lo_custkey": generator.integer(0, len(customer_rows) - 1),
                "lo_partkey": generator.integer(0, len(part_rows) - 1),
                "lo_suppkey": generator.integer(0, len(supplier_rows) - 1),
                "lo_orderdatekey": generator.integer(0, len(dates_rows) - 1),
                "lo_quantity": quantity,
                "lo_extendedprice": price,
                "lo_discount": discount,
                "lo_revenue": round(price * (1 - discount), 2),
                "lo_supplycost": generator.decimal(100.0, 1000.0),
            }
        )

    rows_by_table = {
        "dates": dates_rows,
        "ssb_customer": customer_rows,
        "ssb_supplier": supplier_rows,
        "ssb_part": part_rows,
        "lineorder": lineorder_rows,
    }
    for table, rows in rows_by_table.items():
        catalog.register(
            Relation.from_rows(schemas[table], rows, profile.profile(table).rows_per_segment)
        )
    return catalog


def q1_1() -> Query:
    """SSB Q1.1: revenue gained from discount/quantity bands in one year."""
    revenue = Arithmetic("*", col("lo_extendedprice"), col("lo_discount"))
    return Query(
        name="ssb_q1_1",
        tables=["lineorder", "dates"],
        joins=[JoinCondition("lineorder", "lo_orderdatekey", "dates", "d_datekey")],
        filters={
            "dates": eq("d_year", 1993),
            "lineorder": conjunction(
                [
                    Between(col("lo_discount"), 0.01, 0.06, inclusive=True),
                    Comparison("<", col("lo_quantity"), Literal(25)),
                ]
            ),
        },
        group_by=[],
        aggregates=[
            AggregateSpec("sum", revenue, "revenue"),
            AggregateSpec("count", None, "matching_lineorders"),
        ],
    )


def q2_1() -> Query:
    """SSB Q2.1: revenue by year and brand for one part category and region."""
    return Query(
        name="ssb_q2_1",
        tables=["lineorder", "dates", "ssb_part", "ssb_supplier"],
        joins=[
            JoinCondition("lineorder", "lo_orderdatekey", "dates", "d_datekey"),
            JoinCondition("lineorder", "lo_partkey", "ssb_part", "sp_partkey"),
            JoinCondition("lineorder", "lo_suppkey", "ssb_supplier", "ss_suppkey"),
        ],
        filters={
            "ssb_part": eq("sp_category", "MFGR#11"),
            "ssb_supplier": eq("ss_region", "AMERICA"),
        },
        group_by=["d_year", "sp_brand"],
        aggregates=[AggregateSpec("sum", col("lo_revenue"), "revenue")],
        order_by=["d_year", "sp_brand"],
    )


def q3_1() -> Query:
    """SSB Q3.1: revenue flows between customer and supplier nations in Asia."""
    return Query(
        name="ssb_q3_1",
        tables=["lineorder", "dates", "ssb_customer", "ssb_supplier"],
        joins=[
            JoinCondition("lineorder", "lo_orderdatekey", "dates", "d_datekey"),
            JoinCondition("lineorder", "lo_custkey", "ssb_customer", "sc_custkey"),
            JoinCondition("lineorder", "lo_suppkey", "ssb_supplier", "ss_suppkey"),
        ],
        filters={
            "ssb_customer": eq("sc_region", "ASIA"),
            "ssb_supplier": eq("ss_region", "ASIA"),
            "dates": between("d_year", 1992, 1998),
        },
        group_by=["sc_nation", "ss_nation", "d_year"],
        aggregates=[AggregateSpec("sum", col("lo_revenue"), "revenue")],
        order_by=["d_year"],
    )


QUERIES = {"q1_1": q1_1, "q2_1": q2_1, "q3_1": q3_1}


def query(name: str) -> Query:
    """Build the SSB query registered under ``name`` (e.g. ``"q1_1"``)."""
    try:
        return QUERIES[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown SSB query {name!r}; expected one of {sorted(QUERIES)}"
        ) from None
