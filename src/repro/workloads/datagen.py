"""Deterministic synthetic data generation utilities shared by all workloads."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.engine.relation import Relation
from repro.engine.schema import TableSchema
from repro.engine.types import date_to_ordinal
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class TableProfile:
    """Size profile of one table: how many segments and rows per segment."""

    num_segments: int
    rows_per_segment: int

    def __post_init__(self) -> None:
        if self.num_segments <= 0:
            raise ConfigurationError("num_segments must be positive")
        if self.rows_per_segment <= 0:
            raise ConfigurationError("rows_per_segment must be positive")

    @property
    def total_rows(self) -> int:
        """Total number of rows the table will contain."""
        return self.num_segments * self.rows_per_segment


@dataclass(frozen=True)
class ScaleProfile:
    """A named collection of table profiles (e.g. the SF-50 equivalent)."""

    name: str
    tables: Mapping[str, TableProfile]

    def profile(self, table: str) -> TableProfile:
        """Profile for ``table`` or raise :class:`ConfigurationError`."""
        try:
            return self.tables[table]
        except KeyError:
            raise ConfigurationError(
                f"scale profile {self.name!r} does not define table {table!r}"
            ) from None

    def total_segments(self, tables: Optional[Sequence[str]] = None) -> int:
        """Total number of segments across ``tables`` (default: all)."""
        names = tables if tables is not None else list(self.tables)
        return sum(self.profile(name).num_segments for name in names)


class DataGenerator:
    """Seeded random helper producing repeatable synthetic rows."""

    def __init__(self, seed: int = 42) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def reset(self) -> None:
        """Restart the generator from its seed (fresh deterministic stream)."""
        self._random = random.Random(self.seed)

    # ------------------------------------------------------------------ #
    # Primitive draws
    # ------------------------------------------------------------------ #
    def integer(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]``."""
        return self._random.randint(low, high)

    def decimal(self, low: float, high: float, digits: int = 2) -> float:
        """Uniform float in ``[low, high)`` rounded to ``digits`` decimals."""
        return round(self._random.uniform(low, high), digits)

    def choice(self, values: Sequence):
        """Uniform choice from ``values``."""
        return self._random.choice(values)

    def weighted_choice(self, values: Sequence, weights: Sequence[float]):
        """Weighted choice from ``values``."""
        return self._random.choices(values, weights=weights, k=1)[0]

    def boolean(self, probability_true: float = 0.5) -> bool:
        """Bernoulli draw."""
        return self._random.random() < probability_true

    def date_ordinal(self, start: str, end: str) -> int:
        """Uniform date (as ordinal) between two ISO dates, inclusive."""
        low = date_to_ordinal(start)
        high = date_to_ordinal(end)
        if high < low:
            raise ConfigurationError(f"date range is inverted: {start} .. {end}")
        return self._random.randint(low, high)

    def string_from(self, prefix: str, cardinality: int) -> str:
        """A string of the form ``prefix#k`` with ``k`` uniform in [0, cardinality)."""
        return f"{prefix}#{self._random.randrange(cardinality)}"

    # ------------------------------------------------------------------ #
    # Table building
    # ------------------------------------------------------------------ #
    def build_relation(
        self,
        schema: TableSchema,
        profile: TableProfile,
        row_factory: Callable[[int], Dict[str, object]],
        validate: bool = False,
    ) -> Relation:
        """Create a relation of ``profile.total_rows`` rows using ``row_factory``.

        ``row_factory`` receives the global row index and returns a row dict.
        """
        rows: List[Dict[str, object]] = [row_factory(index) for index in range(profile.total_rows)]
        return Relation.from_rows(
            schema, rows, rows_per_segment=profile.rows_per_segment, validate=validate
        )
