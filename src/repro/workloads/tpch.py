"""A TPC-H-like workload.

The paper's main experiments run TPC-H at scale factors 50 and 100, where
each relation is stored as a set of 1 GB segments (objects).  This module
recreates the *shape* of that setup: the same eight relations, foreign-key
relationships, and per-relation object counts proportional to the paper's
(e.g. Q12 at "SF-50" touches ~57 objects, the whole SF-100 dataset has ~140),
while keeping the synthetic row counts small enough that the joins run in
milliseconds.  The queries are faithful simplifications of the TPC-H queries
the paper uses (Q1, Q3, Q5, Q6 and Q12) expressed against the
:class:`~repro.engine.query.Query` API.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.engine.catalog import Catalog
from repro.engine.predicate import (
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Literal,
    between,
    col,
    conjunction,
    eq,
    in_list,
    lit,
)
from repro.engine.query import AggregateSpec, JoinCondition, Query
from repro.engine.schema import Column, TableSchema
from repro.engine.types import DataType, date_to_ordinal
from repro.exceptions import ConfigurationError
from repro.workloads.datagen import DataGenerator, ScaleProfile, TableProfile

# --------------------------------------------------------------------------- #
# Schema
# --------------------------------------------------------------------------- #
REGION_NAMES = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NATION_COUNT = 25
SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
MARKET_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
ORDER_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
RETURN_FLAGS = ["A", "N", "R"]
LINE_STATUSES = ["F", "O"]


def _schemas() -> Dict[str, TableSchema]:
    return {
        "region": TableSchema(
            "region",
            [Column("r_regionkey", DataType.INTEGER), Column("r_name", DataType.STRING)],
        ),
        "nation": TableSchema(
            "nation",
            [
                Column("n_nationkey", DataType.INTEGER),
                Column("n_name", DataType.STRING),
                Column("n_regionkey", DataType.INTEGER),
            ],
        ),
        "supplier": TableSchema(
            "supplier",
            [
                Column("s_suppkey", DataType.INTEGER),
                Column("s_name", DataType.STRING),
                Column("s_nationkey", DataType.INTEGER),
                Column("s_acctbal", DataType.FLOAT),
            ],
        ),
        "customer": TableSchema(
            "customer",
            [
                Column("c_custkey", DataType.INTEGER),
                Column("c_name", DataType.STRING),
                Column("c_nationkey", DataType.INTEGER),
                Column("c_mktsegment", DataType.STRING),
                Column("c_acctbal", DataType.FLOAT),
            ],
        ),
        "part": TableSchema(
            "part",
            [
                Column("p_partkey", DataType.INTEGER),
                Column("p_name", DataType.STRING),
                Column("p_brand", DataType.STRING),
                Column("p_type", DataType.STRING),
                Column("p_retailprice", DataType.FLOAT),
            ],
        ),
        "partsupp": TableSchema(
            "partsupp",
            [
                Column("ps_partkey", DataType.INTEGER),
                Column("ps_suppkey", DataType.INTEGER),
                Column("ps_availqty", DataType.INTEGER),
                Column("ps_supplycost", DataType.FLOAT),
            ],
        ),
        "orders": TableSchema(
            "orders",
            [
                Column("o_orderkey", DataType.INTEGER),
                Column("o_custkey", DataType.INTEGER),
                Column("o_orderdate", DataType.DATE),
                Column("o_orderpriority", DataType.STRING),
                Column("o_shippriority", DataType.INTEGER),
                Column("o_totalprice", DataType.FLOAT),
            ],
        ),
        "lineitem": TableSchema(
            "lineitem",
            [
                Column("l_orderkey", DataType.INTEGER),
                Column("l_partkey", DataType.INTEGER),
                Column("l_suppkey", DataType.INTEGER),
                Column("l_quantity", DataType.INTEGER),
                Column("l_extendedprice", DataType.FLOAT),
                Column("l_discount", DataType.FLOAT),
                Column("l_tax", DataType.FLOAT),
                Column("l_returnflag", DataType.STRING),
                Column("l_linestatus", DataType.STRING),
                Column("l_shipdate", DataType.DATE),
                Column("l_commitdate", DataType.DATE),
                Column("l_receiptdate", DataType.DATE),
                Column("l_shipmode", DataType.STRING),
            ],
        ),
    }


# --------------------------------------------------------------------------- #
# Scale profiles (segment counts mirror the paper's object counts)
# --------------------------------------------------------------------------- #
SCALES: Dict[str, ScaleProfile] = {
    # Small profile for unit tests: every code path, trivial runtimes.
    "tiny": ScaleProfile(
        "tiny",
        {
            "region": TableProfile(1, 5),
            "nation": TableProfile(1, 25),
            "supplier": TableProfile(1, 8),
            "customer": TableProfile(1, 16),
            "part": TableProfile(1, 12),
            "partsupp": TableProfile(1, 24),
            "orders": TableProfile(2, 24),
            "lineitem": TableProfile(4, 40),
        },
    ),
    # Mid-size profile used by integration tests and the examples.
    "small": ScaleProfile(
        "small",
        {
            "region": TableProfile(1, 5),
            "nation": TableProfile(1, 25),
            "supplier": TableProfile(1, 12),
            "customer": TableProfile(2, 24),
            "part": TableProfile(1, 20),
            "partsupp": TableProfile(2, 30),
            "orders": TableProfile(4, 40),
            "lineitem": TableProfile(12, 60),
        },
    ),
    # "SF-50": ~71 objects in total, TPC-H Q12 touches 57 of them, matching
    # the paper's 57 group switches / segments for Q12 at SF-50.
    "sf50": ScaleProfile(
        "sf50",
        {
            "region": TableProfile(1, 5),
            "nation": TableProfile(1, 25),
            "supplier": TableProfile(1, 20),
            "customer": TableProfile(2, 40),
            "part": TableProfile(2, 30),
            "partsupp": TableProfile(7, 40),
            "orders": TableProfile(11, 60),
            "lineitem": TableProfile(46, 80),
        },
    ),
    # "SF-100": ~140 objects in total; Q5 reads ~122 of them and generates
    # ~16k subplans, matching the orders of magnitude reported in Figure 11c.
    "sf100": ScaleProfile(
        "sf100",
        {
            "region": TableProfile(1, 5),
            "nation": TableProfile(1, 25),
            "supplier": TableProfile(2, 12),
            "customer": TableProfile(4, 20),
            "part": TableProfile(4, 16),
            "partsupp": TableProfile(14, 20),
            "orders": TableProfile(22, 30),
            "lineitem": TableProfile(92, 40),
        },
    ),
    # "SF-1000": an order of magnitude past sf100 where it matters for Q5 —
    # 920 lineitem + 24 orders segments make 4*24*920*2 = 176,640 subplans
    # (vs ~16k at sf100), while the dimension tables stay sf100-sized so the
    # whole Q5 working set (~952 objects) still fits one large cache.
    "sf1000": ScaleProfile(
        "sf1000",
        {
            "region": TableProfile(1, 5),
            "nation": TableProfile(1, 25),
            "supplier": TableProfile(2, 12),
            "customer": TableProfile(4, 20),
            "part": TableProfile(4, 16),
            "partsupp": TableProfile(14, 20),
            "orders": TableProfile(24, 30),
            "lineitem": TableProfile(920, 40),
        },
    ),
    # "mkeys": a key-population stress profile for the placement/fleet layer,
    # not a faithful TPC-H size: lineitem is shredded into 125k single-row
    # segments so a handful of single-table tenants put a million objects on
    # a fleet, while every other table stays tiny to keep generation cheap.
    "mkeys": ScaleProfile(
        "mkeys",
        {
            "region": TableProfile(1, 5),
            "nation": TableProfile(1, 25),
            "supplier": TableProfile(1, 8),
            "customer": TableProfile(1, 8),
            "part": TableProfile(1, 8),
            "partsupp": TableProfile(1, 8),
            "orders": TableProfile(1, 32),
            "lineitem": TableProfile(125000, 1),
        },
    ),
}

#: Proportion of line items whose supplier is in the customer's nation; keeps
#: TPC-H Q5 (which requires ``c_nationkey = s_nationkey``) selective but
#: non-empty at small scales.
_LOCAL_SUPPLIER_PROBABILITY = 0.35


def resolve_scale(scale: Union[str, ScaleProfile]) -> ScaleProfile:
    """Look up a named scale profile or pass an explicit one through."""
    if isinstance(scale, ScaleProfile):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise ConfigurationError(
            f"unknown TPC-H scale {scale!r}; expected one of {sorted(SCALES)}"
        ) from None


# --------------------------------------------------------------------------- #
# Data generation
# --------------------------------------------------------------------------- #
def build_catalog(
    scale: Union[str, ScaleProfile] = "small",
    seed: int = 42,
    catalog: Optional[Catalog] = None,
) -> Catalog:
    """Generate a TPC-H-like database, optionally into an existing catalog."""
    profile = resolve_scale(scale)
    generator = DataGenerator(seed)
    schemas = _schemas()
    catalog = catalog if catalog is not None else Catalog()

    region_rows = [
        {"r_regionkey": index, "r_name": REGION_NAMES[index % len(REGION_NAMES)]}
        for index in range(profile.profile("region").total_rows)
    ]
    nation_rows = [
        {
            "n_nationkey": index,
            "n_name": f"NATION#{index}",
            "n_regionkey": index % len(REGION_NAMES),
        }
        for index in range(profile.profile("nation").total_rows)
    ]
    num_nations = len(nation_rows)

    supplier_profile = profile.profile("supplier")
    supplier_rows = [
        {
            "s_suppkey": index,
            "s_name": f"Supplier#{index}",
            "s_nationkey": generator.integer(0, num_nations - 1),
            "s_acctbal": generator.decimal(-999.0, 9999.0),
        }
        for index in range(supplier_profile.total_rows)
    ]
    suppliers_by_nation: Dict[int, List[int]] = {}
    for row in supplier_rows:
        suppliers_by_nation.setdefault(row["s_nationkey"], []).append(row["s_suppkey"])

    customer_profile = profile.profile("customer")
    customer_rows = [
        {
            "c_custkey": index,
            "c_name": f"Customer#{index}",
            "c_nationkey": generator.integer(0, num_nations - 1),
            "c_mktsegment": generator.choice(MARKET_SEGMENTS),
            "c_acctbal": generator.decimal(-999.0, 9999.0),
        }
        for index in range(customer_profile.total_rows)
    ]

    part_profile = profile.profile("part")
    part_rows = [
        {
            "p_partkey": index,
            "p_name": f"Part#{index}",
            "p_brand": f"Brand#{index % 5}",
            "p_type": generator.choice(["ECONOMY", "STANDARD", "PROMO", "LARGE", "SMALL"]),
            "p_retailprice": generator.decimal(900.0, 2000.0),
        }
        for index in range(part_profile.total_rows)
    ]

    partsupp_profile = profile.profile("partsupp")
    partsupp_rows = [
        {
            "ps_partkey": index % len(part_rows),
            "ps_suppkey": (index * 7 + 3) % len(supplier_rows),
            "ps_availqty": generator.integer(1, 9999),
            "ps_supplycost": generator.decimal(1.0, 1000.0),
        }
        for index in range(partsupp_profile.total_rows)
    ]

    orders_profile = profile.profile("orders")
    orders_rows = []
    for index in range(orders_profile.total_rows):
        orders_rows.append(
            {
                "o_orderkey": index,
                "o_custkey": generator.integer(0, len(customer_rows) - 1),
                "o_orderdate": generator.date_ordinal("1992-01-01", "1998-08-02"),
                "o_orderpriority": generator.choice(ORDER_PRIORITIES),
                "o_shippriority": 0,
                "o_totalprice": generator.decimal(1000.0, 400000.0),
            }
        )

    lineitem_profile = profile.profile("lineitem")
    lineitem_rows = []
    for index in range(lineitem_profile.total_rows):
        order = orders_rows[index % len(orders_rows)]
        customer = customer_rows[order["o_custkey"]]
        local_suppliers = suppliers_by_nation.get(customer["c_nationkey"], [])
        if local_suppliers and generator.boolean(_LOCAL_SUPPLIER_PROBABILITY):
            suppkey = generator.choice(local_suppliers)
        else:
            suppkey = generator.integer(0, len(supplier_rows) - 1)
        ship_date = order["o_orderdate"] + generator.integer(1, 120)
        commit_date = order["o_orderdate"] + generator.integer(30, 120)
        receipt_date = ship_date + generator.integer(1, 30)
        extended_price = generator.decimal(900.0, 100000.0)
        lineitem_rows.append(
            {
                "l_orderkey": order["o_orderkey"],
                "l_partkey": generator.integer(0, len(part_rows) - 1),
                "l_suppkey": suppkey,
                "l_quantity": generator.integer(1, 50),
                "l_extendedprice": extended_price,
                "l_discount": generator.decimal(0.0, 0.10),
                "l_tax": generator.decimal(0.0, 0.08),
                "l_returnflag": generator.choice(RETURN_FLAGS),
                "l_linestatus": generator.choice(LINE_STATUSES),
                "l_shipdate": ship_date,
                "l_commitdate": commit_date,
                "l_receiptdate": receipt_date,
                "l_shipmode": generator.choice(SHIP_MODES),
            }
        )

    rows_by_table = {
        "region": region_rows,
        "nation": nation_rows,
        "supplier": supplier_rows,
        "customer": customer_rows,
        "part": part_rows,
        "partsupp": partsupp_rows,
        "orders": orders_rows,
        "lineitem": lineitem_rows,
    }
    from repro.engine.relation import Relation

    for table, rows in rows_by_table.items():
        table_profile = profile.profile(table)
        catalog.register(
            Relation.from_rows(schemas[table], rows, table_profile.rows_per_segment)
        )
    return catalog


# --------------------------------------------------------------------------- #
# Queries
# --------------------------------------------------------------------------- #
def q1() -> Query:
    """TPC-H Q1 (pricing summary report): single-table scan + aggregation."""
    disc_price = Arithmetic(
        "*", col("l_extendedprice"), Arithmetic("-", lit(1.0), col("l_discount"))
    )
    return Query(
        name="tpch_q1",
        tables=["lineitem"],
        filters={
            "lineitem": Comparison(
                "<=", col("l_shipdate"), Literal(date_to_ordinal("1998-09-02"))
            )
        },
        group_by=["l_returnflag", "l_linestatus"],
        aggregates=[
            AggregateSpec("sum", col("l_quantity"), "sum_qty"),
            AggregateSpec("sum", col("l_extendedprice"), "sum_base_price"),
            AggregateSpec("sum", disc_price, "sum_disc_price"),
            AggregateSpec("avg", col("l_quantity"), "avg_qty"),
            AggregateSpec("count", None, "count_order"),
        ],
        order_by=["l_returnflag", "l_linestatus"],
    )


def q3() -> Query:
    """TPC-H Q3 (shipping priority): 3-way join, revenue per open order."""
    revenue = Arithmetic(
        "*", col("l_extendedprice"), Arithmetic("-", lit(1.0), col("l_discount"))
    )
    cutoff = date_to_ordinal("1996-06-30")
    return Query(
        name="tpch_q3",
        tables=["customer", "orders", "lineitem"],
        joins=[
            JoinCondition("customer", "c_custkey", "orders", "o_custkey"),
            JoinCondition("lineitem", "l_orderkey", "orders", "o_orderkey"),
        ],
        filters={
            "customer": eq("c_mktsegment", "BUILDING"),
            "orders": Comparison("<", col("o_orderdate"), Literal(cutoff)),
            "lineitem": Comparison(">", col("l_shipdate"), Literal(cutoff - 180)),
        },
        group_by=["o_orderkey", "o_orderdate", "o_shippriority"],
        aggregates=[AggregateSpec("sum", revenue, "revenue")],
        order_by=["o_orderkey"],
    )


def q5() -> Query:
    """TPC-H Q5 (local supplier volume): the six-table join of Figure 11."""
    revenue = Arithmetic(
        "*", col("l_extendedprice"), Arithmetic("-", lit(1.0), col("l_discount"))
    )
    return Query(
        name="tpch_q5",
        tables=["customer", "orders", "lineitem", "supplier", "nation", "region"],
        joins=[
            JoinCondition("customer", "c_custkey", "orders", "o_custkey"),
            JoinCondition("lineitem", "l_orderkey", "orders", "o_orderkey"),
            JoinCondition("lineitem", "l_suppkey", "supplier", "s_suppkey"),
            JoinCondition("customer", "c_nationkey", "supplier", "s_nationkey"),
            JoinCondition("supplier", "s_nationkey", "nation", "n_nationkey"),
            JoinCondition("nation", "n_regionkey", "region", "r_regionkey"),
        ],
        filters={
            "region": eq("r_name", "ASIA"),
            "orders": between(
                "o_orderdate", date_to_ordinal("1993-01-01"), date_to_ordinal("1997-01-01")
            ),
        },
        group_by=["n_name"],
        aggregates=[AggregateSpec("sum", revenue, "revenue")],
        order_by=["n_name"],
    )


def q6() -> Query:
    """TPC-H Q6 (forecasting revenue change): single-table selective scan."""
    revenue = Arithmetic("*", col("l_extendedprice"), col("l_discount"))
    return Query(
        name="tpch_q6",
        tables=["lineitem"],
        filters={
            "lineitem": conjunction(
                [
                    between(
                        "l_shipdate",
                        date_to_ordinal("1994-01-01"),
                        date_to_ordinal("1996-01-01"),
                    ),
                    Between(col("l_discount"), 0.02, 0.09, inclusive=True),
                    Comparison("<", col("l_quantity"), Literal(24)),
                ]
            )
        },
        group_by=[],
        aggregates=[
            AggregateSpec("sum", revenue, "revenue"),
            AggregateSpec("count", None, "matching_lineitems"),
        ],
    )


def q12() -> Query:
    """TPC-H Q12 (shipping modes and order priority): the paper's workhorse.

    A two-table join between the two largest relations (lineitem, orders),
    exactly the query driving Figures 4, 5, 7, 9, 10, 11a and 12.
    """
    return Query(
        name="tpch_q12",
        tables=["orders", "lineitem"],
        joins=[JoinCondition("lineitem", "l_orderkey", "orders", "o_orderkey")],
        filters={
            "lineitem": conjunction(
                [
                    in_list("l_shipmode", ["MAIL", "SHIP"]),
                    Comparison("<", col("l_commitdate"), col("l_receiptdate")),
                    Comparison("<", col("l_shipdate"), col("l_commitdate")),
                    between(
                        "l_receiptdate",
                        date_to_ordinal("1993-01-01"),
                        date_to_ordinal("1997-01-01"),
                    ),
                ]
            )
        },
        group_by=["l_shipmode"],
        aggregates=[
            AggregateSpec("count", None, "line_count"),
            AggregateSpec("sum", col("l_quantity"), "total_quantity"),
        ],
        order_by=["l_shipmode"],
    )


#: Query factories by short name, used by the experiment harness.
QUERIES = {
    "q1": q1,
    "q3": q3,
    "q5": q5,
    "q6": q6,
    "q12": q12,
}


def query(name: str) -> Query:
    """Build the TPC-H query registered under ``name`` (e.g. ``"q12"``)."""
    try:
        return QUERIES[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown TPC-H query {name!r}; expected one of {sorted(QUERIES)}"
        ) from None
