"""The "analytics benchmark" workload (Pavlo et al., SIGMOD 2009).

The paper's mixed-workload experiment (Figure 8) includes the join task from
"A comparison of approaches to large-scale data analysis" over a 20 GB
database: a join between a ``rankings`` table (pageURL, pageRank) and a
``uservisits`` table (sourceIP, destURL, visitDate, adRevenue) restricted to
a visit-date range, reporting revenue and page-rank statistics per source IP.
"""

from __future__ import annotations

from typing import Dict, Union

from repro.engine.catalog import Catalog
from repro.engine.predicate import between, col
from repro.engine.query import AggregateSpec, JoinCondition, Query
from repro.engine.relation import Relation
from repro.engine.schema import Column, TableSchema
from repro.engine.types import DataType, date_to_ordinal
from repro.exceptions import ConfigurationError
from repro.workloads.datagen import DataGenerator, ScaleProfile, TableProfile

#: Number of distinct source IPs (keeps the join-task output a small report).
_SOURCE_IP_CARDINALITY = 40


def _schemas() -> Dict[str, TableSchema]:
    return {
        "rankings": TableSchema(
            "rankings",
            [
                Column("pr_pageid", DataType.INTEGER),
                Column("pr_pageurl", DataType.STRING),
                Column("pr_pagerank", DataType.INTEGER),
                Column("pr_avgduration", DataType.INTEGER),
            ],
        ),
        "uservisits": TableSchema(
            "uservisits",
            [
                Column("uv_sourceip", DataType.STRING),
                Column("uv_pageid", DataType.INTEGER),
                Column("uv_visitdate", DataType.DATE),
                Column("uv_adrevenue", DataType.FLOAT),
                Column("uv_useragent", DataType.STRING),
            ],
        ),
    }


SCALES: Dict[str, ScaleProfile] = {
    "tiny": ScaleProfile(
        "tiny",
        {"rankings": TableProfile(1, 20), "uservisits": TableProfile(3, 40)},
    ),
    "small": ScaleProfile(
        "small",
        {"rankings": TableProfile(2, 40), "uservisits": TableProfile(8, 60)},
    ),
    # The paper's analytics benchmark uses a 20 GB database: ~20 objects.
    "paper": ScaleProfile(
        "paper",
        {"rankings": TableProfile(4, 50), "uservisits": TableProfile(16, 80)},
    ),
}


def resolve_scale(scale: Union[str, ScaleProfile]) -> ScaleProfile:
    """Look up a named scale profile or pass an explicit one through."""
    if isinstance(scale, ScaleProfile):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise ConfigurationError(
            f"unknown MR-bench scale {scale!r}; expected one of {sorted(SCALES)}"
        ) from None


def build_catalog(
    scale: Union[str, ScaleProfile] = "small",
    seed: int = 11,
    catalog: Catalog | None = None,
) -> Catalog:
    """Generate the rankings/uservisits dataset, optionally into an existing catalog."""
    profile = resolve_scale(scale)
    generator = DataGenerator(seed)
    schemas = _schemas()
    catalog = catalog if catalog is not None else Catalog()

    rankings_profile = profile.profile("rankings")
    rankings_rows = [
        {
            "pr_pageid": index,
            "pr_pageurl": f"url#{index}",
            "pr_pagerank": generator.integer(0, 100),
            "pr_avgduration": generator.integer(1, 300),
        }
        for index in range(rankings_profile.total_rows)
    ]

    uservisits_profile = profile.profile("uservisits")
    uservisits_rows = [
        {
            "uv_sourceip": f"ip#{generator.integer(0, _SOURCE_IP_CARDINALITY - 1)}",
            "uv_pageid": generator.integer(0, len(rankings_rows) - 1),
            "uv_visitdate": generator.date_ordinal("1999-01-01", "2001-12-31"),
            "uv_adrevenue": generator.decimal(0.0, 100.0),
            "uv_useragent": generator.choice(["firefox", "chrome", "safari", "opera"]),
        }
        for index in range(uservisits_profile.total_rows)
    ]

    catalog.register(
        Relation.from_rows(schemas["rankings"], rankings_rows, rankings_profile.rows_per_segment)
    )
    catalog.register(
        Relation.from_rows(
            schemas["uservisits"], uservisits_rows, uservisits_profile.rows_per_segment
        )
    )
    return catalog


def join_task() -> Query:
    """The analytics-benchmark join task used in the mixed workload."""
    return Query(
        name="mrbench_join_task",
        tables=["rankings", "uservisits"],
        joins=[JoinCondition("uservisits", "uv_pageid", "rankings", "pr_pageid")],
        filters={
            "uservisits": between(
                "uv_visitdate",
                date_to_ordinal("2000-01-15"),
                date_to_ordinal("2000-01-22") + 330,
            )
        },
        group_by=["uv_sourceip"],
        aggregates=[
            AggregateSpec("sum", col("uv_adrevenue"), "total_revenue"),
            AggregateSpec("avg", col("pr_pagerank"), "avg_pagerank"),
        ],
        order_by=["uv_sourceip"],
    )


def aggregation_task() -> Query:
    """The analytics-benchmark aggregation task (single-table group by)."""
    return Query(
        name="mrbench_aggregation_task",
        tables=["uservisits"],
        group_by=["uv_sourceip"],
        aggregates=[AggregateSpec("sum", col("uv_adrevenue"), "total_revenue")],
        order_by=["uv_sourceip"],
    )


QUERIES = {"join_task": join_task, "aggregation_task": aggregation_task}


def query(name: str) -> Query:
    """Build the analytics-benchmark query registered under ``name``."""
    try:
        return QUERIES[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown MR-bench query {name!r}; expected one of {sorted(QUERIES)}"
        ) from None
