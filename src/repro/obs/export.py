"""Trace exporters: canonical JSON documents and Chrome trace-event files.

:func:`build_trace` turns a traced, completed
:class:`~repro.service.service.StorageService` into a plain-dict trace
document.  Besides the spans the tracer recorded live, it *derives* the
device-side spans from each device's :class:`~repro.csd.device.IntervalLog`
— transfers, group switches and migration I/O — and inbox-wait spans pairing
each GET's inbox entry (``Tracer.io_submit``) with the transfer that served
it.  Device spans are parented onto the owning query's ``execute`` span via
the query id, which is how the admission → routing → device → operator tree
closes end to end.

Everything in the document is driven by the simulated clock and emitted in
deterministic order (live spans in creation order, derived spans in roster ×
log order), so :func:`trace_to_json` is byte-identical across reruns of the
same spec + seed.  :func:`to_chrome` converts a document into the Chrome
trace-event format (one track per tenant, one per device) loadable in
Perfetto or ``chrome://tracing``.
"""

from __future__ import annotations

import json
from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Tuple

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.service import StorageService

#: Format tag + version embedded in every exported document.
TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1

#: Span kinds that live on tenant tracks (everything else is a device track).
TENANT_KINDS = ("query", "executor", "compute", "wait", "operator")


def _device_roster(service: StorageService) -> List[Tuple[str, Any]]:
    """``(device_id, device)`` pairs in deterministic roster order."""
    if service.fleet is not None:
        return [
            (member.device_id, member.device)
            for member in service.fleet.members
            if member.device is not None
        ]
    return [(service.device.name, service.device)]


def _derive_device_spans(
    service: StorageService, next_id: int
) -> List[Dict[str, Any]]:
    """Device service + inbox-wait spans, derived from the interval logs."""
    tracer = service.tracer
    spans: List[Dict[str, Any]] = []

    # GET inbox entries grouped by (device, query, key), in submission order.
    submissions: Dict[Tuple[str, str, str], Deque[float]] = {}
    for at, query_id, object_key, device_id in tracer.io_submissions:
        submissions.setdefault((device_id, query_id, object_key), deque()).append(at)

    for device_id, device in _device_roster(service):
        for interval in device.busy_intervals:
            parent = tracer.query_span(interval.query_id)
            attrs: Dict[str, Any] = {"group": interval.group_id}
            if interval.client_id is not None:
                attrs["tenant"] = interval.client_id
            if interval.object_key is not None:
                attrs["object_key"] = interval.object_key
            if interval.kind == "migration":
                # Migration intervals reuse the query-id slot for a
                # "reason:direction:epochN" tag (they belong to no query).
                attrs["job"] = interval.query_id
            elif interval.query_id is not None:
                attrs["query_id"] = interval.query_id
            if interval.kind == "transfer":
                waited = submissions.get(
                    (device_id, interval.query_id, interval.object_key)
                )
                if waited:
                    submitted_at = waited.popleft()
                    if interval.start > submitted_at:
                        spans.append(
                            {
                                "id": next_id,
                                "parent": parent.span_id if parent else None,
                                "name": "inbox-wait",
                                "kind": "device",
                                "track": device_id,
                                "start": submitted_at,
                                "end": interval.start,
                                "attrs": {
                                    "object_key": interval.object_key,
                                    "query_id": interval.query_id,
                                },
                                "events": [],
                            }
                        )
                        next_id += 1
            spans.append(
                {
                    "id": next_id,
                    "parent": (
                        parent.span_id
                        if parent is not None and interval.kind == "transfer"
                        else None
                    ),
                    "name": interval.kind,
                    "kind": "device",
                    "track": device_id,
                    "start": interval.start,
                    "end": interval.end,
                    "attrs": attrs,
                    "events": [],
                }
            )
            next_id += 1
    return spans


def build_trace(
    service: StorageService, scenario: Optional[str] = None
) -> Dict[str, Any]:
    """Assemble the canonical trace document for a completed traced run."""
    tracer = service.tracer
    if not tracer.enabled:
        raise ConfigurationError(
            "tracing was not enabled on this service; construct it from a "
            "spec with trace=True (or pass --trace on the CLI)"
        )
    spans = [span.to_dict() for span in tracer.spans]
    spans.extend(_derive_device_spans(service, next_id=len(spans) + 1))

    tenant_tracks: List[str] = []
    device_tracks: List[str] = []
    for span in spans:
        bucket = tenant_tracks if span["kind"] in TENANT_KINDS else device_tracks
        if span["track"] not in bucket:
            bucket.append(span["track"])

    return {
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "scenario": scenario,
        "total_simulated_time": service.env.now,
        "tracks": {
            "tenants": sorted(tenant_tracks),
            "devices": sorted(device_tracks),
        },
        "spans": spans,
    }


def trace_to_json(document: Dict[str, Any]) -> str:
    """Serialize a trace document canonically (byte-identical per run)."""
    from repro.scenarios.report import canonical

    return json.dumps(canonical(document), sort_keys=True, indent=2) + "\n"


def to_chrome(document: Dict[str, Any]) -> Dict[str, Any]:
    """Convert a trace document to Chrome trace-event JSON.

    Tenants become threads of process 1, devices threads of process 2 — one
    named track each in Perfetto.  Simulated seconds map to microseconds
    (the trace-event timebase), and span events become instant events.
    """
    tenants = document["tracks"]["tenants"]
    devices = document["tracks"]["devices"]
    location: Dict[str, Tuple[int, int]] = {}
    events: List[Dict[str, Any]] = []
    for pid, process, tracks in ((1, "tenants", tenants), (2, "devices", devices)):
        events.append(
            {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
             "args": {"name": process}}
        )
        for tid, track in enumerate(tracks, start=1):
            location[track] = (pid, tid)
            events.append(
                {"ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                 "args": {"name": track}}
            )

    for span in document["spans"]:
        pid, tid = location[span["track"]]
        start_us = span["start"] * 1e6
        events.append(
            {
                "ph": "X",
                "name": span["name"],
                "cat": span["kind"],
                "ts": start_us,
                "dur": (span["end"] - span["start"]) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": dict(span["attrs"]),
            }
        )
        for event in span["events"]:
            events.append(
                {
                    "ph": "i",
                    "name": event["name"],
                    "s": "t",
                    "ts": event["at"] * 1e6,
                    "pid": pid,
                    "tid": tid,
                    "args": dict(event["attrs"]),
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}
