"""A typed metrics registry: counters, gauges and fixed-bucket histograms.

The registry replaces the ad-hoc integer attributes the service components
used to keep (``stats.objects_served += 1`` and friends) with named metric
objects.  Components hold direct references to their metric objects, so the
hot-path cost of an increment is one bound-method call — the registry dict is
only consulted at construction and snapshot time.

Naming convention (documented in the README): dotted lowercase paths,
``<component>.<metric>`` with optional entity segments, e.g.
``admission.tenant.tenant0.rejected``, ``device.csd2.objects_served``,
``router.requests_routed``.  Identity segments (tenant ids, device ids) are
used verbatim.

Determinism: every metric value is driven by the simulated run, snapshots
sort by name, and histograms record samples in observation order — so a
registry snapshot is byte-identical across reruns of the same spec + seed.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type, TypeVar, Union, cast

from repro.exceptions import ConfigurationError

Number = Union[int, float]

#: The concrete metric kinds `MetricsRegistry._get` can vend.
_MetricT = TypeVar("_MetricT", "Counter", "Gauge", "Histogram")

#: Default histogram bucket upper bounds, in simulated seconds.  Chosen to
#: resolve both sub-second admission waits and multi-minute cold-storage
#: stalls; an implicit +inf bucket catches everything above the last bound.
DEFAULT_SECONDS_BOUNDS: Tuple[float, ...] = (
    0.5,
    1.0,
    2.0,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
    300.0,
    600.0,
    1800.0,
    3600.0,
)


class Counter:
    """A monotonically increasing value (int or float, set by ``initial``)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, initial: Number = 0) -> None:
        self.name = name
        self.value = initial

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc by {amount!r})"
            )
        self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value that also remembers its peak."""

    __slots__ = ("name", "value", "peak")

    def __init__(self, name: str, initial: Number = 0) -> None:
        self.name = name
        self.value = initial
        self.peak = initial

    def set(self, value: Number) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value, "peak": self.peak}


class Histogram:
    """Fixed-bound bucket counts plus the raw samples, in observation order.

    The fixed bounds make snapshots comparable across runs and exportable;
    the raw samples let report code compute the exact means/percentiles the
    golden metrics pin (a bucketed histogram alone could only approximate
    them).  Sample count is bounded by the number of observations in one
    scenario run, which is small by construction.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "samples", "sum")

    def __init__(self, name: str, bounds: Optional[Sequence[float]] = None) -> None:
        chosen = tuple(bounds) if bounds is not None else DEFAULT_SECONDS_BOUNDS
        if not chosen or list(chosen) != sorted(chosen):
            raise ConfigurationError(
                f"histogram {self.__class__.__name__} {name!r}: bounds must be "
                f"a non-empty ascending sequence, got {chosen!r}"
            )
        self.name = name
        self.bounds = chosen
        #: One count per bound plus the implicit +inf overflow bucket.
        self.bucket_counts = [0] * (len(chosen) + 1)
        self.samples: List[float] = []
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.samples.append(value)
        self.sum += value

    @property
    def count(self) -> int:
        return len(self.samples)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
            "min": min(self.samples) if self.samples else 0.0,
            "max": max(self.samples) if self.samples else 0.0,
        }


class MetricsRegistry:
    """Named metric objects, one namespace per service instance."""

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: Dict[str, Union[Counter, Gauge, Histogram]] = {}

    def _get(self, name: str, kind: Type[_MetricT], factory: Callable[[], _MetricT]) -> _MetricT:
        if not name or not isinstance(name, str):
            raise ConfigurationError(f"metric names must be non-empty strings, got {name!r}")
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory()
            return metric
        if not isinstance(metric, kind):
            raise ConfigurationError(
                f"metric {name!r} is already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return cast(_MetricT, metric)

    def counter(self, name: str, initial: Number = 0) -> Counter:
        """Get or create the counter ``name`` (``initial`` fixes int/float)."""
        return self._get(name, Counter, lambda: Counter(name, initial))

    def gauge(self, name: str, initial: Number = 0) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name, initial))

    def histogram(self, name: str, bounds: Optional[Sequence[float]] = None) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, bounds))

    def get(self, name: str) -> Optional[Union[Counter, Gauge, Histogram]]:
        """The registered metric, or ``None``."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def to_dict(self) -> Dict[str, Dict[str, Any]]:
        """Deterministic snapshot of every metric, keyed and sorted by name."""
        return {name: self._metrics[name].to_dict() for name in sorted(self._metrics)}
