"""Critical-path analysis over exported trace documents.

Answers the question the aggregate report cannot: *where did one query's
latency actually go?*  For every ``execute`` span the trace holds, the time
from admission grant to completion is attributed to four phases:

* **compute** — CPU the executor charged (scans, joins, request overhead);
* **migration-interference** — waiting that overlapped rebalance/repair I/O
  on some device (the seconds background copies stole from the query);
* **device-busy** — waiting that overlapped foreground device activity
  (group switches and other queries' transfers);
* **other** — the remainder (idle gaps, waiting on devices that were
  themselves idle at that instant, rounding).

Together with the admission **queue** delay carried on the query's root
span, the five phases sum to the query's reported latency *by construction*
(``other`` absorbs the residual), which the tests pin.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

Interval = Tuple[float, float]

#: Phase keys of one query breakdown, in presentation order.
PHASES = ("queue", "compute", "migration_interference", "device_busy", "other")


def merge_intervals(intervals: Sequence[Interval]) -> List[Interval]:
    """Union of possibly overlapping intervals, sorted and disjoint."""
    merged: List[Interval] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            previous_start, previous_end = merged[-1]
            merged[-1] = (previous_start, max(previous_end, end))
        else:
            merged.append((start, end))
    return merged


def overlap_seconds(start: float, end: float, union: Sequence[Interval]) -> float:
    """Summed overlap of ``[start, end]`` with a disjoint sorted union."""
    total = 0.0
    for interval_start, interval_end in union:
        if interval_start >= end:
            break
        if interval_end <= start:
            continue
        total += min(end, interval_end) - max(start, interval_start)
    return total


def query_breakdowns(document: Dict[str, Any]) -> List[Dict[str, Any]]:
    """One critical-path breakdown dict per ``execute`` span, in span order."""
    spans = document["spans"]
    by_id: Dict[int, Dict[str, Any]] = {span["id"]: span for span in spans}
    children: Dict[int, List[Dict[str, Any]]] = {}
    for span in spans:
        parent = span["parent"]
        if parent is not None:
            children.setdefault(parent, []).append(span)

    device_spans = [span for span in spans if span["kind"] == "device"]
    migration_union = merge_intervals(
        [(span["start"], span["end"]) for span in device_spans
         if span["name"] == "migration"]
    )
    busy_union = merge_intervals(
        [(span["start"], span["end"]) for span in device_spans
         if span["name"] in ("switch", "transfer", "migration")]
    )

    breakdowns: List[Dict[str, Any]] = []
    for span in spans:
        if span["kind"] != "executor":
            continue
        root = by_id.get(span["parent"]) if span["parent"] is not None else None
        queue = float(root["attrs"].get("queue_delay", 0.0)) if root else 0.0
        compute = 0.0
        migration = 0.0
        busy = 0.0
        for child in children.get(span["id"], ()):
            duration = child["end"] - child["start"]
            if child["kind"] == "compute":
                compute += duration
            elif child["kind"] == "wait":
                in_migration = overlap_seconds(
                    child["start"], child["end"], migration_union
                )
                migration += in_migration
                # busy_union contains the migration intervals, so subtracting
                # the migration share leaves foreground switches/transfers.
                busy += (
                    overlap_seconds(child["start"], child["end"], busy_union)
                    - in_migration
                )
        execute_seconds = span["end"] - span["start"]
        total = queue + execute_seconds
        breakdowns.append(
            {
                "query_id": span["attrs"].get("query_id"),
                "query": root["attrs"].get("query") if root else None,
                "tenant": span["track"],
                "total": total,
                "queue": queue,
                "compute": compute,
                "migration_interference": migration,
                "device_busy": busy,
                "other": execute_seconds - compute - migration - busy,
            }
        )
    return breakdowns


def tenant_totals(
    breakdowns: Sequence[Dict[str, Any]]
) -> Dict[str, Dict[str, float]]:
    """Per-phase totals per tenant, tenants sorted by name."""
    totals: Dict[str, Dict[str, float]] = {}
    for breakdown in breakdowns:
        entry = totals.setdefault(
            breakdown["tenant"],
            {"queries": 0, "total": 0.0, **{phase: 0.0 for phase in PHASES}},
        )
        entry["queries"] += 1
        entry["total"] += breakdown["total"]
        for phase in PHASES:
            entry[phase] += breakdown[phase]
    return {tenant: totals[tenant] for tenant in sorted(totals)}


def render_breakdown(document: Dict[str, Any], top: int = 10) -> str:
    """Human-readable critical-path report for one trace document."""
    from repro.harness.tables import format_table

    breakdowns = query_breakdowns(document)
    lines: List[str] = []
    scenario = document.get("scenario") or "-"
    lines.append(
        f"trace: scenario={scenario} spans={len(document['spans'])} "
        f"queries={len(breakdowns)} "
        f"simulated={document['total_simulated_time']:.3f}s"
    )
    if not breakdowns:
        lines.append("no execute spans found (was the workload empty?)")
        return "\n".join(lines)

    slowest = sorted(breakdowns, key=lambda entry: -entry["total"])[:top]
    lines.append("")
    lines.append(
        format_table(
            ["query", "tenant", "total (s)", "queue", "compute",
             "migration", "device busy", "other"],
            [
                [
                    entry["query_id"] or entry["query"] or "-",
                    entry["tenant"],
                    entry["total"],
                    entry["queue"],
                    entry["compute"],
                    entry["migration_interference"],
                    entry["device_busy"],
                    entry["other"],
                ]
                for entry in slowest
            ],
            title=f"top {len(slowest)} slowest queries (critical-path phases)",
        )
    )
    lines.append("")
    lines.append(
        format_table(
            ["tenant", "queries", "total (s)", "queue", "compute",
             "migration", "device busy", "other"],
            [
                [
                    tenant,
                    entry["queries"],
                    entry["total"],
                    entry["queue"],
                    entry["compute"],
                    entry["migration_interference"],
                    entry["device_busy"],
                    entry["other"],
                ]
                for tenant, entry in tenant_totals(breakdowns).items()
            ],
            title="per-tenant phase totals",
        )
    )
    return "\n".join(lines)


def top_slowest(
    document: Dict[str, Any], count: int = 10
) -> List[Dict[str, Any]]:
    """The ``count`` slowest queries by total latency (stable on ties)."""
    return sorted(query_breakdowns(document), key=lambda entry: -entry["total"])[
        :count
    ]


__all__ = [
    "PHASES",
    "merge_intervals",
    "overlap_seconds",
    "query_breakdowns",
    "render_breakdown",
    "tenant_totals",
    "top_slowest",
]
