"""Exponentially weighted moving averages over simulated-time observations.

The fleet router keeps one :class:`Ewma` per device, fed with observed
request latencies as completions fire; the ``ewma-latency`` replica policy
and the feedback rebalancer read it back.  The class is pure arithmetic
driven entirely by the simulation — no wall clock, no decay-by-elapsed-time
— so routing decisions derived from it are byte-deterministic.

Degenerate reads fail loudly: asking an unsampled EWMA for its value raises
:class:`~repro.exceptions.ConfigurationError` instead of silently returning
0.0 or NaN (callers that want an optimistic cold-start default say so
explicitly via :meth:`Ewma.value_or`).
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError


class Ewma:
    """A fixed-alpha exponentially weighted moving average.

    The first observation initialises the average; each later sample moves
    it by ``alpha * (sample - value)``.  ``alpha`` in (0, 1]: 1.0 degenerates
    to "last sample wins", small values smooth aggressively.
    """

    __slots__ = ("alpha", "count", "_value")

    def __init__(self, alpha: float) -> None:
        if not isinstance(alpha, (int, float)) or isinstance(alpha, bool):
            raise ConfigurationError(f"EWMA alpha must be a number, got {alpha!r}")
        if not math.isfinite(alpha) or not 0 < alpha <= 1:
            raise ConfigurationError(f"EWMA alpha must be in (0, 1], got {alpha!r}")
        self.alpha = float(alpha)
        self.count = 0
        self._value = 0.0

    def observe(self, sample: float) -> float:
        """Fold one sample in; returns the updated average."""
        if not math.isfinite(sample):
            raise ConfigurationError(
                f"EWMA samples must be finite, got {sample!r}"
            )
        if self.count == 0:
            self._value = float(sample)
        else:
            self._value += self.alpha * (sample - self._value)
        self.count += 1
        return self._value

    @property
    def value(self) -> float:
        """The current average; raises with zero observed samples."""
        if self.count == 0:
            raise ConfigurationError(
                "EWMA has zero observed samples; use value_or() for an "
                "explicit cold-start default"
            )
        return self._value

    def value_or(self, default: float) -> float:
        """The current average, or ``default`` with zero samples."""
        return self._value if self.count else default

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shown = self._value if self.count else None
        return f"<Ewma alpha={self.alpha} count={self.count} value={shown}>"
