"""Observability: simulated-time tracing and a typed metrics registry.

Two independent pieces live here:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of named counters,
  gauges and fixed-bucket histograms.  Every service component (admission
  controller, fleet router, devices, migration throttle) registers its
  counters here instead of keeping ad-hoc integer attributes; the scenario
  report sections read the same registry values, so the registry is always
  on and costs exactly what the old attribute counters cost.
* :mod:`repro.obs.ewma` — a deterministic :class:`Ewma` over simulated-time
  samples; the fleet router keeps one per device for its ``ewma-latency``
  replica policy and the feedback rebalancer.
* :mod:`repro.obs.tracer` — a :class:`Tracer` producing :class:`Span` trees
  stamped with **simulated** time, so traces are byte-deterministic for a
  given spec + seed.  Tracing is opt-in (``ScenarioSpec.trace=True`` or
  ``--trace`` on the CLIs); when off, a shared :data:`NULL_TRACER` with the
  same interface is installed and every instrumentation site is guarded by
  ``tracer.enabled``, so the off path adds only dead branches.

Exporters (:mod:`repro.obs.export`) emit a canonical JSON trace document and
a Chrome trace-event conversion (one track per tenant, one per device —
loadable in Perfetto).  :mod:`repro.obs.analysis` turns a trace document
into per-query critical-path breakdowns; ``python -m repro.trace`` is its
CLI.
"""

from repro.obs.ewma import Ewma
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Ewma",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
]
