"""Simulated-time spans and the tracer that collects them.

A :class:`Span` is one named stretch of simulated time on a *track* (a
tenant or a device), optionally parented to another span, carrying flat
``attrs`` and a list of timestamped events.  The :class:`Tracer` hands out
spans with sequential ids in creation order, which — together with every
timestamp coming from the simulated clock — makes an exported trace
byte-deterministic for a given spec + seed.

The query path threads context by **query id** rather than by passing span
objects through every layer: the executor minting a query id binds it to the
query's ``execute`` span (:meth:`Tracer.bind_query`), and lower layers (the
fleet router choosing a replica, a device accepting a GET into its inbox)
attach their observations by query id.  Device *service* spans are not
recorded live at all — the exporter derives them from the device
:class:`~repro.csd.device.IntervalLog`, which exists anyway.

When tracing is off the service installs :data:`NULL_TRACER`, whose
``enabled`` flag is ``False``; every instrumentation site is guarded by that
flag, so the off path performs no tracing work beyond the guard itself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim import Environment


class Span:
    """One named interval of simulated time within a trace."""

    __slots__ = ("span_id", "parent_id", "name", "kind", "track", "start", "end",
                 "attrs", "events")

    def __init__(
        self,
        span_id: int,
        name: str,
        kind: str,
        track: str,
        start: float,
        parent_id: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.track = track
        self.start = start
        #: ``None`` until the span is ended (exported as ``start`` if never).
        self.end: Optional[float] = None
        self.attrs: Dict[str, Any] = attrs or {}
        #: ``(at, name, attrs)`` in recording order.
        self.events: List[Tuple[float, str, Dict[str, Any]]] = []

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "track": self.track,
            "start": self.start,
            "end": self.end if self.end is not None else self.start,
            "attrs": dict(self.attrs),
            "events": [
                {"at": at, "name": name, "attrs": dict(attrs)}
                for at, name, attrs in self.events
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Span #{self.span_id} {self.name!r} [{self.start}, {self.end}]>"


class Tracer:
    """Collects spans stamped with the simulated clock."""

    enabled = True

    def __init__(self, env: Environment) -> None:
        self.env = env
        #: Every span ever started, in creation order (ids are 1-based).
        self.spans: List[Span] = []
        #: query id -> the query's ``execute`` span, for cross-layer joins.
        self._span_by_query: Dict[str, Span] = {}
        #: ``(at, query_id, object_key, device_id)`` — a GET entering a
        #: device inbox; the exporter pairs these with transfer intervals to
        #: derive per-request inbox-wait spans.
        self.io_submissions: List[Tuple[float, str, str, str]] = []

    # ------------------------------------------------------------------ #
    # Span lifecycle
    # ------------------------------------------------------------------ #
    def start_span(
        self,
        name: str,
        kind: str,
        track: str,
        parent: Optional[Span] = None,
        start: Optional[float] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span; ``start`` defaults to the current simulated time."""
        span = Span(
            span_id=len(self.spans) + 1,
            name=name,
            kind=kind,
            track=track,
            start=self.env.now if start is None else start,
            parent_id=parent.span_id if parent is not None else None,
            attrs=attrs,
        )
        self.spans.append(span)
        return span

    def end_span(self, span: Span, end: Optional[float] = None) -> None:
        span.end = self.env.now if end is None else end

    def record_span(
        self,
        name: str,
        kind: str,
        track: str,
        start: float,
        end: float,
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        """Create an already-completed span (both timestamps known)."""
        span = self.start_span(name, kind, track, parent=parent, start=start, **attrs)
        span.end = end
        return span

    def add_event(self, span: Span, name: str, at: Optional[float] = None, **attrs: Any) -> None:
        span.events.append((self.env.now if at is None else at, name, attrs))

    # ------------------------------------------------------------------ #
    # Cross-layer context (keyed by query id)
    # ------------------------------------------------------------------ #
    def bind_query(self, query_id: str, span: Span) -> None:
        """Associate ``query_id`` with its ``execute`` span."""
        self._span_by_query[query_id] = span

    def query_span(self, query_id: Optional[str]) -> Optional[Span]:
        """The ``execute`` span bound to ``query_id``, if any."""
        if query_id is None:
            return None
        return self._span_by_query.get(query_id)

    def route(
        self,
        query_id: str,
        object_key: str,
        device_id: str,
        epoch: int,
        policy: str,
        outstanding: int,
    ) -> None:
        """Record one routing decision as an event on the query's span."""
        span = self._span_by_query.get(query_id)
        if span is None:
            return
        span.events.append(
            (
                self.env.now,
                "route",
                {
                    "object_key": object_key,
                    "device": device_id,
                    "epoch": epoch,
                    "policy": policy,
                    "outstanding": outstanding,
                },
            )
        )

    def io_submit(self, query_id: str, object_key: str, device_id: str) -> None:
        """Record a GET entering ``device_id``'s inbox."""
        self.io_submissions.append((self.env.now, query_id, object_key, device_id))


class NullTracer:
    """Drop-in no-op tracer installed when tracing is off.

    Instrumentation sites guard on :attr:`enabled`, so these methods are
    normally never reached; they exist so unguarded calls stay harmless.
    """

    enabled = False
    _SPAN = Span(span_id=0, name="", kind="", track="", start=0.0)

    spans: List[Span] = []
    io_submissions: List[Tuple[float, str, str, str]] = []

    def start_span(self, *args: Any, **kwargs: Any) -> Span:
        return self._SPAN

    def end_span(self, *args: Any, **kwargs: Any) -> None:
        pass

    def record_span(self, *args: Any, **kwargs: Any) -> Span:
        return self._SPAN

    def add_event(self, *args: Any, **kwargs: Any) -> None:
        pass

    def bind_query(self, *args: Any, **kwargs: Any) -> None:
        pass

    def query_span(self, *args: Any, **kwargs: Any) -> Optional[Span]:
        return None

    def route(self, *args: Any, **kwargs: Any) -> None:
        pass

    def io_submit(self, *args: Any, **kwargs: Any) -> None:
        pass


#: Shared no-op tracer (stateless, so one instance serves every service).
NULL_TRACER = NullTracer()
