"""Cost model translating work into simulated seconds.

The paper reports wall-clock times measured on a physical testbed (Table 3
breaks a TPC-H Q12 run into ~407 s of query execution and ~550 s of network
transfer for 57 one-gigabyte segments, plus a 10 s group-switch latency).
This reproduction replays the same *structure* of costs over simulated time.
The defaults below are calibrated so that a single-client Q12 run lands in
the paper's ballpark:

* ``transfer_seconds_per_object`` ≈ 9.6 s — the paper's serialized Swift
  middleware pushes roughly one 1 GB object every ten seconds (550 s / 57).
* CPU costs are expressed per tuple and scaled by
  ``rows_per_gigabyte_equivalent`` so that experiments can use small
  synthetic segments (hundreds of rows) while still charging the simulated
  CPU as if each segment were a full 1 GB PostgreSQL segment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass
class CostModel:
    """Simulated-time costs for transfers and query processing.

    The CPU-side constants are deliberately simple: the experiments depend on
    the *ratio* between waiting time (group switches + transfers) and useful
    work, not on faithfully modelling PostgreSQL's CPU profile.
    """

    #: Seconds to push one object (segment) from the CSD to a client.
    transfer_seconds_per_object: float = 9.6
    #: Seconds of CPU per tuple scanned (predicate evaluation, deserialisation).
    scan_seconds_per_tuple: float = 0.9e-3
    #: Seconds of CPU per tuple inserted into a hash table.
    build_seconds_per_tuple: float = 1.2e-3
    #: Seconds of CPU per probe into a hash table.
    probe_seconds_per_tuple: float = 0.8e-3
    #: Seconds of CPU per result tuple emitted (aggregation update included).
    output_seconds_per_tuple: float = 1.0e-3
    #: Fixed per-object request overhead on the client (catalog lookup, HTTP).
    request_overhead_seconds: float = 0.05
    #: Scale factor: simulated tuples per segment are treated as this many
    #: "paper tuples" so CPU charges match 1 GB segments even though the
    #: synthetic segments hold only a few hundred rows.  With the default
    #: workload profiles (~80 rows per segment) a value of 50 puts the CPU
    #: share of a query in the same ballpark as the paper's Table 3.
    tuple_scale: float = 50.0

    def __post_init__(self) -> None:
        for name in (
            "transfer_seconds_per_object",
            "scan_seconds_per_tuple",
            "build_seconds_per_tuple",
            "probe_seconds_per_tuple",
            "output_seconds_per_tuple",
            "request_overhead_seconds",
            "tuple_scale",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")

    # ------------------------------------------------------------------ #
    # Individual cost components
    # ------------------------------------------------------------------ #
    def transfer_time(self, num_objects: int = 1) -> float:
        """Time to transfer ``num_objects`` segments over the network."""
        return self.transfer_seconds_per_object * num_objects

    def scan_time(self, num_tuples: int) -> float:
        """CPU time to scan and filter ``num_tuples`` tuples."""
        return self.scan_seconds_per_tuple * num_tuples * self.tuple_scale

    def build_time(self, num_tuples: int) -> float:
        """CPU time to insert ``num_tuples`` tuples into hash tables."""
        return self.build_seconds_per_tuple * num_tuples * self.tuple_scale

    def probe_time(self, num_probes: int) -> float:
        """CPU time for ``num_probes`` hash-table probes."""
        return self.probe_seconds_per_tuple * num_probes * self.tuple_scale

    def output_time(self, num_tuples: int) -> float:
        """CPU time to emit ``num_tuples`` result tuples."""
        return self.output_seconds_per_tuple * num_tuples * self.tuple_scale

    def request_overhead(self, num_requests: int = 1) -> float:
        """Client-side overhead for issuing ``num_requests`` object requests."""
        return self.request_overhead_seconds * num_requests

    def scaled(self, factor: float) -> CostModel:
        """Return a copy with every CPU cost multiplied by ``factor``."""
        return CostModel(
            transfer_seconds_per_object=self.transfer_seconds_per_object,
            scan_seconds_per_tuple=self.scan_seconds_per_tuple * factor,
            build_seconds_per_tuple=self.build_seconds_per_tuple * factor,
            probe_seconds_per_tuple=self.probe_seconds_per_tuple * factor,
            output_seconds_per_tuple=self.output_seconds_per_tuple * factor,
            request_overhead_seconds=self.request_overhead_seconds,
            tuple_scale=self.tuple_scale,
        )
