"""Left-deep join planning for the vanilla (pull-based) engine.

The vanilla baseline in the paper is PostgreSQL's optimize-then-execute
model: the optimizer fixes a join order, and execution pulls base-table
segments in exactly that order.  :class:`Planner` reproduces the part of that
pipeline the experiments depend on:

* a deterministic left-deep join order (fact table streamed, dimensions
  built into hash tables),
* a physical operator tree computing the real answer, and
* the *segment access order* — the sequence of CSD objects a pull-based
  executor requests, with each table's segments requested consecutively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.engine.catalog import Catalog
from repro.engine.operators import (
    HashAggregate,
    HashJoin,
    Limit,
    Operator,
    SequentialScan,
    Sort,
)
from repro.engine.query import JoinCondition, Query
from repro.engine.relation import Relation
from repro.exceptions import PlanningError


@dataclass
class JoinStep:
    """One step of a left-deep plan: join ``table`` into the running result."""

    table: str
    conditions: List[JoinCondition] = field(default_factory=list)

    @property
    def is_first(self) -> bool:
        """Whether this step introduces the leftmost (streamed) table."""
        return not self.conditions


@dataclass
class QueryPlan:
    """A planned query: join order plus derived access order."""

    query: Query
    steps: List[JoinStep]

    @property
    def join_order(self) -> List[str]:
        """Tables in the order they enter the left-deep plan."""
        return [step.table for step in self.steps]

    def table_access_order(self) -> List[str]:
        """Order in which a pull-based executor reads base tables.

        In a left-deep hash-join plan the topmost build side is materialised
        first, then the next one down, and the streamed (leftmost) table is
        read last — mirroring the paper's example of PostgreSQL requesting
        "all objects of table C first, followed by B, and finally A".
        """
        if len(self.steps) == 1:
            return [self.steps[0].table]
        build_tables = [step.table for step in self.steps[1:]]
        return list(reversed(build_tables)) + [self.steps[0].table]

    def segment_access_order(self, catalog: Catalog) -> List[str]:
        """Segment ids in the order a pull-based executor requests them."""
        order: List[str] = []
        for table in self.table_access_order():
            order.extend(catalog.segment_ids(table))
        return order


class Planner:
    """Builds deterministic left-deep plans for :class:`Query` objects."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    # ------------------------------------------------------------------ #
    # Logical planning
    # ------------------------------------------------------------------ #
    def plan(self, query: Query) -> QueryPlan:
        """Choose a left-deep join order for ``query``.

        The streamed (leftmost) table is the largest one; every subsequent
        step greedily picks the largest remaining table that is connected to
        the tables already joined, so the plan is valid for any connected
        join graph and deterministic for a given catalog.
        """
        query.validate(self.catalog)
        sizes = {table: self.catalog.relation(table).num_rows for table in query.tables}
        remaining: Set[str] = set(query.tables)

        first = max(sorted(remaining), key=lambda table: (sizes[table], table))
        steps = [JoinStep(table=first)]
        joined: Set[str] = {first}
        remaining.remove(first)

        while remaining:
            candidates = []
            for table in sorted(remaining):
                conditions = query.joins_with_any(table, joined)
                if conditions:
                    candidates.append((sizes[table], table, [cond for cond, _ in conditions]))
            if not candidates:
                raise PlanningError(
                    f"query {query.name!r}: tables {sorted(remaining)} are not connected "
                    "to the join prefix"
                )
            candidates.sort(key=lambda item: (-item[0], item[1]))
            _size, table, conditions = candidates[0]
            steps.append(JoinStep(table=table, conditions=conditions))
            joined.add(table)
            remaining.remove(table)
        return QueryPlan(query=query, steps=steps)

    # ------------------------------------------------------------------ #
    # Physical planning
    # ------------------------------------------------------------------ #
    def build_operator_tree(
        self,
        plan: QueryPlan,
        relation_provider: Optional[Callable[[str], Relation]] = None,
    ) -> Operator:
        """Instantiate the physical operator tree for ``plan``.

        ``relation_provider`` maps a table name to the :class:`Relation` to
        scan; by default the catalog's registered relations are used.  The
        vanilla-on-CSD executor passes a provider that scans only the
        segments it has fetched.
        """
        query = plan.query
        provider = relation_provider or self.catalog.relation

        def scan(table: str) -> Operator:
            return SequentialScan(provider(table), predicate=query.filter_for(table))

        current: Operator = scan(plan.steps[0].table)
        joined_tables = {plan.steps[0].table}
        for step in plan.steps[1:]:
            build_keys: List[str] = []
            probe_keys: List[str] = []
            for condition in step.conditions:
                build_keys.append(condition.column_for(step.table))
                probe_keys.append(condition.column_for(condition.other(step.table)))
            current = HashJoin(
                build=scan(step.table),
                probe=current,
                build_keys=build_keys,
                probe_keys=probe_keys,
            )
            joined_tables.add(step.table)

        if query.group_by or query.aggregates:
            current = HashAggregate(current, query.group_by, query.aggregates)
        if query.order_by:
            current = Sort(current, query.order_by)
        if query.limit is not None:
            current = Limit(current, query.limit)
        return current
