"""A small relational engine used as the database substrate.

The paper runs its experiments on PostgreSQL.  This package provides the
pieces of a relational engine that the experiments actually exercise:

* typed schemas and segmented relations (:mod:`repro.engine.schema`,
  :mod:`repro.engine.relation`),
* a catalog mapping relations to their segments and CSD object keys
  (:mod:`repro.engine.catalog`),
* an expression / predicate tree (:mod:`repro.engine.predicate`),
* a declarative join-query specification (:mod:`repro.engine.query`),
* physical operators — scans, filters, hash joins, aggregation, sort
  (:mod:`repro.engine.operators`),
* a left-deep planner and a pull-based in-memory executor
  (:mod:`repro.engine.planner`, :mod:`repro.engine.executor`),
* a cost model translating tuple counts and object transfers into simulated
  seconds (:mod:`repro.engine.cost`).

Rows are plain dictionaries keyed by column name.  Workload schemas use
prefixed column names (``l_orderkey``, ``o_orderkey`` …) so joining relations
never collide, mirroring TPC-H conventions.
"""

from repro.engine.types import DataType, date_to_ordinal, ordinal_to_date
from repro.engine.schema import Column, TableSchema
from repro.engine.relation import Relation, Segment
from repro.engine.catalog import Catalog
from repro.engine.query import AggregateSpec, JoinCondition, Query
from repro.engine.cost import CostModel
from repro.engine.executor import InMemoryExecutor
from repro.engine.planner import Planner

__all__ = [
    "AggregateSpec",
    "Catalog",
    "Column",
    "CostModel",
    "DataType",
    "InMemoryExecutor",
    "JoinCondition",
    "Planner",
    "Query",
    "Relation",
    "Segment",
    "TableSchema",
    "date_to_ordinal",
    "ordinal_to_date",
]
