"""Column data types and value helpers."""

from __future__ import annotations

import datetime
from enum import Enum
from typing import Any

from repro.exceptions import SchemaError


class DataType(Enum):
    """Supported column data types.

    Dates are stored as proleptic-Gregorian ordinals (integers) so that range
    predicates reduce to integer comparisons; :func:`date_to_ordinal` and
    :func:`ordinal_to_date` convert at the workload boundary.
    """

    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    DATE = "date"
    BOOLEAN = "boolean"

    def python_types(self) -> tuple:
        """Python types accepted for values of this data type."""
        if self is DataType.INTEGER:
            return (int,)
        if self is DataType.FLOAT:
            return (int, float)
        if self is DataType.STRING:
            return (str,)
        if self is DataType.DATE:
            return (int,)
        return (bool,)

    def validate(self, value: Any) -> None:
        """Raise :class:`SchemaError` if ``value`` is not valid for this type."""
        if value is None:
            return
        if self is DataType.BOOLEAN:
            if not isinstance(value, bool):
                raise SchemaError(f"expected bool, got {type(value).__name__}")
            return
        if self is DataType.INTEGER and isinstance(value, bool):
            raise SchemaError("booleans are not valid INTEGER values")
        if not isinstance(value, self.python_types()):
            raise SchemaError(
                f"expected {self.value} value, got {type(value).__name__} ({value!r})"
            )


def date_to_ordinal(value: str | datetime.date) -> int:
    """Convert an ISO date string or :class:`datetime.date` to an ordinal."""
    if isinstance(value, datetime.date):
        return value.toordinal()
    try:
        return datetime.date.fromisoformat(value).toordinal()
    except ValueError as exc:
        raise SchemaError(f"invalid ISO date: {value!r}") from exc


def ordinal_to_date(ordinal: int) -> datetime.date:
    """Convert a stored date ordinal back to a :class:`datetime.date`."""
    return datetime.date.fromordinal(ordinal)
