"""Expression and predicate trees evaluated over row dictionaries."""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence

from repro.exceptions import ExecutionError, QueryError

Row = Dict[str, object]

#: Column-name → value-array view of a columnar segment.
Columns = Mapping[str, Sequence[object]]


def _column_values(columns: Columns, name: str) -> Sequence[object]:
    """Look up one column array, matching the row-path missing-column error."""
    try:
        return columns[name]
    except KeyError:
        raise ExecutionError(f"row has no column {name!r}") from None


class Expression:
    """Base class for scalar expressions evaluated against a row."""

    def evaluate(self, row: Row) -> object:
        """Return the expression's value for ``row``."""
        raise NotImplementedError

    def columns(self) -> FrozenSet[str]:
        """Names of all columns referenced by the expression."""
        raise NotImplementedError


class ColumnRef(Expression):
    """Reference to a column by name."""

    def __init__(self, name: str) -> None:
        if not name:
            raise QueryError("column reference requires a name")
        self.name = name

    def evaluate(self, row: Row) -> object:
        try:
            return row[self.name]
        except KeyError:
            raise ExecutionError(f"row has no column {self.name!r}") from None

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"col({self.name})"


class Literal(Expression):
    """A constant value."""

    def __init__(self, value: object) -> None:
        self.value = value

    def evaluate(self, row: Row) -> object:
        return self.value

    def columns(self) -> FrozenSet[str]:
        return frozenset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"lit({self.value!r})"


_ARITHMETIC_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


class Arithmetic(Expression):
    """Binary arithmetic over two sub-expressions (``+ - * /``)."""

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _ARITHMETIC_OPS:
            raise QueryError(f"unsupported arithmetic operator: {op!r}")
        self.op = op
        self.left = left
        self.right = right
        self._apply = _ARITHMETIC_OPS[op]

    def evaluate(self, row: Row) -> object:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        try:
            return self._apply(left, right)
        except ZeroDivisionError:
            raise ExecutionError("division by zero in expression") from None

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"({self.left!r} {self.op} {self.right!r})"


class Predicate(Expression):
    """Base class for boolean expressions."""

    def evaluate(self, row: Row) -> bool:  # type: ignore[override]
        raise NotImplementedError

    def selection(
        self, columns: Columns, count: int, indices: Optional[List[int]] = None
    ) -> Optional[List[int]]:
        """Bulk evaluation over column arrays: indices of accepted rows.

        ``indices`` restricts evaluation to those row positions (ascending);
        ``None`` means all ``count`` rows.  Returns ``None`` when this
        predicate shape has no bulk path — the caller must then fall back to
        per-row :meth:`evaluate`.  Implementations reproduce the row path
        exactly: same missing-column errors, same None-compares-false
        behaviour, and sub-predicates are only evaluated for rows the row
        path would have reached (so short-circuiting raises — or avoids
        raising — identically).
        """
        return None


_COMPARISON_OPS = {
    "=": lambda a, b: a == b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Comparison(Predicate):
    """Compare two expressions with a relational operator."""

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _COMPARISON_OPS:
            raise QueryError(f"unsupported comparison operator: {op!r}")
        self.op = op
        self.left = left
        self.right = right
        self._compare = compare = _COMPARISON_OPS[op]
        # Column-vs-literal is the overwhelmingly common shape on the segment
        # filter path; compile it to a single closure so each row costs one
        # call instead of a tree walk.  Semantics are identical, including
        # the missing-column error and None-compares-false behaviour.
        if type(left) is ColumnRef and type(right) is Literal:
            name = left.name
            constant = right.value
            if constant is None:

                def _evaluate(row: Row) -> bool:
                    return False

            else:

                def _evaluate(row: Row) -> bool:
                    try:
                        value = row[name]
                    except KeyError:
                        raise ExecutionError(f"row has no column {name!r}") from None
                    if value is None:
                        return False
                    return bool(compare(value, constant))

            self.evaluate = _evaluate  # type: ignore[method-assign]

    def evaluate(self, row: Row) -> bool:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return False
        return bool(self._compare(left, right))

    def selection(
        self, columns: Columns, count: int, indices: Optional[List[int]] = None
    ) -> Optional[List[int]]:
        left, right = self.left, self.right
        compare = self._compare
        if type(left) is ColumnRef and type(right) is Literal:
            constant = right.value
            if constant is None:
                # Mirrors the compiled closure: a None literal rejects every
                # row without ever touching the column.
                return []
            if count == 0 or (indices is not None and not indices):
                return []
            values = _column_values(columns, left.name)
            if indices is None:
                return [
                    i
                    for i, value in enumerate(values)
                    if value is not None and compare(value, constant)
                ]
            return [
                i
                for i in indices
                if values[i] is not None and compare(values[i], constant)
            ]
        if type(left) is ColumnRef and type(right) is ColumnRef:
            if count == 0 or (indices is not None and not indices):
                return []
            left_values = _column_values(columns, left.name)
            right_values = _column_values(columns, right.name)
            if indices is None:
                return [
                    i
                    for i, (a, b) in enumerate(zip(left_values, right_values))
                    if a is not None and b is not None and compare(a, b)
                ]
            return [
                i
                for i in indices
                if left_values[i] is not None
                and right_values[i] is not None
                and compare(left_values[i], right_values[i])
            ]
        return None

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"({self.left!r} {self.op} {self.right!r})"


class Between(Predicate):
    """``low <= expr < high`` (half-open, convenient for date ranges)."""

    def __init__(self, expr: Expression, low: object, high: object, inclusive: bool = False) -> None:
        self.expr = expr
        self.low = low
        self.high = high
        self.inclusive = inclusive
        if type(expr) is ColumnRef:
            name = expr.name

            if inclusive:

                def _evaluate(row: Row) -> bool:
                    try:
                        value = row[name]
                    except KeyError:
                        raise ExecutionError(f"row has no column {name!r}") from None
                    if value is None:
                        return False
                    return bool(low <= value <= high)  # type: ignore[operator]

            else:

                def _evaluate(row: Row) -> bool:
                    try:
                        value = row[name]
                    except KeyError:
                        raise ExecutionError(f"row has no column {name!r}") from None
                    if value is None:
                        return False
                    return bool(low <= value < high)  # type: ignore[operator]

            self.evaluate = _evaluate  # type: ignore[method-assign]

    def evaluate(self, row: Row) -> bool:
        value = self.expr.evaluate(row)
        if value is None:
            return False
        if self.inclusive:
            return bool(self.low <= value <= self.high)  # type: ignore[operator]
        return bool(self.low <= value < self.high)  # type: ignore[operator]

    def selection(
        self, columns: Columns, count: int, indices: Optional[List[int]] = None
    ) -> Optional[List[int]]:
        if type(self.expr) is not ColumnRef:
            return None
        if count == 0 or (indices is not None and not indices):
            return []
        values = _column_values(columns, self.expr.name)
        low, high = self.low, self.high
        positions = range(count) if indices is None else indices
        if self.inclusive:
            return [
                i
                for i in positions
                if values[i] is not None and low <= values[i] <= high  # type: ignore[operator]
            ]
        return [
            i
            for i in positions
            if values[i] is not None and low <= values[i] < high  # type: ignore[operator]
        ]

    def columns(self) -> FrozenSet[str]:
        return self.expr.columns()


class InList(Predicate):
    """Membership test against a fixed set of values."""

    def __init__(self, expr: Expression, values: Iterable[object]) -> None:
        self.expr = expr
        self.values = frozenset(values)
        if not self.values:
            raise QueryError("IN list must not be empty")
        if type(expr) is ColumnRef:
            name = expr.name
            members = self.values

            def _evaluate(row: Row) -> bool:
                try:
                    value = row[name]
                except KeyError:
                    raise ExecutionError(f"row has no column {name!r}") from None
                return value in members

            self.evaluate = _evaluate  # type: ignore[method-assign]

    def evaluate(self, row: Row) -> bool:
        return self.expr.evaluate(row) in self.values

    def selection(
        self, columns: Columns, count: int, indices: Optional[List[int]] = None
    ) -> Optional[List[int]]:
        if type(self.expr) is not ColumnRef:
            return None
        if count == 0 or (indices is not None and not indices):
            return []
        values = _column_values(columns, self.expr.name)
        members = self.values
        if indices is None:
            return [i for i, value in enumerate(values) if value in members]
        return [i for i in indices if values[i] in members]

    def columns(self) -> FrozenSet[str]:
        return self.expr.columns()


class And(Predicate):
    """Conjunction of one or more predicates."""

    def __init__(self, *predicates: Predicate) -> None:
        if not predicates:
            raise QueryError("And requires at least one predicate")
        self.predicates: Sequence[Predicate] = tuple(predicates)
        self._evaluators = tuple(predicate.evaluate for predicate in predicates)

    def evaluate(self, row: Row) -> bool:
        for evaluate in self._evaluators:
            if not evaluate(row):
                return False
        return True

    def selection(
        self, columns: Columns, count: int, indices: Optional[List[int]] = None
    ) -> Optional[List[int]]:
        # Each child only sees the rows that survived the previous children,
        # mirroring the row path's short-circuit: a child that would raise is
        # only reached when at least one row reaches it.
        result = indices
        for predicate in self.predicates:
            if result is not None and not result:
                return result
            result = predicate.selection(columns, count, result)
            if result is None:
                return None
        return result if result is not None else list(range(count))

    def columns(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for predicate in self.predicates:
            result |= predicate.columns()
        return result


class Or(Predicate):
    """Disjunction of one or more predicates."""

    def __init__(self, *predicates: Predicate) -> None:
        if not predicates:
            raise QueryError("Or requires at least one predicate")
        self.predicates: Sequence[Predicate] = tuple(predicates)
        self._evaluators = tuple(predicate.evaluate for predicate in predicates)

    def evaluate(self, row: Row) -> bool:
        for evaluate in self._evaluators:
            if evaluate(row):
                return True
        return False

    def selection(
        self, columns: Columns, count: int, indices: Optional[List[int]] = None
    ) -> Optional[List[int]]:
        # Each child only sees rows every previous child rejected (the row
        # path stops evaluating children once one accepts).
        remaining = list(range(count)) if indices is None else list(indices)
        accepted: List[int] = []
        for predicate in self.predicates:
            if not remaining:
                break
            selected = predicate.selection(columns, count, remaining)
            if selected is None:
                return None
            if selected:
                accepted.extend(selected)
                selected_set = set(selected)
                remaining = [i for i in remaining if i not in selected_set]
        accepted.sort()
        return accepted

    def columns(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for predicate in self.predicates:
            result |= predicate.columns()
        return result


class Not(Predicate):
    """Negation of a predicate."""

    def __init__(self, predicate: Predicate) -> None:
        self.predicate = predicate

    def evaluate(self, row: Row) -> bool:
        return not self.predicate.evaluate(row)

    def selection(
        self, columns: Columns, count: int, indices: Optional[List[int]] = None
    ) -> Optional[List[int]]:
        base = list(range(count)) if indices is None else indices
        selected = self.predicate.selection(columns, count, base)
        if selected is None:
            return None
        excluded = set(selected)
        return [i for i in base if i not in excluded]

    def columns(self) -> FrozenSet[str]:
        return self.predicate.columns()


class TruePredicate(Predicate):
    """Predicate that accepts every row (useful as a neutral filter)."""

    def evaluate(self, row: Row) -> bool:
        return True

    def selection(
        self, columns: Columns, count: int, indices: Optional[List[int]] = None
    ) -> Optional[List[int]]:
        return list(range(count)) if indices is None else list(indices)

    def columns(self) -> FrozenSet[str]:
        return frozenset()


# --------------------------------------------------------------------------- #
# Convenience constructors, used heavily by the workload definitions
# --------------------------------------------------------------------------- #
def col(name: str) -> ColumnRef:
    """Shorthand for :class:`ColumnRef`."""
    return ColumnRef(name)


def lit(value: object) -> Literal:
    """Shorthand for :class:`Literal`."""
    return Literal(value)


def eq(column: str, value: object) -> Comparison:
    """``column = value`` against a literal."""
    return Comparison("=", ColumnRef(column), Literal(value))


def ge(column: str, value: object) -> Comparison:
    """``column >= value`` against a literal."""
    return Comparison(">=", ColumnRef(column), Literal(value))


def lt(column: str, value: object) -> Comparison:
    """``column < value`` against a literal."""
    return Comparison("<", ColumnRef(column), Literal(value))


def between(column: str, low: object, high: object, inclusive: bool = False) -> Between:
    """``low <= column < high`` (or inclusive on both ends)."""
    return Between(ColumnRef(column), low, high, inclusive=inclusive)


def in_list(column: str, values: Iterable[object]) -> InList:
    """``column IN (values…)``."""
    return InList(ColumnRef(column), values)


def conjunction(predicates: List[Predicate]) -> Predicate:
    """AND a list of predicates together, tolerating empty lists."""
    if not predicates:
        return TruePredicate()
    if len(predicates) == 1:
        return predicates[0]
    return And(*predicates)
