"""Declarative specification of the analytical join queries used in the paper."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.engine.catalog import Catalog
from repro.engine.predicate import ColumnRef, Expression, Predicate
from repro.exceptions import QueryError

_AGGREGATE_FUNCTIONS = ("sum", "count", "avg", "min", "max")


@dataclass(frozen=True)
class JoinCondition:
    """Equi-join condition ``left_table.left_column = right_table.right_column``."""

    left_table: str
    left_column: str
    right_table: str
    right_column: str

    def involves(self, table: str) -> bool:
        """Whether ``table`` appears on either side of the condition."""
        return table in (self.left_table, self.right_table)

    def other(self, table: str) -> str:
        """The table on the opposite side of ``table``."""
        if table == self.left_table:
            return self.right_table
        if table == self.right_table:
            return self.left_table
        raise QueryError(f"join condition {self} does not involve table {table!r}")

    def column_for(self, table: str) -> str:
        """The join column belonging to ``table``."""
        if table == self.left_table:
            return self.left_column
        if table == self.right_table:
            return self.right_column
        raise QueryError(f"join condition {self} does not involve table {table!r}")


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate in the SELECT list, e.g. ``sum(l_extendedprice) AS revenue``."""

    function: str
    expression: Optional[Expression]
    alias: str

    def __post_init__(self) -> None:
        if self.function not in _AGGREGATE_FUNCTIONS:
            raise QueryError(f"unsupported aggregate function: {self.function!r}")
        if self.function != "count" and self.expression is None:
            raise QueryError(f"aggregate {self.function!r} requires an expression")
        if not self.alias:
            raise QueryError("aggregate requires an alias")


@dataclass
class Query:
    """A multi-way equi-join with per-table filters and a group-by aggregation.

    This covers the query shapes exercised in the paper (TPC-H Q1/Q3/Q5/Q6/Q12,
    SSB queries, the analytics-benchmark join task and the NREF join): a
    connected equi-join graph, conjunctive single-table filters, grouping
    columns and aggregates.
    """

    name: str
    tables: Sequence[str]
    joins: Sequence[JoinCondition] = field(default_factory=tuple)
    filters: Mapping[str, Predicate] = field(default_factory=dict)
    group_by: Sequence[str] = field(default_factory=tuple)
    aggregates: Sequence[AggregateSpec] = field(default_factory=tuple)
    order_by: Sequence[str] = field(default_factory=tuple)
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        self.tables = tuple(self.tables)
        self.joins = tuple(self.joins)
        self.filters = dict(self.filters)
        self.group_by = tuple(self.group_by)
        self.aggregates = tuple(self.aggregates)
        self.order_by = tuple(self.order_by)
        if not self.tables:
            raise QueryError(f"query {self.name!r} must reference at least one table")
        if len(set(self.tables)) != len(self.tables):
            raise QueryError(f"query {self.name!r} lists a table twice")
        for join in self.joins:
            for table in (join.left_table, join.right_table):
                if table not in self.tables:
                    raise QueryError(
                        f"query {self.name!r}: join references table {table!r} "
                        "which is not in the FROM list"
                    )
        for table in self.filters:
            if table not in self.tables:
                raise QueryError(
                    f"query {self.name!r}: filter references unknown table {table!r}"
                )
        if not self.aggregates and not self.group_by:
            raise QueryError(
                f"query {self.name!r} must produce either aggregates or group-by columns"
            )
        if self.limit is not None and self.limit <= 0:
            raise QueryError("limit must be positive when given")

    # ------------------------------------------------------------------ #
    # Join-graph helpers
    # ------------------------------------------------------------------ #
    def join_graph(self) -> Dict[str, Set[str]]:
        """Adjacency mapping table -> set of tables it joins with."""
        graph: Dict[str, Set[str]] = {table: set() for table in self.tables}
        for join in self.joins:
            graph[join.left_table].add(join.right_table)
            graph[join.right_table].add(join.left_table)
        return graph

    def is_connected(self) -> bool:
        """Whether the join graph connects all referenced tables."""
        if len(self.tables) == 1:
            return True
        graph = self.join_graph()
        seen = {self.tables[0]}
        frontier = [self.tables[0]]
        while frontier:
            current = frontier.pop()
            for neighbour in graph[current]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return len(seen) == len(self.tables)

    def joins_between(self, left: str, right: str) -> List[JoinCondition]:
        """All join conditions connecting ``left`` and ``right``."""
        return [
            join
            for join in self.joins
            if {join.left_table, join.right_table} == {left, right}
        ]

    def joins_with_any(self, table: str, others: Set[str]) -> List[Tuple[JoinCondition, str]]:
        """Join conditions connecting ``table`` to any table in ``others``.

        Returns ``(condition, other_table)`` pairs.
        """
        result: List[Tuple[JoinCondition, str]] = []
        for join in self.joins:
            if not join.involves(table):
                continue
            other = join.other(table)
            if other in others:
                result.append((join, other))
        return result

    # ------------------------------------------------------------------ #
    # Validation against a catalog
    # ------------------------------------------------------------------ #
    def validate(self, catalog: Catalog) -> None:
        """Check that tables, columns and group-by references all resolve."""
        for table in self.tables:
            if not catalog.has_relation(table):
                raise QueryError(f"query {self.name!r}: unknown table {table!r}")
        if not self.is_connected():
            raise QueryError(f"query {self.name!r}: join graph is not connected")
        column_owner: Dict[str, str] = {}
        for table in self.tables:
            for column in catalog.schema(table).column_names:
                if column in column_owner:
                    raise QueryError(
                        f"query {self.name!r}: column {column!r} exists in both "
                        f"{column_owner[column]!r} and {table!r}; column names must be unique"
                    )
                column_owner[column] = table
        for join in self.joins:
            for table, column in (
                (join.left_table, join.left_column),
                (join.right_table, join.right_column),
            ):
                if not catalog.schema(table).has_column(column):
                    raise QueryError(
                        f"query {self.name!r}: table {table!r} has no column {column!r}"
                    )
        for table, predicate in self.filters.items():
            schema = catalog.schema(table)
            for column in predicate.columns():
                if not schema.has_column(column):
                    raise QueryError(
                        f"query {self.name!r}: filter on {table!r} references "
                        f"unknown column {column!r}"
                    )
        available = set(column_owner)
        for column in self.group_by:
            if column not in available:
                raise QueryError(f"query {self.name!r}: unknown group-by column {column!r}")
        for aggregate in self.aggregates:
            if aggregate.expression is None:
                continue
            for column in aggregate.expression.columns():
                if column not in available:
                    raise QueryError(
                        f"query {self.name!r}: aggregate {aggregate.alias!r} references "
                        f"unknown column {column!r}"
                    )
        output_columns = set(self.group_by) | {agg.alias for agg in self.aggregates}
        for column in self.order_by:
            if column not in output_columns:
                raise QueryError(
                    f"query {self.name!r}: order-by column {column!r} is not produced "
                    "by the query"
                )

    def filter_for(self, table: str) -> Optional[Predicate]:
        """The single-table filter attached to ``table``, if any."""
        return self.filters.get(table)

    def group_by_refs(self) -> List[ColumnRef]:
        """Column references for the group-by columns."""
        return [ColumnRef(name) for name in self.group_by]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Query {self.name} tables={list(self.tables)}>"
