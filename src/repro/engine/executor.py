"""In-memory query execution (the "local PostgreSQL" baseline).

:class:`InMemoryExecutor` runs a query entirely over catalog-resident data
with no storage layer involved.  The paper uses the equivalent configuration
("all data stored locally, native file system") both as the ideal baseline
and to calibrate the component breakdown in Table 3; this reproduction also
uses it as ground truth for verifying the out-of-order Skipper results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.engine.catalog import Catalog
from repro.engine.cost import CostModel
from repro.engine.operators.base import OperatorStats, Row
from repro.engine.planner import Planner, QueryPlan
from repro.engine.query import Query


@dataclass
class ExecutionResult:
    """Result rows plus the work counters accumulated while producing them."""

    query_name: str
    rows: List[Row]
    stats: OperatorStats
    plan: QueryPlan

    @property
    def num_rows(self) -> int:
        """Number of result rows."""
        return len(self.rows)

    def processing_time(self, cost_model: CostModel) -> float:
        """Simulated CPU seconds for this execution under ``cost_model``."""
        return (
            cost_model.scan_time(self.stats.tuples_scanned)
            + cost_model.build_time(self.stats.tuples_built)
            + cost_model.probe_time(self.stats.tuples_probed)
            + cost_model.output_time(self.stats.tuples_output)
        )


def canonical_rows(rows: List[Row]) -> List[Dict[str, object]]:
    """Return ``rows`` in a canonical order for comparisons across executors."""

    def sort_key(row: Dict[str, object]):
        return tuple(sorted((key, repr(value)) for key, value in row.items()))

    return sorted(rows, key=sort_key)


class InMemoryExecutor:
    """Execute queries directly over the relations registered in a catalog."""

    def __init__(self, catalog: Catalog, planner: Optional[Planner] = None) -> None:
        self.catalog = catalog
        self.planner = planner or Planner(catalog)

    def execute(self, query: Query) -> ExecutionResult:
        """Plan and run ``query``, returning rows and work counters."""
        plan = self.planner.plan(query)
        root = self.planner.build_operator_tree(plan)
        rows = root.rows()
        stats = root.collect_stats()
        return ExecutionResult(query_name=query.name, rows=rows, stats=stats, plan=plan)
