"""Base class and statistics for physical operators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List


Row = Dict[str, object]


@dataclass
class OperatorStats:
    """Work counters accumulated while an operator runs.

    The executors convert these counters into simulated CPU time through the
    :class:`~repro.engine.cost.CostModel`, so every operator is responsible
    for keeping them up to date.
    """

    tuples_scanned: int = 0
    tuples_built: int = 0
    tuples_probed: int = 0
    tuples_output: int = 0

    def merge(self, other: OperatorStats) -> None:
        """Add the counters of ``other`` into this object."""
        self.tuples_scanned += other.tuples_scanned
        self.tuples_built += other.tuples_built
        self.tuples_probed += other.tuples_probed
        self.tuples_output += other.tuples_output

    def total(self) -> int:
        """Total number of counted tuple operations."""
        return (
            self.tuples_scanned + self.tuples_built + self.tuples_probed + self.tuples_output
        )


@dataclass
class PlanStats:
    """Aggregated statistics for a whole plan execution."""

    operators: List[OperatorStats] = field(default_factory=list)

    def combined(self) -> OperatorStats:
        """Sum of all collected per-operator statistics."""
        result = OperatorStats()
        for stats in self.operators:
            result.merge(stats)
        return result


class Operator:
    """A physical operator producing rows via iteration."""

    def __init__(self) -> None:
        self.stats = OperatorStats()

    def __iter__(self) -> Iterator[Row]:
        raise NotImplementedError

    def rows(self) -> List[Row]:
        """Materialise the operator's full output."""
        return list(iter(self))

    def collect_stats(self) -> OperatorStats:
        """Statistics for this operator and all of its children."""
        total = OperatorStats()
        total.merge(self.stats)
        for child in self.children():
            total.merge(child.collect_stats())
        return total

    def children(self) -> List[Operator]:
        """Child operators (empty for leaves)."""
        return []
