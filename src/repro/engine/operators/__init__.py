"""Physical operators of the mini relational engine.

All operators follow the classic iterator model: they are Python iterables
yielding row dictionaries.  They are deliberately simple — the experiments
care about access order and relative cost, not about squeezing tuples per
second — but they compute real answers so that Skipper's out-of-order results
can be verified against the vanilla plans.
"""

from repro.engine.operators.base import Operator, OperatorStats
from repro.engine.operators.scan import SegmentScan, SequentialScan
from repro.engine.operators.filter import Filter
from repro.engine.operators.project import Project
from repro.engine.operators.hash_join import HashJoin
from repro.engine.operators.aggregate import AggregateState, HashAggregate
from repro.engine.operators.sort import Sort
from repro.engine.operators.limit import Limit

__all__ = [
    "AggregateState",
    "Filter",
    "HashAggregate",
    "HashJoin",
    "Limit",
    "Operator",
    "OperatorStats",
    "Project",
    "SegmentScan",
    "SequentialScan",
    "Sort",
]
