"""Row filter operator."""

from __future__ import annotations

from typing import Iterator, List

from repro.engine.operators.base import Operator, Row
from repro.engine.predicate import Predicate


class Filter(Operator):
    """Yield only the child rows satisfying a predicate."""

    def __init__(self, child: Operator, predicate: Predicate) -> None:
        super().__init__()
        self.child = child
        self.predicate = predicate

    def children(self) -> List[Operator]:
        return [self.child]

    def __iter__(self) -> Iterator[Row]:
        for row in self.child:
            self.stats.tuples_scanned += 1
            if self.predicate.evaluate(row):
                self.stats.tuples_output += 1
                yield row
