"""Scan operators over segments and whole relations."""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.engine.operators.base import Operator, OperatorStats, Row
from repro.engine.predicate import Predicate
from repro.engine.relation import Relation, Segment


def _scan_segment(
    segment: Segment, predicate: Optional[Predicate], stats: OperatorStats
) -> Iterator[Row]:
    """Yield a segment's (filtered) rows, columnar fast path included.

    When the segment is columnar and the predicate supports bulk
    :meth:`~repro.engine.predicate.Predicate.selection`, the filter runs
    over the column arrays and only matching rows are materialised.  The
    stats stay call-for-call identical to the per-row path, including under
    early termination (e.g. a downstream Limit): ``tuples_scanned`` counts
    exactly the rows the per-row scan would have touched by that point.
    """
    if predicate is None:
        for row in segment.rows:
            stats.tuples_scanned += 1
            stats.tuples_output += 1
            yield row
        return
    selection: Optional[List[int]] = None
    columns = segment.columns
    total = len(segment)
    if columns is not None and total > 0:
        selection = predicate.selection(columns, total)
    if selection is None:
        for row in segment.rows:
            stats.tuples_scanned += 1
            if predicate.evaluate(row):
                stats.tuples_output += 1
                yield row
        return
    scanned = 0
    for position, row in zip(selection, segment.rows_at(selection)):
        stats.tuples_scanned += position + 1 - scanned
        scanned = position + 1
        stats.tuples_output += 1
        yield row
    stats.tuples_scanned += total - scanned


class SegmentScan(Operator):
    """Scan a single segment, optionally applying a filter predicate."""

    def __init__(self, segment: Segment, predicate: Optional[Predicate] = None) -> None:
        super().__init__()
        self.segment = segment
        self.predicate = predicate

    def __iter__(self) -> Iterator[Row]:
        return _scan_segment(self.segment, self.predicate, self.stats)


class SequentialScan(Operator):
    """Scan every segment of a relation in order (PostgreSQL seq-scan)."""

    def __init__(
        self,
        relation: Relation,
        predicate: Optional[Predicate] = None,
        segments: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__()
        self.relation = relation
        self.predicate = predicate
        if segments is None:
            self._segments: List[Segment] = list(relation.segments)
        else:
            self._segments = [relation.segment(index) for index in segments]

    def __iter__(self) -> Iterator[Row]:
        for segment in self._segments:
            yield from _scan_segment(segment, self.predicate, self.stats)
