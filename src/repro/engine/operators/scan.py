"""Scan operators over segments and whole relations."""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.engine.operators.base import Operator, Row
from repro.engine.predicate import Predicate
from repro.engine.relation import Relation, Segment


class SegmentScan(Operator):
    """Scan a single segment, optionally applying a filter predicate."""

    def __init__(self, segment: Segment, predicate: Optional[Predicate] = None) -> None:
        super().__init__()
        self.segment = segment
        self.predicate = predicate

    def __iter__(self) -> Iterator[Row]:
        for row in self.segment.rows:
            self.stats.tuples_scanned += 1
            if self.predicate is None or self.predicate.evaluate(row):
                self.stats.tuples_output += 1
                yield row


class SequentialScan(Operator):
    """Scan every segment of a relation in order (PostgreSQL seq-scan)."""

    def __init__(
        self,
        relation: Relation,
        predicate: Optional[Predicate] = None,
        segments: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__()
        self.relation = relation
        self.predicate = predicate
        if segments is None:
            self._segments: List[Segment] = list(relation.segments)
        else:
            self._segments = [relation.segment(index) for index in segments]

    def __iter__(self) -> Iterator[Row]:
        for segment in self._segments:
            for row in segment.rows:
                self.stats.tuples_scanned += 1
                if self.predicate is None or self.predicate.evaluate(row):
                    self.stats.tuples_output += 1
                    yield row
