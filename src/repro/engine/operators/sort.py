"""Sort operator."""

from __future__ import annotations

from typing import Iterator, List, Sequence

from repro.engine.operators.base import Operator, Row


class Sort(Operator):
    """Blocking sort on one or more columns."""

    def __init__(self, child: Operator, keys: Sequence[str], descending: bool = False) -> None:
        super().__init__()
        self.child = child
        self.keys = list(keys)
        self.descending = descending

    def children(self) -> List[Operator]:
        return [self.child]

    def __iter__(self) -> Iterator[Row]:
        rows = list(self.child)
        self.stats.tuples_scanned += len(rows)
        rows.sort(key=lambda row: tuple(row[key] for key in self.keys), reverse=self.descending)
        for row in rows:
            self.stats.tuples_output += 1
            yield row
