"""Projection operator."""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence

from repro.engine.operators.base import Operator, Row
from repro.engine.predicate import Expression
from repro.exceptions import QueryError


class Project(Operator):
    """Produce rows containing selected columns and/or computed expressions."""

    def __init__(
        self,
        child: Operator,
        columns: Optional[Sequence[str]] = None,
        expressions: Optional[Mapping[str, Expression]] = None,
    ) -> None:
        super().__init__()
        if not columns and not expressions:
            raise QueryError("Project requires at least one column or expression")
        self.child = child
        self.columns = list(columns or [])
        self.expressions = dict(expressions or {})

    def children(self) -> List[Operator]:
        return [self.child]

    def __iter__(self) -> Iterator[Row]:
        for row in self.child:
            output: Dict[str, object] = {name: row[name] for name in self.columns}
            for alias, expression in self.expressions.items():
                output[alias] = expression.evaluate(row)
            self.stats.tuples_output += 1
            yield output
