"""Limit operator."""

from __future__ import annotations

from typing import Iterator, List

from repro.engine.operators.base import Operator, Row
from repro.exceptions import QueryError


class Limit(Operator):
    """Yield at most the first ``count`` rows of the child."""

    def __init__(self, child: Operator, count: int) -> None:
        super().__init__()
        if count <= 0:
            raise QueryError("limit must be positive")
        self.child = child
        self.count = count

    def children(self) -> List[Operator]:
        return [self.child]

    def __iter__(self) -> Iterator[Row]:
        emitted = 0
        for row in self.child:
            if emitted >= self.count:
                break
            emitted += 1
            self.stats.tuples_output += 1
            yield row
