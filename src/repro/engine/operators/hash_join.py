"""In-memory equi hash join."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.engine.operators.base import Operator, Row
from repro.exceptions import ExecutionError


def join_key(row: Row, columns: Sequence[str]) -> Tuple[object, ...]:
    """Extract the join-key tuple for ``columns`` from ``row``."""
    try:
        return tuple(row[column] for column in columns)
    except KeyError as exc:
        raise ExecutionError(f"join key column missing from row: {exc}") from None


class HashJoin(Operator):
    """Classic build/probe equi-join.

    The build side is materialised into a hash table keyed on
    ``build_keys``; the probe side streams and emits merged rows for every
    match.  Column names are assumed globally unique (TPC-H style prefixes),
    so merging two row dictionaries never silently drops data; an
    :class:`ExecutionError` is raised if a collision with differing values is
    detected.
    """

    def __init__(
        self,
        build: Operator,
        probe: Operator,
        build_keys: Sequence[str],
        probe_keys: Sequence[str],
    ) -> None:
        super().__init__()
        if len(build_keys) != len(probe_keys) or not build_keys:
            raise ExecutionError("hash join requires matching, non-empty key lists")
        self.build = build
        self.probe = probe
        self.build_keys = list(build_keys)
        self.probe_keys = list(probe_keys)

    def children(self) -> List[Operator]:
        return [self.build, self.probe]

    def __iter__(self) -> Iterator[Row]:
        table: Dict[Tuple[object, ...], List[Row]] = defaultdict(list)
        for row in self.build:
            self.stats.tuples_built += 1
            table[join_key(row, self.build_keys)].append(row)

        for probe_row in self.probe:
            self.stats.tuples_probed += 1
            matches = table.get(join_key(probe_row, self.probe_keys))
            if not matches:
                continue
            for build_row in matches:
                merged = merge_rows(build_row, probe_row)
                self.stats.tuples_output += 1
                yield merged


def merge_rows(left: Row, right: Row) -> Row:
    """Merge two row dictionaries, checking for conflicting duplicates."""
    merged = {**left, **right}
    if len(merged) != len(left) + len(right):
        # Overlapping keys: only legal when both sides agree on the value.
        for key, value in right.items():
            if key in left and left[key] != value:
                raise ExecutionError(
                    f"column {key!r} appears on both join sides with different values"
                )
    return merged
