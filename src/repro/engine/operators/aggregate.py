"""Hash aggregation and an incremental aggregate accumulator.

:class:`AggregateState` is shared by the vanilla executor and Skipper's
MJoin: the latter feeds it result tuples subplan by subplan, in whatever
order the CSD delivers data, and the final answer is identical to a blocking
aggregation — an invariant the test-suite checks.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.engine.operators.base import Operator, Row
from repro.engine.query import AggregateSpec
from repro.exceptions import ExecutionError


class _Accumulator:
    """Running value of one aggregate within one group."""

    __slots__ = ("function", "count", "total", "minimum", "maximum")

    def __init__(self, function: str) -> None:
        self.function = function
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[object] = None
        self.maximum: Optional[object] = None

    def update(self, value: object) -> None:
        self.count += 1
        if self.function in ("sum", "avg"):
            if value is None:
                raise ExecutionError("cannot sum NULL values")
            self.total += value  # type: ignore[operator]
        elif self.function == "min":
            if self.minimum is None or value < self.minimum:  # type: ignore[operator]
                self.minimum = value
        elif self.function == "max":
            if self.maximum is None or value > self.maximum:  # type: ignore[operator]
                self.maximum = value

    def result(self) -> object:
        if self.function == "count":
            return self.count
        if self.function == "sum":
            return self.total
        if self.function == "avg":
            if self.count == 0:
                return None
            return self.total / self.count
        if self.function == "min":
            return self.minimum
        return self.maximum


class AggregateState:
    """Incremental GROUP BY accumulator.

    Rows can be added in any order and in any number of batches; calling
    :meth:`results` at any point yields the aggregate values over everything
    added so far.
    """

    def __init__(self, group_by: Sequence[str], aggregates: Sequence[AggregateSpec]) -> None:
        self.group_by = list(group_by)
        self.aggregates = list(aggregates)
        self._groups: Dict[Tuple[object, ...], List[_Accumulator]] = {}

    def add(self, row: Row) -> None:
        """Fold one input row into the aggregation state."""
        key = tuple(row[column] for column in self.group_by)
        accumulators = self._groups.get(key)
        if accumulators is None:
            accumulators = [_Accumulator(spec.function) for spec in self.aggregates]
            self._groups[key] = accumulators
        for accumulator, spec in zip(accumulators, self.aggregates):
            if spec.function == "count" and spec.expression is None:
                accumulator.update(1)
            else:
                accumulator.update(spec.expression.evaluate(row))  # type: ignore[union-attr]

    def add_all(self, rows: Sequence[Row]) -> None:
        """Fold a batch of rows into the aggregation state."""
        for row in rows:
            self.add(row)

    @property
    def num_groups(self) -> int:
        """Number of distinct group keys observed so far."""
        return len(self._groups)

    def results(self) -> List[Row]:
        """Materialise one output row per group."""
        output: List[Row] = []
        for key, accumulators in self._groups.items():
            row: Dict[str, object] = dict(zip(self.group_by, key))
            for accumulator, spec in zip(accumulators, self.aggregates):
                row[spec.alias] = accumulator.result()
            output.append(row)
        return output


class HashAggregate(Operator):
    """Blocking GROUP BY over a child operator."""

    def __init__(
        self,
        child: Operator,
        group_by: Sequence[str],
        aggregates: Sequence[AggregateSpec],
    ) -> None:
        super().__init__()
        self.child = child
        self.group_by = list(group_by)
        self.aggregates = list(aggregates)

    def children(self) -> List[Operator]:
        return [self.child]

    def __iter__(self) -> Iterator[Row]:
        state = AggregateState(self.group_by, self.aggregates)
        for row in self.child:
            self.stats.tuples_scanned += 1
            state.add(row)
        for row in state.results():
            self.stats.tuples_output += 1
            yield row
