"""Database catalog: relation metadata and segment-to-object mapping.

Mirrors the role of PostgreSQL's catalog in the paper: the only data kept on
the client's local disk.  The catalog knows, for every relation, how many
segments it has and which CSD object stores each segment, so an executor can
issue object requests without touching the data itself.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.engine.relation import Relation, Segment
from repro.engine.schema import TableSchema
from repro.exceptions import CatalogError


class Catalog:
    """Registry of relations known to a database instance."""

    def __init__(self) -> None:
        self._relations: Dict[str, Relation] = {}

    # ------------------------------------------------------------------ #
    # Registration / lookup
    # ------------------------------------------------------------------ #
    def register(self, relation: Relation) -> None:
        """Add ``relation`` to the catalog (names must be unique)."""
        if relation.name in self._relations:
            raise CatalogError(f"relation {relation.name!r} is already registered")
        self._relations[relation.name] = relation

    def register_all(self, relations: Iterable[Relation]) -> None:
        """Register every relation in ``relations``."""
        for relation in relations:
            self.register(relation)

    def has_relation(self, name: str) -> bool:
        """Whether a relation called ``name`` is registered."""
        return name in self._relations

    def relation(self, name: str) -> Relation:
        """Return the relation called ``name`` or raise :class:`CatalogError`."""
        try:
            return self._relations[name]
        except KeyError:
            raise CatalogError(f"unknown relation: {name!r}") from None

    def schema(self, name: str) -> TableSchema:
        """Return the schema of relation ``name``."""
        return self.relation(name).schema

    def table_names(self) -> List[str]:
        """Names of all registered relations (registration order)."""
        return list(self._relations)

    # ------------------------------------------------------------------ #
    # Segment / object metadata
    # ------------------------------------------------------------------ #
    def num_segments(self, name: str) -> int:
        """Number of segments of relation ``name``."""
        return self.relation(name).num_segments

    def segment(self, name: str, index: int) -> Segment:
        """Return segment ``index`` of relation ``name``."""
        return self.relation(name).segment(index)

    def segment_ids(self, name: str) -> List[str]:
        """Object identifiers (``table.index``) for all segments of a table."""
        return [segment.segment_id for segment in self.relation(name).segments]

    def segment_ids_for_tables(self, tables: Iterable[str]) -> List[str]:
        """Object identifiers for all segments of every table in ``tables``."""
        identifiers: List[str] = []
        for table in tables:
            identifiers.extend(self.segment_ids(table))
        return identifiers

    def resolve_segment_id(self, segment_id: str) -> Segment:
        """Map an object identifier back to the segment it names."""
        table, _, index_text = segment_id.rpartition(".")
        if not table or not index_text.isdigit():
            raise CatalogError(f"malformed segment id: {segment_id!r}")
        return self.segment(table, int(index_text))

    def table_of_segment(self, segment_id: str) -> str:
        """Table name encoded in an object identifier."""
        table, _, index_text = segment_id.rpartition(".")
        if not table or not index_text.isdigit():
            raise CatalogError(f"malformed segment id: {segment_id!r}")
        if table not in self._relations:
            raise CatalogError(f"unknown relation in segment id: {segment_id!r}")
        return table

    def find_column(self, column: str, tables: Optional[Iterable[str]] = None) -> str:
        """Return the (unique) table among ``tables`` that defines ``column``."""
        candidates = []
        search_space = list(tables) if tables is not None else self.table_names()
        for table in search_space:
            if self.schema(table).has_column(column):
                candidates.append(table)
        if not candidates:
            raise CatalogError(f"no table defines column {column!r}")
        if len(candidates) > 1:
            raise CatalogError(f"column {column!r} is ambiguous across tables {candidates}")
        return candidates[0]

    def total_segments(self, tables: Optional[Iterable[str]] = None) -> int:
        """Total number of segments across ``tables`` (default: all tables)."""
        names = list(tables) if tables is not None else self.table_names()
        return sum(self.num_segments(name) for name in names)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name in self._relations

    def __len__(self) -> int:
        return len(self._relations)
