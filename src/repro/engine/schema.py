"""Table schemas."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.engine.types import DataType
from repro.exceptions import SchemaError


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    dtype: DataType

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name: {self.name!r}")


class TableSchema:
    """Schema of a relation: an ordered list of uniquely-named columns."""

    def __init__(self, name: str, columns: Iterable[Column]) -> None:
        if not name or not name.isidentifier():
            raise SchemaError(f"invalid table name: {name!r}")
        columns = list(columns)
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        seen: Dict[str, Column] = {}
        for column in columns:
            if column.name in seen:
                raise SchemaError(f"duplicate column {column.name!r} in table {name!r}")
            seen[column.name] = column
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._by_name = seen

    @property
    def column_names(self) -> List[str]:
        """Column names in declaration order."""
        return [column.name for column in self.columns]

    def has_column(self, name: str) -> bool:
        """Whether the schema defines a column called ``name``."""
        return name in self._by_name

    def column(self, name: str) -> Column:
        """Return the column called ``name`` or raise :class:`SchemaError`."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"table {self.name!r} has no column {name!r}") from None

    def validate_row(self, row: Mapping[str, object]) -> None:
        """Check that ``row`` provides a valid value for every column."""
        for column in self.columns:
            if column.name not in row:
                raise SchemaError(f"row for {self.name!r} is missing column {column.name!r}")
            column.dtype.validate(row[column.name])
        extra = set(row) - set(self._by_name)
        if extra:
            raise SchemaError(f"row for {self.name!r} has unknown columns: {sorted(extra)}")

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name in self._by_name

    def __len__(self) -> int:
        return len(self.columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TableSchema):
            return NotImplemented
        return self.name == other.name and self.columns == other.columns

    def __hash__(self) -> int:
        return hash((self.name, self.columns))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{c.name}:{c.dtype.value}" for c in self.columns)
        return f"TableSchema({self.name!r}, [{cols}])"
