"""Segmented relations.

The paper stores each relation as a set of 1 GB *segments*, each of which is
one object in the cold storage device.  Here a :class:`Segment` is a columnar
slice of a relation — per-column value arrays with row dictionaries
materialised lazily at result boundaries — and a :class:`Relation` is an
ordered list of segments plus a schema.

The columnar layout is behaviour-transparent: ``segment.rows`` still yields
the same row dicts (same values, same key order) the old row-major storage
held, but predicates with a bulk :meth:`~repro.engine.predicate.Predicate.
selection` path can filter a segment over its column arrays and only
materialise the matching rows.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.engine.predicate import Predicate
from repro.engine.schema import TableSchema
from repro.exceptions import SchemaError


class Segment:
    """A horizontal slice of a relation stored as one CSD object.

    Rows with a uniform column layout (every row has the same keys in the
    same order — all generated catalogs do) are shredded into per-column
    arrays at construction; ``rows`` materialises (and caches) the row-dict
    view on first access.  Heterogeneous rows fall back to row-major storage
    so arbitrary hand-built segments keep working unchanged.
    """

    __slots__ = (
        "table_name",
        "index",
        "segment_id",
        "_columns",
        "_column_names",
        "_num_rows",
        "_rows",
    )

    def __init__(self, table_name: str, index: int, rows: Sequence[Dict[str, object]]) -> None:
        if index < 0:
            raise SchemaError(f"segment index must be >= 0, got {index}")
        self.table_name = table_name
        self.index = index
        #: Stable identifier, e.g. ``lineitem.3``.  Precomputed: it is read
        #: on every request/arrival, millions of times per large run.
        self.segment_id = f"{table_name}.{index}"
        materialised = rows if isinstance(rows, list) else list(rows)
        self._num_rows = len(materialised)
        self._rows: Optional[List[Dict[str, object]]] = None
        self._columns: Optional[Dict[str, List[object]]] = None
        self._column_names: Tuple[str, ...] = ()
        if materialised:
            names = tuple(materialised[0])
            if all(tuple(row) == names for row in materialised):
                self._columns = {
                    name: [row[name] for row in materialised] for name in names
                }
                self._column_names = names
            else:
                self._rows = list(materialised)
        else:
            self._columns = {}

    @property
    def num_rows(self) -> int:
        """Number of rows stored in the segment."""
        return self._num_rows

    @property
    def columns(self) -> Optional[Dict[str, List[object]]]:
        """Column-name → value-array view, or ``None`` for row-major fallback."""
        return self._columns

    @property
    def column_names(self) -> Tuple[str, ...]:
        """Column names in row key order (empty for row-major fallback)."""
        return self._column_names

    @property
    def rows(self) -> List[Dict[str, object]]:
        """Row-dict view of the segment (materialised once, then cached)."""
        rows = self._rows
        if rows is None:
            columns = self._columns
            names = self._column_names
            if columns and names:
                rows = [
                    dict(zip(names, values))
                    for values in zip(*(columns[name] for name in names))
                ]
            else:
                rows = [{} for _ in range(self._num_rows)]
            self._rows = rows
        return rows

    def filtered_rows(self, predicate: Predicate) -> Optional[List[Dict[str, object]]]:
        """Rows passing ``predicate``, evaluated over the column arrays.

        Returns ``None`` when the bulk path does not apply (row-major
        fallback storage, or a predicate shape without a ``selection``
        implementation) — the caller then falls back to per-row
        ``predicate.evaluate``, which this path matches exactly, including
        missing-column errors and None-compares-false semantics.  Only the
        matching rows are ever materialised into dicts.
        """
        if self._num_rows == 0:
            return []
        columns = self._columns
        if columns is None:
            return None
        selection = predicate.selection(columns, self._num_rows)
        if selection is None:
            return None
        return self.rows_at(selection)

    def rows_at(self, indices: Sequence[int]) -> List[Dict[str, object]]:
        """Materialise only the rows at ``indices`` (ascending positions)."""
        rows = self._rows
        if rows is not None:
            return [rows[i] for i in indices]
        names = self._column_names
        columns = self._columns
        if not names or not columns:
            return [{} for _ in indices]
        cols = [columns[name] for name in names]
        return [dict(zip(names, [col[i] for col in cols])) for i in indices]

    def __iter__(self) -> Iterator[Dict[str, object]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return self._num_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Segment {self.segment_id} rows={self.num_rows}>"


class Relation:
    """A schema plus an ordered list of segments."""

    def __init__(self, schema: TableSchema, segments: Iterable[Segment]) -> None:
        self.schema = schema
        self.segments: List[Segment] = list(segments)
        for position, segment in enumerate(self.segments):
            if segment.table_name != schema.name:
                raise SchemaError(
                    f"segment {segment.segment_id} does not belong to table {schema.name!r}"
                )
            if segment.index != position:
                raise SchemaError(
                    f"segment indices of {schema.name!r} must be consecutive from 0; "
                    f"found {segment.index} at position {position}"
                )

    @classmethod
    def from_rows(
        cls,
        schema: TableSchema,
        rows: Sequence[Dict[str, object]],
        rows_per_segment: int,
        validate: bool = False,
    ) -> Relation:
        """Split ``rows`` into segments of at most ``rows_per_segment`` rows.

        A relation always has at least one (possibly empty) segment so that
        every table is represented by at least one CSD object.
        """
        if rows_per_segment <= 0:
            raise SchemaError("rows_per_segment must be positive")
        if validate:
            for row in rows:
                schema.validate_row(row)
        segments: List[Segment] = []
        for start in range(0, len(rows), rows_per_segment):
            segments.append(Segment(schema.name, len(segments), rows[start : start + rows_per_segment]))
        if not segments:
            segments.append(Segment(schema.name, 0, []))
        return cls(schema, segments)

    @property
    def name(self) -> str:
        """The relation's (table) name."""
        return self.schema.name

    @property
    def num_segments(self) -> int:
        """Number of segments (CSD objects) making up the relation."""
        return len(self.segments)

    @property
    def num_rows(self) -> int:
        """Total number of rows across all segments."""
        return sum(segment.num_rows for segment in self.segments)

    def segment(self, index: int) -> Segment:
        """Return segment ``index`` or raise :class:`SchemaError`."""
        if not 0 <= index < len(self.segments):
            raise SchemaError(f"table {self.name!r} has no segment {index}")
        return self.segments[index]

    def all_rows(self) -> List[Dict[str, object]]:
        """Materialise all rows of the relation (segment order)."""
        rows: List[Dict[str, object]] = []
        for segment in self.segments:
            rows.extend(segment.rows)
        return rows

    def __iter__(self) -> Iterator[Segment]:
        return iter(self.segments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Relation {self.name} segments={self.num_segments} rows={self.num_rows}>"
