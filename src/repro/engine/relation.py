"""Segmented relations.

The paper stores each relation as a set of 1 GB *segments*, each of which is
one object in the cold storage device.  Here a :class:`Segment` is a list of
rows and a :class:`Relation` is an ordered list of segments plus a schema.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence

from repro.engine.schema import TableSchema
from repro.exceptions import SchemaError


class Segment:
    """A horizontal slice of a relation stored as one CSD object."""

    def __init__(self, table_name: str, index: int, rows: Sequence[Dict[str, object]]) -> None:
        if index < 0:
            raise SchemaError(f"segment index must be >= 0, got {index}")
        self.table_name = table_name
        self.index = index
        self.rows: List[Dict[str, object]] = list(rows)

    @property
    def segment_id(self) -> str:
        """Stable identifier, e.g. ``lineitem.3``."""
        return f"{self.table_name}.{self.index}"

    @property
    def num_rows(self) -> int:
        """Number of rows stored in the segment."""
        return len(self.rows)

    def __iter__(self) -> Iterator[Dict[str, object]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Segment {self.segment_id} rows={self.num_rows}>"


class Relation:
    """A schema plus an ordered list of segments."""

    def __init__(self, schema: TableSchema, segments: Iterable[Segment]) -> None:
        self.schema = schema
        self.segments: List[Segment] = list(segments)
        for position, segment in enumerate(self.segments):
            if segment.table_name != schema.name:
                raise SchemaError(
                    f"segment {segment.segment_id} does not belong to table {schema.name!r}"
                )
            if segment.index != position:
                raise SchemaError(
                    f"segment indices of {schema.name!r} must be consecutive from 0; "
                    f"found {segment.index} at position {position}"
                )

    @classmethod
    def from_rows(
        cls,
        schema: TableSchema,
        rows: Sequence[Dict[str, object]],
        rows_per_segment: int,
        validate: bool = False,
    ) -> Relation:
        """Split ``rows`` into segments of at most ``rows_per_segment`` rows.

        A relation always has at least one (possibly empty) segment so that
        every table is represented by at least one CSD object.
        """
        if rows_per_segment <= 0:
            raise SchemaError("rows_per_segment must be positive")
        if validate:
            for row in rows:
                schema.validate_row(row)
        segments: List[Segment] = []
        for start in range(0, len(rows), rows_per_segment):
            segments.append(Segment(schema.name, len(segments), rows[start : start + rows_per_segment]))
        if not segments:
            segments.append(Segment(schema.name, 0, []))
        return cls(schema, segments)

    @property
    def name(self) -> str:
        """The relation's (table) name."""
        return self.schema.name

    @property
    def num_segments(self) -> int:
        """Number of segments (CSD objects) making up the relation."""
        return len(self.segments)

    @property
    def num_rows(self) -> int:
        """Total number of rows across all segments."""
        return sum(segment.num_rows for segment in self.segments)

    def segment(self, index: int) -> Segment:
        """Return segment ``index`` or raise :class:`SchemaError`."""
        if not 0 <= index < len(self.segments):
            raise SchemaError(f"table {self.name!r} has no segment {index}")
        return self.segments[index]

    def all_rows(self) -> List[Dict[str, object]]:
        """Materialise all rows of the relation (segment order)."""
        rows: List[Dict[str, object]] = []
        for segment in self.segments:
            rows.extend(segment.rows)
        return rows

    def __iter__(self) -> Iterator[Segment]:
        return iter(self.segments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Relation {self.name} segments={self.num_segments} rows={self.num_rows}>"
