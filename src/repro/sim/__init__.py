"""Minimal discrete-event simulation kernel.

The multi-client experiments in the paper measure how database clients and a
shared Cold Storage Device interleave over time.  Rather than sleeping for
real seconds (the paper's middleware adds wall-clock delays), every component
in this reproduction advances a *simulated* clock managed by this package.

The kernel is intentionally small and SimPy-like:

* :class:`~repro.sim.environment.Environment` owns the event queue and clock.
* Processes are plain Python generators that ``yield`` waitable objects.
* :class:`~repro.sim.events.Event` is a one-shot event that processes can
  wait on and that callers can *succeed* with a value.
* :class:`~repro.sim.events.Timeout` suspends a process for a fixed amount of
  simulated time.
* :class:`~repro.sim.store.Store` is an unbounded FIFO channel used for
  request/response queues between clients and the CSD.

Determinism: events scheduled for the same timestamp fire in the order they
were scheduled, so repeated runs of an experiment produce identical traces.
"""

from repro.sim.events import Event, Timeout
from repro.sim.process import Process
from repro.sim.store import Store
from repro.sim.environment import Environment

__all__ = ["Environment", "Event", "Timeout", "Process", "Store"]
