"""The simulation environment: clock plus event queue."""

from __future__ import annotations

import heapq
from typing import Any, List, Optional, Tuple

from repro.exceptions import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process, ProcessGenerator


class Environment:
    """Owns the simulated clock and the pending-event queue.

    Typical use::

        env = Environment()

        def worker(env):
            yield env.timeout(5.0)
            return "done"

        proc = env.process(worker(env))
        env.run()
        assert env.now == 5.0 and proc.value == "done"
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, Event]] = []
        self._sequence = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # ------------------------------------------------------------------ #
    # Factory helpers
    # ------------------------------------------------------------------ #
    def event(self, name: str = "") -> Event:
        """Create an untriggered one-shot event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value=value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Register a generator as a simulation process."""
        return Process(self, generator, name=name)

    def all_of(self, events: List[Event]) -> AllOf:
        """Event that fires when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: List[Event]) -> AnyOf:
        """Event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------ #
    # Scheduling / running
    # ------------------------------------------------------------------ #
    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue ``event`` for dispatch ``delay`` units in the future."""
        if delay < 0:
            raise SimulationError("cannot schedule an event in the past")
        self._sequence += 1
        heapq.heappush(self._queue, (self._now + delay, self._sequence, event))

    def step(self) -> None:
        """Dispatch the next scheduled event, advancing the clock."""
        if not self._queue:
            raise SimulationError("no scheduled events to step through")
        time, _seq, event = heapq.heappop(self._queue)
        if time < self._now:  # pragma: no cover - defensive, cannot happen
            raise SimulationError("event queue went backwards in time")
        self._now = time
        event._dispatch()

    def peek(self) -> Optional[float]:
        """Timestamp of the next scheduled event, or ``None`` if idle."""
        if not self._queue:
            return None
        return self._queue[0][0]

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until no events remain,
        * a number — run until the clock reaches that time,
        * an :class:`Event` — run until that event fires and return its value.
        """
        if isinstance(until, Event):
            target_event = until
            while not target_event.triggered:
                if not self._queue:
                    raise SimulationError(
                        f"simulation ran out of events before {target_event.name!r} fired"
                    )
                self.step()
            if target_event.exception is not None:
                raise target_event.exception
            return target_event.value

        if until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError("cannot run until a time in the past")
            while self._queue and self._queue[0][0] <= deadline:
                self.step()
            self._now = deadline
            return None

        while self._queue:
            self.step()
        return None
