"""The simulation environment: clock plus event queue.

The queue is *batched by timestamp*: instead of one heap entry per event,
the heap holds each distinct pending timestamp once and a side table maps
the timestamp to the list of events scheduled at it (in scheduling order).
Dispatch order is exactly the classic ``(time, sequence)`` order — the
batch list *is* the sequence order within a timestamp — but same-time
bursts (the common case in a discrete-event storage simulation: a device
completing a transfer wakes the waiter, the scheduler, and the metrics
hooks at one instant) cost one heap operation instead of one per event.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional

from repro.exceptions import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process, ProcessGenerator


class Environment:
    """Owns the simulated clock and the pending-event queue.

    Typical use::

        env = Environment()

        def worker(env):
            yield env.timeout(5.0)
            return "done"

        proc = env.process(worker(env))
        env.run()
        assert env.now == 5.0 and proc.value == "done"
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        # Heap of distinct pending timestamps; one entry per bucket.
        self._times: List[float] = []
        # Timestamp -> events scheduled at it, in scheduling order.
        self._buckets: Dict[float, List[Event]] = {}
        # Bucket currently being dispatched.  Once a bucket is activated it
        # is removed from ``_buckets``, so events scheduled *during* its
        # dispatch (at the same timestamp) open a fresh bucket that is
        # dispatched right after it — preserving global scheduling order.
        self._batch: Optional[List[Event]] = None
        self._batch_index = 0
        #: Number of events delivered (dispatched) so far.
        self.dispatched = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # ------------------------------------------------------------------ #
    # Factory helpers
    # ------------------------------------------------------------------ #
    def event(self, name: str = "") -> Event:
        """Create an untriggered one-shot event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value=value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Register a generator as a simulation process."""
        return Process(self, generator, name=name)

    def all_of(self, events: List[Event]) -> AllOf:
        """Event that fires when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: List[Event]) -> AnyOf:
        """Event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------ #
    # Scheduling / running
    # ------------------------------------------------------------------ #
    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue ``event`` for dispatch ``delay`` units in the future."""
        if delay < 0:
            raise SimulationError("cannot schedule an event in the past")
        time = self._now + delay
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [event]
            heapq.heappush(self._times, time)
        else:
            bucket.append(event)

    def step(self) -> None:
        """Dispatch the next scheduled event, advancing the clock."""
        batch = self._batch
        if batch is not None and self._batch_index < len(batch):
            event = batch[self._batch_index]
            self._batch_index += 1
            self.dispatched += 1
            event._dispatch()
            return
        if not self._times:
            self._batch = None
            raise SimulationError("no scheduled events to step through")
        time = heapq.heappop(self._times)
        if time < self._now:  # pragma: no cover - defensive, cannot happen
            raise SimulationError("event queue went backwards in time")
        self._now = time
        batch = self._buckets.pop(time)
        self._batch = batch
        self._batch_index = 1
        self.dispatched += 1
        batch[0]._dispatch()

    def peek(self) -> Optional[float]:
        """Timestamp of the next scheduled event, or ``None`` if idle."""
        batch = self._batch
        if batch is not None and self._batch_index < len(batch):
            return self._now
        if not self._times:
            return None
        return self._times[0]

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until no events remain,
        * a number — run until the clock reaches that time,
        * an :class:`Event` — run until that event is *dispatched* and
          return its value (or raise the exception it failed with).

        Waiting for dispatch rather than for ``triggered`` matters: a
        :class:`Timeout` is triggered the moment it is created (its value
        is already known) but only dispatches when the clock reaches it, so
        ``env.run(until=env.timeout(5))`` must advance the clock to 5.0,
        not return immediately at the current time.
        """
        if isinstance(until, Event):
            # The dispatch loop below is ``step()`` inlined: this is the
            # innermost loop of every simulation run and the per-event
            # ``peek()``/``step()`` call pair is measurable at million-event
            # scale.  Semantics are identical, including the dispatch order
            # and the ``dispatched`` count.
            target_event = until
            times = self._times
            buckets = self._buckets
            while not target_event._dispatched:
                batch = self._batch
                if batch is not None and self._batch_index < len(batch):
                    event = batch[self._batch_index]
                    self._batch_index += 1
                    self.dispatched += 1
                    event._dispatch()
                    continue
                if not times:
                    self._batch = None
                    raise SimulationError(
                        f"simulation ran out of events before {target_event.name!r} fired"
                    )
                time = heapq.heappop(times)
                self._now = time
                batch = buckets.pop(time)
                self._batch = batch
                self._batch_index = 1
                self.dispatched += 1
                batch[0]._dispatch()
            if target_event.exception is not None:
                raise target_event.exception
            return target_event.value

        if until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError("cannot run until a time in the past")
            while True:
                next_time = self.peek()
                if next_time is None or next_time > deadline:
                    break
                self.step()
            self._now = deadline
            return None

        # Same inlined dispatch loop as the until-event case above.
        times = self._times
        buckets = self._buckets
        while True:
            batch = self._batch
            if batch is not None and self._batch_index < len(batch):
                event = batch[self._batch_index]
                self._batch_index += 1
                self.dispatched += 1
                event._dispatch()
                continue
            if not times:
                self._batch = None
                return None
            time = heapq.heappop(times)
            self._now = time
            batch = buckets.pop(time)
            self._batch = batch
            self._batch_index = 1
            self.dispatched += 1
            batch[0]._dispatch()
