"""Generator-based simulation processes."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.exceptions import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.environment import Environment

ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """Wraps a generator so it can be driven by the event loop.

    A process is itself an :class:`Event`: it fires (with the generator's
    return value) when the generator finishes, so processes can wait for
    other processes simply by yielding them.
    """

    __slots__ = ("_generator", "_waiting_on", "_resume_callback")

    def __init__(self, env: Environment, generator: ProcessGenerator, name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                "Process requires a generator; did you forget to call the process function?"
            )
        super().__init__(env, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Event | None = None
        # The bound method is created once: it is registered as a callback
        # on every event the generator yields, once per dispatched event.
        self._resume_callback = self._resume
        # Kick the process off at the current simulated time.
        bootstrap = Event(env, name="bootstrap")
        bootstrap._callbacks.append(self._resume_callback)
        bootstrap.succeed(None)

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not finished yet."""
        return not self.triggered

    def _resume(self, event: Event) -> None:
        """Advance the generator with the value (or exception) of ``event``."""
        self._waiting_on = None
        try:
            if event.exception is not None:
                target = self._generator.throw(event.exception)
            else:
                target = self._generator.send(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # repro: noqa[RPR103] reason=a crashing process must fail its event so waiters see the error instead of hanging the run
            self.fail(exc)
            return

        if not isinstance(target, Event):
            self._generator.close()
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; processes may only yield Event objects"
                )
            )
            return
        # Equivalent to ``target.add_callback`` with the call overhead
        # shaved off — this runs once per dispatched event.
        self._waiting_on = target
        target._callbacks.append(self._resume_callback)
        if target._dispatched:
            self.env._schedule_event(target)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.triggered else "running"
        return f"<Process {self.name!r} {state}>"
