"""Waitable primitives used by simulation processes."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional

from repro.exceptions import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.environment import Environment


class Event:
    """A one-shot event that carries a value once it has been triggered.

    Processes wait on an event by ``yield``-ing it.  Any other process (or
    plain callback code) triggers it exactly once with :meth:`succeed` or
    :meth:`fail`.  Waiting processes are resumed at the simulated time the
    event was triggered.
    """

    __slots__ = (
        "env",
        "name",
        "_triggered",
        "_dispatched",
        "_value",
        "_exception",
        "_callbacks",
    )

    def __init__(self, env: Environment, name: str = "") -> None:
        self.env = env
        self.name = name
        self._triggered = False
        self._dispatched = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable[[Event], None]] = []

    @property
    def triggered(self) -> bool:
        """Whether the event has already been succeeded or failed."""
        return self._triggered

    @property
    def value(self) -> Any:
        """Value the event was succeeded with (``None`` until triggered)."""
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """Exception the event was failed with, if any."""
        return self._exception

    def succeed(self, value: Any = None) -> Event:
        """Trigger the event with ``value`` and schedule waiter wake-ups."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} has already been triggered")
        self._triggered = True
        self._value = value
        self.env._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> Event:
        """Trigger the event with an exception to be raised in waiters."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} has already been triggered")
        self._triggered = True
        self._exception = exception
        self.env._schedule_event(self)
        return self

    def add_callback(self, callback: Callable[[Event], None]) -> None:
        """Register ``callback`` to run when the event fires.

        If the event already fired, the callback runs when the scheduler
        dispatches the event (events are delivered via the event queue, never
        synchronously, to keep ordering deterministic).  If the event has
        already been dispatched the callback is re-scheduled so late waiters
        are still woken.
        """
        self._callbacks.append(callback)
        if self._dispatched:
            self.env._schedule_event(self)

    def _dispatch(self) -> None:
        self._dispatched = True
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<Event {self.name!r} {state} at t={self.env.now:.3f}>"


class Timeout(Event):
    """An event that fires automatically ``delay`` time units in the future."""

    __slots__ = ("delay",)

    def __init__(self, env: Environment, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"timeout delay must be >= 0, got {delay}")
        # Fields are assigned directly rather than via ``Event.__init__``:
        # timeouts are created millions of times per run and both the
        # ``super()`` call and a per-instance f-string name are measurable.
        self.env = env
        self.name = "timeout"
        self._triggered = True
        self._dispatched = False
        self._value = value
        self._exception = None
        self._callbacks = []
        self.delay = delay
        env._schedule_event(self, delay=delay)


class AllOf(Event):
    """Composite event that fires when every child event has fired.

    Children are always awaited through their callbacks, never peeked at via
    ``triggered``: a :class:`Timeout` is *triggered* the moment it is created
    (its value is known) but only *dispatches* when the clock reaches it, and
    composites must fire on dispatch.  ``add_callback`` re-schedules already
    dispatched children, so completion still arrives through the event queue
    in deterministic order.
    """

    __slots__ = ("_pending", "_results")

    def __init__(self, env: Environment, events: List[Event]) -> None:
        super().__init__(env, name=f"all_of({len(events)})")
        self._pending = len(events)
        self._results: List[Any] = [None] * len(events)
        if not events:
            self.succeed([])
            return
        for index, event in enumerate(events):
            event.add_callback(self._make_child_callback(index))

    def _make_child_callback(self, index: int) -> Callable[[Event], None]:
        def _on_child(event: Event) -> None:
            if self.triggered:
                return
            if event.exception is not None:
                self.fail(event.exception)
                return
            self._results[index] = event.value
            self._pending -= 1
            if self._pending == 0:
                self.succeed(list(self._results))

        return _on_child


class AnyOf(Event):
    """Composite event that fires as soon as one child event has fired.

    As with :class:`AllOf`, children are awaited through their callbacks so
    that a not-yet-dispatched :class:`Timeout` child (triggered at creation,
    delivered at its scheduled time) does not make the composite fire
    immediately.
    """

    __slots__ = ()

    def __init__(self, env: Environment, events: List[Event]) -> None:
        super().__init__(env, name=f"any_of({len(events)})")
        if not events:
            raise SimulationError("AnyOf requires at least one event")
        for event in events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event.exception is not None:
            self.fail(event.exception)
        else:
            self.succeed(event.value)
