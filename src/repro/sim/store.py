"""FIFO message store used as a request/response channel between processes."""

from __future__ import annotations

import contextlib
from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Tuple

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.environment import Environment


class Store:
    """Unbounded FIFO of items with event-based ``get``.

    ``put`` never blocks (capacity is unbounded, matching an HTTP request
    queue).  ``get`` returns an :class:`Event` that fires with the next item;
    if an item is already available the event fires immediately (still via
    the event queue, preserving deterministic ordering).
    """

    def __init__(self, env: Environment, name: str = "store") -> None:
        self.env = env
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> Tuple[Any, ...]:
        """Snapshot of queued items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> None:
        """Enqueue ``item``, waking the oldest waiting getter if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next available item."""
        # The store's own name is reused verbatim: a per-get f-string is
        # measurable at million-request scale and the name is cosmetic.
        event = Event(self.env, name=self.name)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Any:
        """Pop and return the next item immediately, or ``None`` if empty."""
        if self._items:
            return self._items.popleft()
        return None

    def cancel(self, event: Event) -> None:
        """Withdraw a pending ``get`` event.

        A getter abandoned while still waiting would silently swallow the
        next ``put`` (the item hands off to an event nobody consumes), so a
        consumer racing a ``get`` against another wake-up source must cancel
        the loser.  Cancelling an event that already fired (or was never a
        getter of this store) is a no-op — the caller owns its value.
        """
        with contextlib.suppress(ValueError):
            self._getters.remove(event)
