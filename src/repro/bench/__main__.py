"""CLI for the macro-benchmark harness.

Run the pinned macro scenarios and write ``BENCH_6.json``::

    python -m repro.bench                 # full suite (minutes)
    python -m repro.bench --smoke         # CI-sized (seconds)
    python -m repro.bench --baseline old.json   # embed speedup ratios

``--baseline`` takes a document previously written by this harness
(typically produced from a pre-change checkout) and embeds its numbers and
per-scenario events/sec speedup ratios in the output.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench import (
    DEFAULT_OUTPUT_NAME,
    attach_baseline,
    repo_root,
    run_benchmarks,
    write_document,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the pinned macro benchmarks and write BENCH_6.json.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run CI-sized variants of every macro scenario (seconds, not minutes)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=f"output path (default: {DEFAULT_OUTPUT_NAME} at the repository root)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="a prior BENCH document to embed as the comparison baseline",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="run every macro scenario with tracing on (entries report "
        "their span counts; measures tracing overhead at scale)",
    )
    return parser


def main(argv=None) -> int:
    arguments = build_parser().parse_args(argv)
    document = run_benchmarks(smoke=arguments.smoke, trace=arguments.trace)
    if arguments.baseline is not None:
        baseline = json.loads(arguments.baseline.read_text())
        attach_baseline(document, baseline)
    path = write_document(document, arguments.output)
    totals = document["totals"]
    print(f"wrote {path}")
    print(
        f"mode={document['mode']} run={totals['run_seconds']:.2f}s "
        f"events={totals['events_dispatched']} "
        f"events/sec={totals['events_per_second']:.0f} "
        f"peak_rss={document['peak_rss_kb']}KB"
    )
    for name, entry in document["scenarios"].items():
        print(
            f"  {name}: run={entry['run_seconds']:.2f}s "
            f"events/sec={entry['events_per_second']:.0f} "
            f"simulated={entry['simulated_time']:.1f}s"
        )
    speedups = document.get("baseline", {}).get("speedup_events_per_second", {})
    for name, ratio in speedups.items():
        print(f"  speedup {name}: {ratio:.2f}x events/sec vs baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
