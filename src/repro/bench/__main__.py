"""CLI for the macro-benchmark harness.

Run the pinned macro scenarios and write ``BENCH_10.json``::

    python -m repro.bench                 # full suite (minutes)
    python -m repro.bench --smoke         # CI-sized (seconds)
    python -m repro.bench --baseline old.json   # embed speedup ratios
    python -m repro.bench --profile prof/       # per-scenario .pstats dumps
    python -m repro.bench --smoke --check       # diff vs committed document

``--baseline`` takes a document previously written by this harness
(typically produced from a pre-change checkout) and embeds its numbers and
per-scenario speedup ratios in the output.  ``--profile DIR`` runs every
scenario under cProfile and dumps ``DIR/<scenario>.pstats`` files (wall
times are then inflated by the profiler).  ``--check [PATH]`` diffs the
run's deterministic outcomes (``events_dispatched``, ``simulated_time``)
against a committed document (default: the repo-root ``BENCH_10.json``) and
exits non-zero on any drift — wall times are never compared.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench import (
    DEFAULT_OUTPUT_NAME,
    attach_baseline,
    check_determinism,
    repo_root,
    run_benchmarks,
    write_document,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the pinned macro benchmarks and write BENCH_10.json.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run CI-sized variants of every macro scenario (seconds, not minutes)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=f"output path (default: {DEFAULT_OUTPUT_NAME} at the repository root)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="a prior BENCH document to embed as the comparison baseline",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="run every macro scenario with tracing on (entries report "
        "their span counts; measures tracing overhead at scale)",
    )
    parser.add_argument(
        "--profile",
        type=Path,
        default=None,
        metavar="DIR",
        help="run each scenario under cProfile and dump DIR/<scenario>.pstats "
        "(wall times are then inflated by the profiler)",
    )
    parser.add_argument(
        "--check",
        nargs="?",
        type=Path,
        const=True,
        default=None,
        metavar="PATH",
        help="diff events_dispatched/simulated_time per scenario against a "
        "committed BENCH document (default: the repo-root "
        f"{DEFAULT_OUTPUT_NAME}) and exit non-zero on drift",
    )
    return parser


def main(argv=None) -> int:
    arguments = build_parser().parse_args(argv)
    document = run_benchmarks(
        smoke=arguments.smoke,
        trace=arguments.trace,
        profile_dir=arguments.profile,
    )
    if arguments.baseline is not None:
        baseline = json.loads(arguments.baseline.read_text())
        attach_baseline(document, baseline)
    path = write_document(document, arguments.output)
    totals = document["totals"]
    print(f"wrote {path}")
    print(
        f"mode={document['mode']} run={totals['run_seconds']:.2f}s "
        f"events={totals['events_dispatched']} "
        f"events/sec={totals['events_per_second']:.0f} "
        f"peak_rss={document['peak_rss_kb']}KB"
    )
    for name, entry in document["scenarios"].items():
        print(
            f"  {name}: run={entry['run_seconds']:.2f}s "
            f"events/sec={entry['events_per_second']:.0f} "
            f"simulated={entry['simulated_time']:.1f}s"
        )
    speedups = document.get("baseline", {}).get("speedup_events_per_second", {})
    for name, ratio in speedups.items():
        print(f"  speedup {name}: {ratio:.2f}x events/sec vs baseline")
    build_run = document.get("baseline", {}).get("speedup_build_run_seconds", {})
    for name, ratio in build_run.items():
        print(f"  speedup {name}: {ratio:.2f}x build+run wall time vs baseline")
    if arguments.check is not None:
        committed_path = (
            repo_root() / DEFAULT_OUTPUT_NAME
            if arguments.check is True
            else arguments.check
        )
        committed = json.loads(Path(committed_path).read_text())
        problems = check_determinism(document, committed)
        if problems:
            for problem in problems:
                print(f"DRIFT {problem}", file=sys.stderr)
            print(
                f"determinism check failed against {committed_path}: "
                f"{len(problems)} divergence(s)",
                file=sys.stderr,
            )
            return 1
        print(f"determinism check ok against {committed_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
