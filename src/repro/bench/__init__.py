"""Macro-benchmark harness for the simulator core.

The scenario registry's golden runs are deliberately small — they exist to
pin *behaviour*, byte for byte, not to stress the event loop.  This package
holds the complement: a pinned set of **macro** scenarios (scaled-up
variants of the golden workload shapes) that run long enough for wall time
to mean something, plus the measurement loop that times them and writes a
machine-readable summary to ``BENCH_6.json`` at the repository root.

Three macro shapes, mirroring where profiles show the simulator spends its
time:

* ``macro-sf-heavy`` — a scale-factor-heavy single-device run (four tenants
  of TPC-H Q5 at SF-100): dominated by the query engine (joins, predicate
  evaluation, subplan execution).
* ``macro-fleet-churn`` — a sixteen-device R=2 fleet under membership churn
  (two joins, a graceful leave and a fail-stop loss while twelve tenants
  hammer Q12 at SF-50): dominated by the event loop, placement diffs and
  the report-phase waiting attribution.
* ``macro-throttled-rebalance`` — a join under bursty load with migration
  I/O throttled by a per-device token bucket: exercises the rebalance path
  where foreground and background I/O interleave.

Each measurement separates the build / run / report phases, counts events
actually *dispatched* by the simulation core, and derives events/second
from the run phase alone.  ``--smoke`` shrinks every scenario to seconds
for CI; the full suite is for before/after comparisons when touching the
hot paths.  Numbers in a committed ``BENCH_6.json`` are machine-dependent:
compare ratios measured on one machine, never absolute times across two.
"""

from __future__ import annotations

import json
import platform
import resource
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from repro.fleet.spec import (
    DeviceFailure,
    DeviceJoin,
    DeviceLeave,
    FleetSpec,
    MigrationThrottle,
)
from repro.scenarios.arrivals import BurstyArrival
from repro.scenarios.runner import ScenarioRunner
from repro.scenarios.spec import ScenarioSpec, uniform_tenants

BENCH_SCHEMA_VERSION = 1

#: Committed output file, numbered by the PR that introduced the harness.
DEFAULT_OUTPUT_NAME = "BENCH_6.json"


def repo_root() -> Path:
    """Repository root (three levels above ``src/repro/bench``)."""
    return Path(__file__).resolve().parents[3]


def macro_specs(smoke: bool = False) -> List[ScenarioSpec]:
    """The pinned macro scenarios, full-size or CI-sized (``smoke``)."""
    if smoke:
        return [
            ScenarioSpec(
                name="macro-sf-heavy",
                description="Smoke-sized engine-bound run: two TPC-H Q5 "
                "tenants at the small scale on one device.",
                tenants=uniform_tenants(2, "tpch:q5", cache_capacity=30),
                scale="small",
                seed=42,
            ),
            ScenarioSpec(
                name="macro-fleet-churn",
                description="Smoke-sized churn: four Q12 tenants on a "
                "four-device R=2 fleet with one join and one failure.",
                tenants=uniform_tenants(4, "tpch:q12", cache_capacity=8),
                scale="tiny",
                fleet=FleetSpec(
                    devices=4,
                    replication=2,
                    replica_policy="least-loaded",
                    events=(DeviceJoin(device=4, at_seconds=60.0),),
                    failures=(DeviceFailure(device=0, at_seconds=120.0),),
                ),
                seed=42,
            ),
            ScenarioSpec(
                name="macro-throttled-rebalance",
                description="Smoke-sized throttled join under bursty load.",
                tenants=uniform_tenants(3, "tpch:q12", cache_capacity=8),
                scale="tiny",
                arrival=BurstyArrival(
                    burst_size=2, burst_gap_seconds=60.0, jitter_seconds=4.0
                ),
                fleet=FleetSpec(
                    devices=3,
                    events=(DeviceJoin(device=3, at_seconds=80.0),),
                    throttle=MigrationThrottle(objects_per_second=0.1),
                ),
                seed=42,
            ),
        ]
    return [
        ScenarioSpec(
            name="macro-sf-heavy",
            description="Engine-bound macro: four TPC-H Q5 tenants at SF-100 "
            "on one device, two repetitions each — the query engine "
            "(joins, predicates, subplans) dominates.",
            tenants=uniform_tenants(
                4, "tpch:q5", cache_capacity=30, repetitions=2
            ),
            scale="sf100",
            seed=42,
        ),
        ScenarioSpec(
            name="macro-fleet-churn",
            description="Core-loop macro: twelve Q12 tenants at SF-50 on a "
            "sixteen-device R=2 fleet through two joins, a graceful leave "
            "and a fail-stop loss — the event loop, placement diffs and "
            "report-phase attribution dominate.",
            tenants=uniform_tenants(
                12, "tpch:q12", cache_capacity=8, repetitions=6
            ),
            scale="sf50",
            fleet=FleetSpec(
                devices=16,
                replication=2,
                replica_policy="least-loaded",
                events=(
                    DeviceJoin(device=16, at_seconds=120.0),
                    DeviceJoin(device=17, at_seconds=240.0),
                    DeviceLeave(device=0, at_seconds=360.0),
                ),
                failures=(DeviceFailure(device=1, at_seconds=480.0),),
            ),
            seed=42,
        ),
        ScenarioSpec(
            name="macro-throttled-rebalance",
            description="Rebalance macro: a join lands mid-run on a "
            "six-device R=2 fleet under bursty Q12 load at SF-50, with "
            "migration I/O paced by a per-device token bucket so "
            "foreground and background I/O interleave.",
            tenants=uniform_tenants(
                8, "tpch:q12", cache_capacity=8, repetitions=3
            ),
            scale="sf50",
            arrival=BurstyArrival(
                burst_size=2, burst_gap_seconds=90.0, jitter_seconds=4.0
            ),
            fleet=FleetSpec(
                devices=6,
                replication=2,
                replica_policy="least-loaded",
                events=(DeviceJoin(device=6, at_seconds=150.0),),
                throttle=MigrationThrottle(objects_per_second=0.5),
            ),
            seed=42,
        ),
    ]


def peak_rss_kb() -> int:
    """Peak resident set size of this process so far, in kilobytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalise to KB
    so committed documents agree on the unit.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak //= 1024
    return int(peak)


def _event_count(env: Any) -> int:
    """Events delivered by the core, tolerating the pre-counter core.

    The batched environment counts deliveries in ``dispatched``; the old
    heap core only carried ``_sequence`` (events *scheduled*, all of which
    are delivered by the time a run drains) — close enough for a
    before/after ratio measured by the same harness.
    """
    dispatched = getattr(env, "dispatched", None)
    if dispatched is not None:
        return int(dispatched)
    return int(getattr(env, "_sequence", 0))


def run_one(spec: ScenarioSpec, trace: bool = False) -> Dict[str, Any]:
    """Run one macro scenario and measure its phases.

    Events/second is computed over the run phase only: building catalogs
    and condensing the report are real costs (and reported), but the
    events/sec figure is meant to track the simulation core.  With
    ``trace`` the run also records a full trace (the entry reports the span
    count), which doubles as a measurement of tracing overhead at scale.
    """
    if trace and not spec.trace:
        spec = replace(spec, trace=True)
    runner = ScenarioRunner(check=False)
    build_start = time.perf_counter()
    service = runner.build_service(spec)
    run_start = time.perf_counter()
    result = service.run()
    report_start = time.perf_counter()
    # The report assembly is a measured phase of its own because waiting
    # attribution over the device busy log is a known hot path; the private
    # helper is the exact code path ScenarioRunner.run() takes.
    report = runner._build_report(spec, service, result, [])
    end = time.perf_counter()
    events = _event_count(service.env)
    run_seconds = report_start - run_start
    entry = {
        "description": spec.description,
        "build_seconds": round(run_start - build_start, 4),
        "run_seconds": round(run_seconds, 4),
        "report_seconds": round(end - report_start, 4),
        "wall_seconds": round(end - build_start, 4),
        "events_dispatched": events,
        "events_per_second": round(events / run_seconds, 1) if run_seconds else 0.0,
        "simulated_time": report.total_simulated_time,
        "queries_run": sum(
            client.queries_run for client in report.clients.values()
        ),
        "peak_rss_kb_after": peak_rss_kb(),
    }
    if trace:
        from repro.obs.export import build_trace

        entry["trace_spans"] = len(build_trace(service, scenario=spec.name)["spans"])
    return entry


def run_benchmarks(smoke: bool = False, trace: bool = False) -> Dict[str, Any]:
    """Run the macro suite and assemble the ``BENCH_6.json`` document."""
    scenarios: Dict[str, Dict[str, Any]] = {}
    for spec in macro_specs(smoke):
        scenarios[spec.name] = run_one(spec, trace=trace)
    total_run = sum(entry["run_seconds"] for entry in scenarios.values())
    total_events = sum(entry["events_dispatched"] for entry in scenarios.values())
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "benchmark": "BENCH_6",
        "mode": "smoke" if smoke else "full",
        "traced": bool(trace),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "scenarios": scenarios,
        "totals": {
            "wall_seconds": round(
                sum(entry["wall_seconds"] for entry in scenarios.values()), 4
            ),
            "run_seconds": round(total_run, 4),
            "events_dispatched": total_events,
            "events_per_second": round(total_events / total_run, 1)
            if total_run
            else 0.0,
        },
        "peak_rss_kb": peak_rss_kb(),
    }


def attach_baseline(
    document: Dict[str, Any], baseline: Mapping[str, Any], label: str = "baseline"
) -> Dict[str, Any]:
    """Embed a prior run's numbers plus per-scenario speedup ratios.

    ``baseline`` is a document produced by the same harness (typically run
    against a pre-change checkout); speedups are events/sec ratios, the
    core-loop metric the harness exists to guard.
    """
    speedups: Dict[str, float] = {}
    base_scenarios = baseline.get("scenarios", {})
    for name, entry in document["scenarios"].items():
        base = base_scenarios.get(name)
        if not base or not base.get("events_per_second"):
            continue
        speedups[name] = round(
            entry["events_per_second"] / base["events_per_second"], 2
        )
    document[label] = {
        "label": str(baseline.get("label", "pre-change")),
        "totals": baseline.get("totals", {}),
        "scenarios": {
            name: {
                key: base[key]
                for key in (
                    "wall_seconds",
                    "run_seconds",
                    "events_dispatched",
                    "events_per_second",
                )
                if key in base
            }
            for name, base in base_scenarios.items()
        },
        "speedup_events_per_second": speedups,
    }
    return document


def write_document(document: Mapping[str, Any], path: Optional[Path] = None) -> Path:
    """Write the benchmark document as stable, diffable JSON."""
    path = path or (repo_root() / DEFAULT_OUTPUT_NAME)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path
