"""Macro-benchmark harness for the simulator core.

The scenario registry's golden runs are deliberately small — they exist to
pin *behaviour*, byte for byte, not to stress the event loop.  This package
holds the complement: a pinned set of **macro** scenarios (scaled-up
variants of the golden workload shapes) that run long enough for wall time
to mean something, plus the measurement loop that times them and writes a
machine-readable summary to ``BENCH_10.json`` at the repository root.

Six macro shapes, mirroring where profiles show the simulator spends its
time:

* ``macro-sf-heavy`` — a scale-factor-heavy single-device run (four tenants
  of TPC-H Q5 at SF-100): dominated by the query engine (joins, predicate
  evaluation, subplan execution).
* ``macro-fleet-churn`` — a sixteen-device R=2 fleet under membership churn
  (two joins, a graceful leave and a fail-stop loss while twelve tenants
  hammer Q12 at SF-50): dominated by the event loop, placement diffs and
  the report-phase waiting attribution.
* ``macro-throttled-rebalance`` — a join under bursty load with migration
  I/O throttled by a per-device token bucket: exercises the rebalance path
  where foreground and background I/O interleave.
* ``macro-million-keys`` — eight single-table Q6 tenants over a 125k-segment
  lineitem put one million objects on a 32-device R=2 fleet with a join
  mid-run, each device running the shipping-firmware slack-FCFS scheduler:
  dominated by bulk placement, the per-device scheduler pools (and the
  per-decision lookups over them) and the request fan-out.
* ``macro-sf-1000`` — one TPC-H Q5 tenant at SF-1000 (~177k subplans, all
  ~952 objects cached): dominated by segment filtering, hash-table builds
  and the n-ary join.
* ``macro-heterogeneous-fleet`` — a mixed fast/slow eight-device R=2 fleet
  at SF-50 with profile-weighted placement, ewma-latency routing and the
  feedback rebalancer ticking: exercises weighted ring builds, per-request
  EWMA updates and reweight-epoch placement diffs.

Each measurement separates the build / run / report phases, counts events
actually *dispatched* by the simulation core, and derives events/second
from the run phase alone.  ``--smoke`` shrinks every scenario to seconds
for CI; the full suite is for before/after comparisons when touching the
hot paths.  Numbers in a committed ``BENCH_10.json`` are machine-dependent:
compare ratios measured on one machine, never absolute times across two.
``events_dispatched`` and ``simulated_time`` however are deterministic, so
the committed document doubles as a drift detector: ``--check`` re-runs the
suite and fails on any behavioural divergence from the committed numbers.
"""

from __future__ import annotations

import cProfile
import json
import platform
import resource
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from repro.fleet.spec import (
    DeviceFailure,
    DeviceJoin,
    DeviceLeave,
    DeviceProfile,
    FleetSpec,
    MigrationThrottle,
    RebalancePolicy,
)
from repro.scenarios.arrivals import BurstyArrival
from repro.scenarios.runner import ScenarioRunner
from repro.scenarios.spec import ScenarioSpec, uniform_tenants

BENCH_SCHEMA_VERSION = 2

#: Committed output file, numbered by the PR that last re-measured it.
DEFAULT_OUTPUT_NAME = "BENCH_10.json"


def repo_root() -> Path:
    """Repository root (three levels above ``src/repro/bench``)."""
    return Path(__file__).resolve().parents[3]


def macro_specs(smoke: bool = False) -> List[ScenarioSpec]:
    """The pinned macro scenarios, full-size or CI-sized (``smoke``)."""
    if smoke:
        return [
            ScenarioSpec(
                name="macro-sf-heavy",
                description="Smoke-sized engine-bound run: two TPC-H Q5 "
                "tenants at the small scale on one device.",
                tenants=uniform_tenants(2, "tpch:q5", cache_capacity=30),
                scale="small",
                seed=42,
            ),
            ScenarioSpec(
                name="macro-fleet-churn",
                description="Smoke-sized churn: four Q12 tenants on a "
                "four-device R=2 fleet with one join and one failure.",
                tenants=uniform_tenants(4, "tpch:q12", cache_capacity=8),
                scale="tiny",
                fleet=FleetSpec(
                    devices=4,
                    replication=2,
                    replica_policy="least-loaded",
                    events=(DeviceJoin(device=4, at_seconds=60.0),),
                    failures=(DeviceFailure(device=0, at_seconds=120.0),),
                ),
                seed=42,
            ),
            ScenarioSpec(
                name="macro-throttled-rebalance",
                description="Smoke-sized throttled join under bursty load.",
                tenants=uniform_tenants(3, "tpch:q12", cache_capacity=8),
                scale="tiny",
                arrival=BurstyArrival(
                    burst_size=2, burst_gap_seconds=60.0, jitter_seconds=4.0
                ),
                fleet=FleetSpec(
                    devices=3,
                    events=(DeviceJoin(device=3, at_seconds=80.0),),
                    throttle=MigrationThrottle(objects_per_second=0.1),
                ),
                seed=42,
            ),
            ScenarioSpec(
                name="macro-million-keys",
                description="Smoke-sized key-population run: four Q6 tenants "
                "at SF-100 on an eight-device R=2 fleet of slack-FCFS "
                "devices with one join.",
                tenants=uniform_tenants(4, "tpch:q6", cache_capacity=16),
                scale="sf100",
                scheduler="slack-fcfs",
                scheduler_param=4.0,
                fleet=FleetSpec(
                    devices=8,
                    replication=2,
                    events=(DeviceJoin(device=8, at_seconds=120.0),),
                ),
                seed=42,
            ),
            ScenarioSpec(
                name="macro-sf-1000",
                description="Smoke-sized engine-depth run: one TPC-H Q5 "
                "tenant at the small scale with everything cached.",
                tenants=uniform_tenants(1, "tpch:q5", cache_capacity=256),
                scale="small",
                seed=42,
            ),
            ScenarioSpec(
                name="macro-heterogeneous-fleet",
                description="Smoke-sized load-aware run: four Q12 tenants "
                "on a mixed fast/slow three-device R=2 fleet with "
                "profile-weighted placement, ewma-latency routing and the "
                "feedback rebalancer ticking.",
                tenants=uniform_tenants(4, "tpch:q12", cache_capacity=8),
                scale="tiny",
                fleet=FleetSpec(
                    devices=3,
                    replication=2,
                    replica_policy="ewma-latency",
                    weighting="profile",
                    profiles=(
                        DeviceProfile(
                            device=1, switch_seconds=40.0, transfer_seconds=19.2
                        ),
                        DeviceProfile(
                            device=2, switch_seconds=5.0, transfer_seconds=4.8
                        ),
                    ),
                    rebalance=RebalancePolicy(interval_seconds=150.0),
                ),
                seed=42,
            ),
        ]
    return [
        ScenarioSpec(
            name="macro-sf-heavy",
            description="Engine-bound macro: four TPC-H Q5 tenants at SF-100 "
            "on one device, two repetitions each — the query engine "
            "(joins, predicates, subplans) dominates.",
            tenants=uniform_tenants(
                4, "tpch:q5", cache_capacity=30, repetitions=2
            ),
            scale="sf100",
            seed=42,
        ),
        ScenarioSpec(
            name="macro-fleet-churn",
            description="Core-loop macro: twelve Q12 tenants at SF-50 on a "
            "sixteen-device R=2 fleet through two joins, a graceful leave "
            "and a fail-stop loss — the event loop, placement diffs and "
            "report-phase attribution dominate.",
            tenants=uniform_tenants(
                12, "tpch:q12", cache_capacity=8, repetitions=6
            ),
            scale="sf50",
            fleet=FleetSpec(
                devices=16,
                replication=2,
                replica_policy="least-loaded",
                events=(
                    DeviceJoin(device=16, at_seconds=120.0),
                    DeviceJoin(device=17, at_seconds=240.0),
                    DeviceLeave(device=0, at_seconds=360.0),
                ),
                failures=(DeviceFailure(device=1, at_seconds=480.0),),
            ),
            seed=42,
        ),
        ScenarioSpec(
            name="macro-throttled-rebalance",
            description="Rebalance macro: a join lands mid-run on a "
            "six-device R=2 fleet under bursty Q12 load at SF-50, with "
            "migration I/O paced by a per-device token bucket so "
            "foreground and background I/O interleave.",
            tenants=uniform_tenants(
                8, "tpch:q12", cache_capacity=8, repetitions=3
            ),
            scale="sf50",
            arrival=BurstyArrival(
                burst_size=2, burst_gap_seconds=90.0, jitter_seconds=4.0
            ),
            fleet=FleetSpec(
                devices=6,
                replication=2,
                replica_policy="least-loaded",
                events=(DeviceJoin(device=6, at_seconds=150.0),),
                throttle=MigrationThrottle(objects_per_second=0.5),
            ),
            seed=42,
        ),
        ScenarioSpec(
            name="macro-million-keys",
            description="Key-population macro: eight Q6 tenants over a "
            "125k-segment lineitem put one million objects on a "
            "32-device R=2 fleet, with a join landing mid-run.  Devices "
            "run the shipping-firmware slack-FCFS scheduler (slack 4), so "
            "bulk placement, the per-device pending pools and scheduling "
            "decisions over them, and the request fan-out dominate.",
            tenants=uniform_tenants(8, "tpch:q6", cache_capacity=64),
            scale="mkeys",
            scheduler="slack-fcfs",
            scheduler_param=4.0,
            fleet=FleetSpec(
                devices=32,
                replication=2,
                events=(DeviceJoin(device=32, at_seconds=600.0),),
            ),
            seed=42,
        ),
        ScenarioSpec(
            name="macro-sf-1000",
            description="Engine-depth macro: one TPC-H Q5 tenant at "
            "SF-1000 (~177k subplans over ~952 objects, all cached) — "
            "segment filtering, hash-table builds and the n-ary join "
            "dominate.",
            tenants=uniform_tenants(1, "tpch:q5", cache_capacity=1024),
            scale="sf1000",
            seed=42,
        ),
        ScenarioSpec(
            name="macro-heterogeneous-fleet",
            description="Load-aware macro: eight Q12 tenants at SF-50 on a "
            "mixed fast/slow eight-device R=2 fleet — two stragglers at 2x "
            "transfer cost, two next-gen devices at half — with "
            "profile-weighted placement, ewma-latency routing and the "
            "feedback rebalancer ticking every 300 simulated seconds.  "
            "Weighted ring builds, per-request EWMA updates and "
            "reweight-epoch placement diffs dominate.",
            tenants=uniform_tenants(
                8, "tpch:q12", cache_capacity=8, repetitions=4
            ),
            scale="sf50",
            fleet=FleetSpec(
                devices=8,
                replication=2,
                replica_policy="ewma-latency",
                weighting="profile",
                profiles=(
                    DeviceProfile(
                        device=2, switch_seconds=40.0, transfer_seconds=19.2
                    ),
                    DeviceProfile(
                        device=3, switch_seconds=40.0, transfer_seconds=19.2
                    ),
                    DeviceProfile(
                        device=6, switch_seconds=5.0, transfer_seconds=4.8
                    ),
                    DeviceProfile(
                        device=7, switch_seconds=5.0, transfer_seconds=4.8
                    ),
                ),
                rebalance=RebalancePolicy(interval_seconds=300.0),
            ),
            seed=42,
        ),
    ]


def peak_rss_kb() -> int:
    """Peak resident set size of this process so far, in kilobytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalise to KB
    so committed documents agree on the unit.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak //= 1024
    return int(peak)


def _event_count(env: Any) -> int:
    """Events delivered by the core, tolerating the pre-counter core.

    The batched environment counts deliveries in ``dispatched``; the old
    heap core only carried ``_sequence`` (events *scheduled*, all of which
    are delivered by the time a run drains) — close enough for a
    before/after ratio measured by the same harness.
    """
    dispatched = getattr(env, "dispatched", None)
    if dispatched is not None:
        return int(dispatched)
    return int(getattr(env, "_sequence", 0))


def run_one(
    spec: ScenarioSpec, trace: bool = False, profile_dir: Optional[Path] = None
) -> Dict[str, Any]:
    """Run one macro scenario and measure its phases.

    Events/second is computed over the run phase only: building catalogs
    and condensing the report are real costs (and reported), but the
    events/sec figure is meant to track the simulation core.  With
    ``trace`` the run also records a full trace (the entry reports the span
    count), which doubles as a measurement of tracing overhead at scale.
    With ``profile_dir`` the whole scenario runs under :mod:`cProfile` and
    the stats are dumped to ``<profile_dir>/<name>.pstats`` — wall times
    then include the profiler's overhead and are not comparable to
    unprofiled runs.

    ``peak_rss_kb_delta`` is the growth of the *process-wide* peak RSS over
    this scenario.  ``ru_maxrss`` is monotonic, so a scenario that fits
    inside a high-water mark set by an earlier one reports 0 — the figure
    is a lower bound on the scenario's footprint, meaningful mainly for the
    scenario that sets the suite's peak.
    """
    if trace and not spec.trace:
        spec = replace(spec, trace=True)
    runner = ScenarioRunner(check=False)
    rss_before = peak_rss_kb()
    profiler: Optional[cProfile.Profile] = None
    if profile_dir is not None:
        profiler = cProfile.Profile()
        profiler.enable()
    build_start = time.perf_counter()
    service = runner.build_service(spec)
    run_start = time.perf_counter()
    result = service.run()
    report_start = time.perf_counter()
    # The report assembly is a measured phase of its own because waiting
    # attribution over the device busy log is a known hot path; the private
    # helper is the exact code path ScenarioRunner.run() takes.
    report = runner._build_report(spec, service, result, [])
    end = time.perf_counter()
    if profiler is not None:
        profiler.disable()
    events = _event_count(service.env)
    run_seconds = report_start - run_start
    entry = {
        "description": spec.description,
        "build_seconds": round(run_start - build_start, 4),
        "run_seconds": round(run_seconds, 4),
        "report_seconds": round(end - report_start, 4),
        "wall_seconds": round(end - build_start, 4),
        "events_dispatched": events,
        "events_per_second": round(events / run_seconds, 1) if run_seconds else 0.0,
        "simulated_time": report.total_simulated_time,
        "queries_run": sum(
            client.queries_run for client in report.clients.values()
        ),
        "peak_rss_kb_delta": peak_rss_kb() - rss_before,
    }
    if trace:
        from repro.obs.export import build_trace

        entry["trace_spans"] = len(build_trace(service, scenario=spec.name)["spans"])
    if profiler is not None and profile_dir is not None:
        profile_dir.mkdir(parents=True, exist_ok=True)
        stats_path = profile_dir / f"{spec.name}.pstats"
        profiler.dump_stats(stats_path)
        entry["profile"] = str(stats_path)
    return entry


def smoke_determinism() -> Dict[str, Dict[str, Any]]:
    """Per-scenario deterministic outcomes of the smoke-sized suite.

    Embedded in the committed full document so CI's smoke job has pinned
    ``events_dispatched`` / ``simulated_time`` values to diff against —
    both are machine-independent, unlike every wall-clock figure.
    """
    outcomes: Dict[str, Dict[str, Any]] = {}
    for spec in macro_specs(smoke=True):
        entry = run_one(spec)
        outcomes[spec.name] = {
            "events_dispatched": entry["events_dispatched"],
            "simulated_time": entry["simulated_time"],
        }
    return outcomes


def run_benchmarks(
    smoke: bool = False,
    trace: bool = False,
    profile_dir: Optional[Path] = None,
) -> Dict[str, Any]:
    """Run the macro suite and assemble the ``BENCH_10.json`` document.

    Full-mode documents additionally embed the smoke suite's deterministic
    outcomes (``smoke_determinism``), so a committed full document is the
    single drift reference for both CI's smoke runs and full re-runs.
    """
    scenarios: Dict[str, Dict[str, Any]] = {}
    for spec in macro_specs(smoke):
        scenarios[spec.name] = run_one(spec, trace=trace, profile_dir=profile_dir)
    total_run = sum(entry["run_seconds"] for entry in scenarios.values())
    total_events = sum(entry["events_dispatched"] for entry in scenarios.values())
    document = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "benchmark": "BENCH_10",
        "mode": "smoke" if smoke else "full",
        "traced": bool(trace),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "scenarios": scenarios,
        "totals": {
            "wall_seconds": round(
                sum(entry["wall_seconds"] for entry in scenarios.values()), 4
            ),
            "run_seconds": round(total_run, 4),
            "events_dispatched": total_events,
            "events_per_second": round(total_events / total_run, 1)
            if total_run
            else 0.0,
        },
        "peak_rss_kb": peak_rss_kb(),
    }
    if not smoke:
        document["smoke_determinism"] = smoke_determinism()
    return document


def check_determinism(
    document: Mapping[str, Any], committed: Mapping[str, Any]
) -> List[str]:
    """Diff a fresh run's deterministic outcomes against a committed doc.

    Compares ``events_dispatched`` and ``simulated_time`` per scenario —
    the two machine-independent figures the harness records — and returns
    one message per divergence (empty list = no drift).  Smoke documents
    are checked against the committed ``smoke_determinism`` section, full
    documents against the committed scenario entries themselves.
    """
    if document.get("mode") == "smoke":
        expected = committed.get("smoke_determinism", {})
        source = "smoke_determinism"
    else:
        expected = committed.get("scenarios", {})
        source = "scenarios"
    problems: List[str] = []
    scenarios = document.get("scenarios", {})
    for name in sorted(set(scenarios) | set(expected)):
        entry = scenarios.get(name)
        pinned = expected.get(name)
        if entry is None:
            problems.append(f"{name}: pinned in {source} but not run")
            continue
        if pinned is None:
            problems.append(f"{name}: ran but has no pinned entry in {source}")
            continue
        for key in ("events_dispatched", "simulated_time"):
            if entry.get(key) != pinned.get(key):
                problems.append(
                    f"{name}: {key} drifted from {pinned.get(key)!r} "
                    f"to {entry.get(key)!r}"
                )
    return problems


def attach_baseline(
    document: Dict[str, Any], baseline: Mapping[str, Any], label: str = "baseline"
) -> Dict[str, Any]:
    """Embed a prior run's numbers plus per-scenario speedup ratios.

    ``baseline`` is a document produced by the same harness (typically run
    against a pre-change checkout).  Two ratio families are reported:
    events/sec over the run phase (the core-loop metric) and build+run wall
    time (which additionally credits faster catalog/placement/router
    construction — the figure that matters for the scale-up scenarios).
    """
    speedups: Dict[str, float] = {}
    build_run_speedups: Dict[str, float] = {}
    base_scenarios = baseline.get("scenarios", {})
    for name, entry in document["scenarios"].items():
        base = base_scenarios.get(name)
        if not base:
            continue
        if base.get("events_per_second"):
            speedups[name] = round(
                entry["events_per_second"] / base["events_per_second"], 2
            )
        base_build_run = base.get("build_seconds", 0.0) + base.get("run_seconds", 0.0)
        build_run = entry["build_seconds"] + entry["run_seconds"]
        if base_build_run and build_run:
            build_run_speedups[name] = round(base_build_run / build_run, 2)
    document[label] = {
        "label": str(baseline.get("label", "pre-change")),
        "totals": baseline.get("totals", {}),
        "scenarios": {
            name: {
                key: base[key]
                for key in (
                    "wall_seconds",
                    "build_seconds",
                    "run_seconds",
                    "events_dispatched",
                    "events_per_second",
                )
                if key in base
            }
            for name, base in base_scenarios.items()
        },
        "speedup_events_per_second": speedups,
        "speedup_build_run_seconds": build_run_speedups,
    }
    return document


def write_document(document: Mapping[str, Any], path: Optional[Path] = None) -> Path:
    """Write the benchmark document as stable, diffable JSON."""
    path = path or (repo_root() / DEFAULT_OUTPUT_NAME)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path
