"""The simulated Cold Storage Device.

The device is a single simulation process that mirrors the paper's Swift
middleware: it receives tagged GET requests, consults the layout to find the
disk group of each object, asks the configured I/O scheduler which group to
load, charges the group-switch latency when the loaded group changes, and
then streams objects back to clients one at a time, charging a per-object
transfer time.

For every unit of busy time the device records a :class:`BusyInterval`
(switch or transfer) so the metrics layer can attribute each client's waiting
time to switching vs. data transfer — the breakdown shown in Figure 9 and
Table 3 of the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from collections import deque

from repro.csd.disk_group import DiskGroupLayout
from repro.csd.object_store import ObjectStore, split_object_key
from repro.csd.request import GetRequest, MigrationJob
from repro.csd.scheduler import IOScheduler
from repro.exceptions import ConfigurationError, StorageError
from repro.obs import NULL_TRACER, MetricsRegistry
from repro.sim import Environment, Store


@dataclass
class DeviceConfig:
    """Tunable parameters of the emulated CSD."""

    #: Latency of spinning down the loaded group and spinning up another.
    group_switch_seconds: float = 10.0
    #: Time to push one object to a client (serialized middleware, as in the paper).
    transfer_seconds_per_object: float = 9.6
    #: When True, transfers to *different* clients overlap (each client still
    #: receives its own objects serially).  This models the paper's
    #: HDD-based capacity tier served by plain Swift, where per-client network
    #: streams proceed in parallel; the CSD emulation keeps the paper's
    #: serialized middleware behaviour (False).
    concurrent_transfers: bool = False

    def __post_init__(self) -> None:
        if not math.isfinite(self.group_switch_seconds) or self.group_switch_seconds < 0:
            raise ConfigurationError("group_switch_seconds must be finite and non-negative")
        if (
            not math.isfinite(self.transfer_seconds_per_object)
            or self.transfer_seconds_per_object < 0
        ):
            raise ConfigurationError("transfer_seconds_per_object must be finite and non-negative")


class MigrationTokenBucket:
    """Token bucket pacing one device's migration I/O (objects per second).

    Tokens accrue continuously on the simulated clock up to ``burst``; each
    migration read/write consumes one.  All arithmetic is plain float math on
    simulated timestamps, so throttled runs stay exactly deterministic.
    """

    __slots__ = ("rate", "burst", "tokens", "last_refill")

    #: Slack absorbing float drift: after sleeping exactly
    #: ``seconds_until_token()``, the refill may land at 1 - 1e-16 tokens
    #: instead of 1.0; without the epsilon the device would re-sleep
    #: femtosecond intervals forever.
    EPSILON = 1e-9

    def __init__(self, objects_per_second: float, burst: int = 1) -> None:
        if not math.isfinite(objects_per_second) or objects_per_second <= 0:
            raise ConfigurationError(
                "throttle objects_per_second must be finite and positive"
            )
        if burst < 1:
            raise ConfigurationError("throttle burst must be >= 1")
        self.rate = objects_per_second
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last_refill = 0.0

    def _refill(self, now: float) -> None:
        if now > self.last_refill:
            self.tokens = min(self.burst, self.tokens + (now - self.last_refill) * self.rate)
            self.last_refill = now

    def try_consume(self, now: float) -> bool:
        """Take one token if available; ``False`` means the I/O must wait."""
        self._refill(now)
        if self.tokens >= 1.0 - self.EPSILON:
            self.tokens = max(0.0, self.tokens - 1.0)
            return True
        return False

    def seconds_until_token(self, now: float) -> float:
        """Simulated time until the next token accrues (0 when one is ready)."""
        self._refill(now)
        if self.tokens >= 1.0 - self.EPSILON:
            return 0.0
        return (1.0 - self.tokens) / self.rate


@dataclass(frozen=True)
class BusyInterval:
    """One stretch of device activity: a switch, a transfer or migration I/O."""

    start: float
    end: float
    kind: str  # "switch", "transfer" or "migration"
    group_id: int
    client_id: Optional[str] = None
    query_id: Optional[str] = None
    object_key: Optional[str] = None

    @property
    def duration(self) -> float:
        """Length of the interval in simulated seconds."""
        return self.end - self.start


class IntervalLog:
    """Append-optimised log of :class:`BusyInterval` records.

    The device appends one record per switch/transfer/migration on the hot
    path, but consumers (metrics, invariants, the fleet router) only read
    the intervals after the run.  Records are therefore kept as plain
    column tuples — far cheaper to append than a frozen dataclass — and
    materialised into :class:`BusyInterval` objects lazily, once, on first
    read.  The log behaves like a list of ``BusyInterval`` for iteration,
    indexing and mutation.
    """

    __slots__ = ("_rows", "_cache")

    def __init__(self) -> None:
        self._rows: List[tuple] = []
        self._cache: Optional[List[BusyInterval]] = None

    def record(
        self,
        start: float,
        end: float,
        kind: str,
        group_id: int,
        client_id: Optional[str] = None,
        query_id: Optional[str] = None,
        object_key: Optional[str] = None,
    ) -> None:
        """Append one interval without building a ``BusyInterval`` object."""
        self._cache = None
        self._rows.append((start, end, kind, group_id, client_id, query_id, object_key))

    def append(self, interval: BusyInterval) -> None:
        """List-style append of an already-built interval."""
        self.record(
            interval.start,
            interval.end,
            interval.kind,
            interval.group_id,
            interval.client_id,
            interval.query_id,
            interval.object_key,
        )

    def _materialise(self) -> List[BusyInterval]:
        cache = self._cache
        if cache is None:
            cache = [BusyInterval(*row) for row in self._rows]
            self._cache = cache
        return cache

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __iter__(self):
        return iter(self._materialise())

    def __getitem__(self, index):
        return self._materialise()[index]

    def __setitem__(self, index: int, interval: BusyInterval) -> None:
        self._cache = None
        self._rows[index] = (
            interval.start,
            interval.end,
            interval.kind,
            interval.group_id,
            interval.client_id,
            interval.query_id,
            interval.object_key,
        )

    def total_duration(self) -> float:
        """Sum of interval durations, in log order (no materialisation)."""
        total = 0.0
        for row in self._rows:
            total += row[1] - row[0]
        return total

    def window_overlap(self, start: float, end: float) -> float:
        """Summed overlap of every interval with ``[start, end]``, log order."""
        total = 0.0
        for row in self._rows:
            total += max(
                0.0,
                (row[1] if row[1] < end else end) - (row[0] if row[0] > start else start),
            )
        return total


class DeviceStats:
    """Aggregate device counters, registered as ``device.<name>.*`` metrics.

    Each counter is a :class:`~repro.obs.metrics.Counter` in the (shared or
    private) :class:`~repro.obs.metrics.MetricsRegistry`, so the same values
    the device maintains on its hot path are what registry snapshots export.
    The legacy attribute names remain as read/write properties: reads return
    the counter value, writes set it (used when aggregating fleet-wide stats
    and by tests that perturb counters deliberately).
    """

    __slots__ = (
        "metrics",
        "objects_per_client",
        "_objects_served",
        "_group_switches",
        "_requests_received",
        "_migration_jobs",
        "_migration_seconds",
        "_migration_interference_seconds",
        "_migration_deferrals",
    )

    def __init__(
        self, name: str = "csd0", metrics: Optional[MetricsRegistry] = None
    ) -> None:
        registry = metrics if metrics is not None else MetricsRegistry()
        self.metrics = registry
        prefix = f"device.{name}"
        self._objects_served = registry.counter(f"{prefix}.objects_served")
        self._group_switches = registry.counter(f"{prefix}.group_switches")
        self._requests_received = registry.counter(f"{prefix}.requests_received")
        #: Rebalancing I/O performed by this device (reads + writes of
        #: migrating objects), and the share done while foreground waited.
        self._migration_jobs = registry.counter(f"{prefix}.migration_jobs")
        self._migration_seconds = registry.counter(f"{prefix}.migration_seconds", 0.0)
        self._migration_interference_seconds = registry.counter(
            f"{prefix}.migration_interference_seconds", 0.0
        )
        #: Times a queued migration job was set aside for foreground queries
        #: because the throttle's token bucket was empty.
        self._migration_deferrals = registry.counter(f"{prefix}.migration_deferrals")
        self.objects_per_client: Dict[str, int] = {}

    # -- legacy attribute views over the registry counters ------------- #
    @property
    def objects_served(self) -> int:
        return self._objects_served.value

    @objects_served.setter
    def objects_served(self, value: int) -> None:
        self._objects_served.value = value

    @property
    def group_switches(self) -> int:
        return self._group_switches.value

    @group_switches.setter
    def group_switches(self, value: int) -> None:
        self._group_switches.value = value

    @property
    def requests_received(self) -> int:
        return self._requests_received.value

    @requests_received.setter
    def requests_received(self, value: int) -> None:
        self._requests_received.value = value

    @property
    def migration_jobs(self) -> int:
        return self._migration_jobs.value

    @migration_jobs.setter
    def migration_jobs(self, value: int) -> None:
        self._migration_jobs.value = value

    @property
    def migration_seconds(self) -> float:
        return self._migration_seconds.value

    @migration_seconds.setter
    def migration_seconds(self, value: float) -> None:
        self._migration_seconds.value = value

    @property
    def migration_interference_seconds(self) -> float:
        return self._migration_interference_seconds.value

    @migration_interference_seconds.setter
    def migration_interference_seconds(self, value: float) -> None:
        self._migration_interference_seconds.value = value

    @property
    def migration_deferrals(self) -> int:
        return self._migration_deferrals.value

    @migration_deferrals.setter
    def migration_deferrals(self, value: int) -> None:
        self._migration_deferrals.value = value

    # -- hot-path recording (counters bumped directly: these run once per
    # request and ``Counter.inc``'s negative-amount guard is dead weight for
    # a constant +1) ---------------------------------------------------- #
    def record_served(self, client_id: str) -> None:
        self._objects_served.value += 1
        self.objects_per_client[client_id] = self.objects_per_client.get(client_id, 0) + 1

    def record_request(self) -> None:
        self._requests_received.value += 1

    def record_switch(self) -> None:
        self._group_switches.inc()

    def record_migration(self, seconds: float, interfered: bool) -> None:
        self._migration_jobs.inc()
        self._migration_seconds.inc(seconds)
        if interfered:
            self._migration_interference_seconds.inc(seconds)

    def record_deferral(self) -> None:
        self._migration_deferrals.inc()

    def absorb(self, other: DeviceStats) -> None:
        """Add another device's counters into this aggregate."""
        self._objects_served.inc(other.objects_served)
        self._group_switches.inc(other.group_switches)
        self._requests_received.inc(other.requests_received)
        self._migration_jobs.inc(other.migration_jobs)
        self._migration_seconds.inc(other.migration_seconds)
        self._migration_interference_seconds.inc(other.migration_interference_seconds)
        self._migration_deferrals.inc(other.migration_deferrals)
        for client_id, count in other.objects_per_client.items():
            self.objects_per_client[client_id] = (
                self.objects_per_client.get(client_id, 0) + count
            )


class ColdStorageDevice:
    """Simulated MAID-style cold storage device shared by all clients."""

    def __init__(
        self,
        env: Environment,
        object_store: ObjectStore,
        layout: DiskGroupLayout,
        scheduler: IOScheduler,
        config: Optional[DeviceConfig] = None,
        migration_throttle: Optional[MigrationTokenBucket] = None,
        name: str = "csd0",
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ) -> None:
        self.env = env
        self.object_store = object_store
        self.layout = layout
        self.scheduler = scheduler
        self.config = config or DeviceConfig()
        #: Identity used for metric names and trace tracks.
        self.name = name
        #: Tracer for inbox-entry events; :data:`~repro.obs.NULL_TRACER` off.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Token bucket pacing migration I/O; ``None`` = strict priority.
        self.migration_throttle = migration_throttle
        self.inbox: Store = Store(env, name="csd-inbox")
        #: Rebalancing work (migration reads/writes) served with priority
        #: over foreground GETs, in arrival order.
        self._admin_jobs = deque()
        self.current_group: Optional[int] = None
        self.busy_intervals: IntervalLog = IntervalLog()
        self.stats = DeviceStats(name=name, metrics=metrics)
        self._client_busy_until: Dict[str, float] = {}
        self._inflight = 0
        self._drained_event = None
        self.process = env.process(self._run(), name="cold-storage-device")

    # ------------------------------------------------------------------ #
    # Client-facing API
    # ------------------------------------------------------------------ #
    def submit(self, request: GetRequest) -> GetRequest:
        """Submit a GET request; its ``completion`` event fires with the payload."""
        if not self.object_store.exists(request.object_key):
            raise StorageError(f"request for unknown object {request.object_key!r}")
        # Resolve the disk group once: the same lookup validates placement
        # (the layout is append-only, so the group cannot change between
        # here and ``_register``).
        group = self.layout.group_if_placed(request.object_key)
        if group is None:
            raise StorageError(f"object {request.object_key!r} is not placed on any disk group")
        request.disk_group = group
        request.issue_time = self.env._now
        if self.tracer.enabled:
            self.tracer.io_submit(request.query_id, request.object_key, self.name)
        self.inbox.put(request)
        return request

    def get(self, object_key: str, client_id: str, query_id: str) -> GetRequest:
        """Convenience wrapper building and submitting a request."""
        request = GetRequest(
            object_key=object_key,
            client_id=client_id,
            query_id=query_id,
            completion=self.env.event(name=object_key),
        )
        return self.submit(request)

    def drain_pending(self) -> List[GetRequest]:
        """Pull every not-yet-served request out of the device (fail-stop).

        Anything still sitting in the inbox is registered first so the
        scheduler's counters see it, then all queued requests are popped in
        scheduling order.  The request being transferred at this instant (if
        any) has already left the queues and completes normally.  Used by the
        fleet router to fail a dead device's queue over to its replicas.
        """
        self._drain_inbox()
        drained: List[GetRequest] = []
        while self.scheduler.has_pending():
            for group in self.scheduler.pending_groups():
                while True:
                    request = self.scheduler.next_request(group)
                    if request is None:
                        break
                    drained.append(request)
        return drained

    def submit_migration(self, job: MigrationJob) -> MigrationJob:
        """Queue rebalancing I/O; served before foreground GETs."""
        self.inbox.put(job)
        return job

    def pending_migration_jobs(self) -> int:
        """Rebalancing I/O accepted but not yet performed.

        Normally 0 after a run; a throttle paced slower than the workload
        legitimately leaves jobs queued when the last session completes (the
        data already landed at plan time — only the I/O charge is missing),
        and the report surfaces that count instead of letting the migration
        silently look fully executed.
        """
        return len(self._admin_jobs) + sum(
            1 for item in self.inbox.items if isinstance(item, MigrationJob)
        )

    def drain_migration_jobs(self) -> List[MigrationJob]:
        """Drop all queued rebalancing I/O (fail-stop).

        A dead device must never perform I/O again: the migration job in
        flight (if any) completes like an in-flight transfer does, but
        everything still queued — in the admin queue or the inbox — is
        withdrawn and returned to the caller, uncharged.
        """
        self._drain_inbox()
        dropped = list(self._admin_jobs)
        self._admin_jobs.clear()
        return dropped

    # ------------------------------------------------------------------ #
    # Device main loop
    # ------------------------------------------------------------------ #
    def _register(self, item) -> None:
        if isinstance(item, MigrationJob):
            self._admin_jobs.append(item)
            return
        # ``disk_group`` was resolved by ``submit``; requests injected into
        # the inbox by other paths (tests, handoffs) fall back to the layout.
        group = item.disk_group
        if group is None:
            group = self.layout.group_of(item.object_key)
        self.scheduler.add_request(item, group)
        self.stats.record_request()

    def _drain_inbox(self) -> None:
        while True:
            request = self.inbox.try_get()
            if request is None:
                break
            self._register(request)

    def _run(self):
        while True:
            self._drain_inbox()
            if self._admin_jobs:
                throttle = self.migration_throttle
                if throttle is None or throttle.try_consume(self.env.now):
                    yield from self._perform_migration(self._admin_jobs.popleft())
                    continue
                if not self.scheduler.has_pending():
                    # Idle apart from throttled migration work: wait for the
                    # bucket to refill OR for a foreground arrival, whichever
                    # comes first — a query arriving mid-wait wakes the
                    # device and (the bucket still being empty) is served
                    # before the migration, as the throttle contract says.
                    refill = self.env.timeout(
                        throttle.seconds_until_token(self.env.now)
                    )
                    arrival = self.inbox.get()
                    yield self.env.any_of([refill, arrival])
                    if arrival.triggered:
                        self._register(arrival.value)
                    else:
                        # The refill won: withdraw the getter so the next
                        # put is not handed to an event nobody consumes.
                        self.inbox.cancel(arrival)
                    continue
                # No tokens and queries are waiting: defer the migration I/O
                # and serve foreground work first — the interleaving a
                # strict-priority rebalance denies.
                self.stats.record_deferral()
            if not self.scheduler.has_pending():
                request = yield self.inbox.get()
                self._register(request)
                continue

            # Decide which group to serve next.  The decision is re-evaluated
            # only after the *service set* — the requests pending on the
            # chosen group at decision time — has been fully served
            # (non-preemptive), or after every object for the FCFS policies.
            group = self.scheduler.choose_next_group(self.current_group)
            if group != self.current_group:
                # Never abandon a group while deliveries to clients are still
                # in flight (only relevant with concurrent transfers).
                while self._inflight > 0:
                    self._drained_event = self.env.event(name="csd-drained")
                    yield self._drained_event
                    self._drain_inbox()
                yield from self._switch_to(group)
                self._drain_inbox()

            quota = self.scheduler.service_quota(group)
            while quota > 0:
                request = self.scheduler.next_request(group)
                if request is None:
                    break
                yield from self._serve(request, group)
                quota -= 1
                self._drain_inbox()

    def _perform_migration(self, job: MigrationJob):
        """Perform one rebalancing read/write, tracking interference.

        The job counts as *interfering* when foreground work waited at the
        device at any point while the migration I/O ran — the seconds the
        rebalance stole from query traffic.  Sampled before *and* after the
        I/O: requests arriving mid-job sit in the inbox (the device is busy
        migrating) and must count too.
        """
        interfered = self.scheduler.has_pending()
        start = self.env.now
        if job.seconds > 0:
            yield self.env.timeout(job.seconds)
        end = self.env.now
        # Only *foreground* arrivals count: the inbox may also hold further
        # MigrationJobs (a later epoch's burst), which are not query traffic.
        interfered = (
            interfered
            or self.scheduler.has_pending()
            or any(isinstance(item, GetRequest) for item in self.inbox.items)
        )
        group = (
            self.layout.group_of(job.object_key)
            if self.layout.has_object(job.object_key)
            else -1
        )
        tenant, _segment = split_object_key(job.object_key)
        self.busy_intervals.record(
            start,
            end,
            "migration",
            group,
            client_id=tenant,
            query_id=f"{job.reason}:{job.direction}:epoch{job.epoch}",
            object_key=job.object_key,
        )
        self.stats.record_migration(end - start, interfered)
        if job.notify is not None:
            job.notify(job, start, end, interfered)

    def _switch_to(self, group: int):
        start = self.env.now
        if self.config.group_switch_seconds > 0:
            yield self.env.timeout(self.config.group_switch_seconds)
        self.busy_intervals.record(start, self.env.now, "switch", group)
        self.current_group = group
        self.stats.record_switch()
        self.scheduler.notify_switch(group)

    def _serve(self, request: GetRequest, group: int):
        if self.config.concurrent_transfers:
            # The device only dispatches the transfer; the delivery occupies
            # the client's (per-tenant) channel, so different clients receive
            # data in parallel while the same client still gets objects
            # serially.
            start = max(self.env.now, self._client_busy_until.get(request.client_id, 0.0))
            end = start + self.config.transfer_seconds_per_object
            self._client_busy_until[request.client_id] = end
            self._inflight += 1
            self.env.process(
                self._deliver_at(request, group, start, end),
                name=f"deliver:{request.object_key}",
            )
            return
        start = self.env.now
        if self.config.transfer_seconds_per_object > 0:
            yield self.env.timeout(self.config.transfer_seconds_per_object)
        self._complete(request, group, start, self.env.now)

    def _deliver_at(self, request: GetRequest, group: int, start: float, end: float):
        if end > self.env.now:
            yield self.env.timeout(end - self.env.now)
        self._complete(request, group, start, end)
        self._inflight -= 1
        if self._inflight == 0 and self._drained_event is not None:
            drained, self._drained_event = self._drained_event, None
            drained.succeed(None)

    def _complete(self, request: GetRequest, group: int, start: float, end: float) -> None:
        self.busy_intervals.record(
            start,
            end,
            "transfer",
            group,
            client_id=request.client_id,
            query_id=request.query_id,
            object_key=request.object_key,
        )
        request.group_id = group
        request.complete_time = end
        self.stats.record_served(request.client_id)
        payload = self.object_store.get(request.object_key)
        request.completion.succeed(payload)
