"""Data layout policies.

In a shared, virtualised CSD the database has no control over where its
objects land; the layout policy models the placement decisions the storage
service makes.  The policies below are the four layouts of the paper's
sensitivity study (Section 5.2.3) plus two extras used for ablations.

Every policy turns a mapping ``client -> [object keys]`` into a
:class:`~repro.csd.disk_group.DiskGroupLayout`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from repro.csd.disk_group import DiskGroupLayout
from repro.csd.object_store import split_object_key
from repro.exceptions import LayoutError

ClientObjects = Mapping[str, Sequence[str]]


class LayoutPolicy:
    """Base class for layout policies."""

    def build(self, client_objects: ClientObjects) -> DiskGroupLayout:
        """Place every object of every client into a disk group."""
        raise NotImplementedError

    @staticmethod
    def _validate(client_objects: ClientObjects) -> None:
        if not client_objects:
            raise LayoutError("layout requires at least one client")
        for client, objects in client_objects.items():
            if not objects:
                raise LayoutError(f"client {client!r} has no objects to place")


class AllInOneLayout(LayoutPolicy):
    """Every object of every client in a single disk group ("Allin1").

    This is also how the HDD-based capacity tier is emulated: with one group
    there are never any group switches.
    """

    def build(self, client_objects: ClientObjects) -> DiskGroupLayout:
        self._validate(client_objects)
        assignment = {
            key: 0 for objects in client_objects.values() for key in objects
        }
        return DiskGroupLayout(assignment)


class ClientsPerGroupLayout(LayoutPolicy):
    """Pack ``clients_per_group`` clients into each disk group.

    ``clients_per_group=1`` is the paper's default one-client-per-group
    layout ("1perG"); ``clients_per_group=2`` is "2perG".  Clients are
    assigned to groups in their listed order.
    """

    def __init__(self, clients_per_group: int = 1) -> None:
        if clients_per_group <= 0:
            raise LayoutError("clients_per_group must be positive")
        self.clients_per_group = clients_per_group

    def build(self, client_objects: ClientObjects) -> DiskGroupLayout:
        self._validate(client_objects)
        assignment: Dict[str, int] = {}
        for position, (client, objects) in enumerate(client_objects.items()):
            group = position // self.clients_per_group
            for key in objects:
                assignment[key] = group
        return DiskGroupLayout(assignment)


class IncrementalLayout(LayoutPolicy):
    """The paper's "Increm." layout: each client's data is split in half and
    the halves of neighbouring clients share a group.

    With clients C1..C4 and groups G1..G4 the paper places C1.1+C4.2 on G1,
    C1.2+C2.1 on G2, C2.2+C3.1 on G3 and C3.2+C4.1 on G4.  Generalised to N
    clients: the first half of client *i* goes to group *i*, the second half
    to group *i+1* (mod N).
    """

    def build(self, client_objects: ClientObjects) -> DiskGroupLayout:
        self._validate(client_objects)
        clients = list(client_objects)
        num_groups = len(clients)
        assignment: Dict[str, int] = {}
        for position, client in enumerate(clients):
            objects = list(client_objects[client])
            half = (len(objects) + 1) // 2
            first_half, second_half = objects[:half], objects[half:]
            for key in first_half:
                assignment[key] = position
            for key in second_half:
                assignment[key] = (position + 1) % num_groups
        return DiskGroupLayout(assignment)


class RoundRobinObjectLayout(LayoutPolicy):
    """Spread each client's objects round-robin over ``num_groups`` groups.

    Not part of the paper's figures; models a storage service that stripes
    incoming data for load balancing, the worst case for a layout-oblivious
    engine.
    """

    def __init__(self, num_groups: int) -> None:
        if num_groups <= 0:
            raise LayoutError("num_groups must be positive")
        self.num_groups = num_groups

    def build(self, client_objects: ClientObjects) -> DiskGroupLayout:
        self._validate(client_objects)
        assignment: Dict[str, int] = {}
        for objects in client_objects.values():
            for index, key in enumerate(objects):
                assignment[key] = index % self.num_groups
        return DiskGroupLayout(assignment)


class SkewedLayout(LayoutPolicy):
    """The skewed layout of the fairness experiment (Section 5.2.5).

    ``clients_per_group`` lists how many clients go into each successive
    group; the paper uses ``[2, 2, 1]`` for five clients (two groups with two
    clients each, one group with a single client).
    """

    def __init__(self, clients_per_group: Sequence[int]) -> None:
        if not clients_per_group or any(count <= 0 for count in clients_per_group):
            raise LayoutError("clients_per_group must be a list of positive counts")
        self.clients_per_group = list(clients_per_group)

    def build(self, client_objects: ClientObjects) -> DiskGroupLayout:
        self._validate(client_objects)
        clients = list(client_objects)
        if sum(self.clients_per_group) != len(clients):
            raise LayoutError(
                f"clients_per_group {self.clients_per_group} does not cover "
                f"{len(clients)} clients"
            )
        assignment: Dict[str, int] = {}
        cursor = 0
        for group, count in enumerate(self.clients_per_group):
            for client in clients[cursor : cursor + count]:
                for key in client_objects[client]:
                    assignment[key] = group
            cursor += count
        return DiskGroupLayout(assignment)


class TenantColocatedLayout(LayoutPolicy):
    """Placement-aware layout: each tenant's shard lives in one disk group.

    In fleet mode the router builds one layout *per device* over that
    device's placement subset; this policy co-locates everything a tenant
    stores on a device inside a single disk group, so a tenant's shard never
    pays intra-device group switches against itself.  When rebalancing later
    migrates more of the tenant's keys onto the device they join the
    tenant's existing group (see :func:`extend_layout_with_keys`), keeping
    the co-location guarantee across epochs.
    """

    def build(self, client_objects: ClientObjects) -> DiskGroupLayout:
        self._validate(client_objects)
        assignment: Dict[str, int] = {}
        for position, (client, objects) in enumerate(client_objects.items()):
            for key in objects:
                assignment[key] = position
        return DiskGroupLayout(assignment)


def extend_layout_with_keys(layout: DiskGroupLayout, keys: Iterable[str]) -> List[int]:
    """Home migrated ``keys`` on a device's existing layout (in given order).

    The rule every layout shares under rebalancing: a key joins the lowest
    disk group already holding its tenant's objects on this device; a tenant
    new to the device opens a fresh group (keys of the same tenant within
    one call stay together).  Returns the group chosen for each key.
    """
    groups: List[int] = []
    # One scan up front instead of re-scanning the layout per key, so a
    # rebalance of M keys onto a K-key device costs O(M + K), not O(M·K).
    group_by_tenant = layout.tenant_group_map()
    next_fresh = layout.max_group_id + 1
    for key in keys:
        tenant, _segment = split_object_key(key)
        group = group_by_tenant.get(tenant)
        if group is None:
            group = next_fresh
            group_by_tenant[tenant] = group
            next_fresh += 1
        layout.add_object(key, group)
        groups.append(group)
    return groups


class CustomLayout(LayoutPolicy):
    """Explicit object-to-group mapping, e.g. the paper's Table 2 example."""

    def __init__(self, assignment: Mapping[str, int]) -> None:
        if not assignment:
            raise LayoutError("custom layout requires an explicit assignment")
        self.assignment = dict(assignment)

    def build(self, client_objects: ClientObjects) -> DiskGroupLayout:
        self._validate(client_objects)
        missing: List[str] = []
        for objects in client_objects.values():
            for key in objects:
                if key not in self.assignment:
                    missing.append(key)
        if missing:
            raise LayoutError(f"custom layout does not place objects: {sorted(missing)[:5]}")
        return DiskGroupLayout(self.assignment)
