"""CSD I/O schedulers.

The scheduler decides (1) which disk group to load next, (2) when to switch
(all schedulers here are non-preemptive: a loaded group is drained before
switching, except strict object-FCFS which follows arrival order exactly),
and (3) the order in which objects of the loaded group are returned
(delegated to an :class:`~repro.csd.ordering.IntraGroupOrdering`).

Implemented policies:

* :class:`ObjectFCFSScheduler` — what an off-the-shelf CSD does: requests are
  served strictly in arrival order, oblivious to queries.  This is the
  scheduler behind the vanilla "PostgreSQL-on-CSD" results.
* :class:`QueryFCFSScheduler` — fairness-first: queries are served one at a
  time in arrival order ("fairness" in Figure 12).
* :class:`MaxQueriesScheduler` — efficiency-first: always switch to the group
  with the largest number of queries having pending data ("maxquery").
* :class:`RankBasedScheduler` — the paper's contribution: rank
  ``R(g) = N_g + K * Σ W_q(g)`` balances efficiency and fairness
  ("ranking", K = 1).
"""

from __future__ import annotations

from collections import defaultdict, deque
from heapq import heappop, heappush
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.csd.ordering import ArrivalOrdering, IntraGroupOrdering, SemanticRoundRobinOrdering
from repro.csd.request import GetRequest
from repro.exceptions import SchedulingError


class IOScheduler:
    """Base class holding the pending-request pool and fairness counters."""

    #: Human-readable policy name (used in experiment reports).
    name = "base"

    def __init__(self, ordering: Optional[IntraGroupOrdering] = None) -> None:
        self.ordering = ordering or SemanticRoundRobinOrdering()
        #: Pending pool per group, keyed by the globally unique request id.
        #: Dicts preserve insertion (arrival) order like the lists they
        #: replaced, but removal by id is O(1) instead of an O(n) scan —
        #: the difference between seconds and minutes at million-request
        #: scale, with identical iteration order everywhere.
        self._pending: Dict[int, Dict[int, GetRequest]] = defaultdict(dict)
        self._queues: Dict[int, Deque[GetRequest]] = {}
        self._dirty: Set[int] = set()
        #: group -> query id -> number of pending requests.  Maintained
        #: incrementally so queries_on_group / pending_queries are O(distinct
        #: queries) instead of a scan over every pending request — the
        #: difference between constant- and linear-cost group switches when a
        #: million requests are queued.
        self._group_queries: Dict[int, Dict[str, int]] = defaultdict(dict)
        #: query id -> total pending requests across all groups.
        self._query_pending: Dict[str, int] = {}
        #: Number of group switches since each query was last serviced.
        self._waiting: Dict[str, int] = {}
        #: Request id of the first request ever seen per query (arrival order).
        self._query_arrival: Dict[str, int] = {}
        self.num_switches = 0
        #: Largest waiting counter any query ever reached (starvation gauge:
        #: the invariant checker bounds this for the rank-based policy).
        self.max_waiting_seen = 0

    # ------------------------------------------------------------------ #
    # Request pool management
    # ------------------------------------------------------------------ #
    def add_request(self, request: GetRequest, group_id: int) -> None:
        """Register a pending request located on ``group_id``."""
        query_id = request.query_id
        self._pending[group_id][request.request_id] = request
        self._dirty.add(group_id)
        group_queries = self._group_queries[group_id]
        group_queries[query_id] = group_queries.get(query_id, 0) + 1
        self._query_pending[query_id] = self._query_pending.get(query_id, 0) + 1
        self._waiting.setdefault(query_id, 0)
        self._query_arrival.setdefault(query_id, request.request_id)

    def _note_removed(self, request: GetRequest, group_id: int) -> None:
        """Maintain the query-count indexes after a request leaves the pool."""
        query_id = request.query_id
        group_queries = self._group_queries[group_id]
        remaining = group_queries[query_id] - 1
        if remaining:
            group_queries[query_id] = remaining
        else:
            del group_queries[query_id]
        total = self._query_pending[query_id] - 1
        if total:
            self._query_pending[query_id] = total
        else:
            del self._query_pending[query_id]

    def has_pending(self) -> bool:
        """Whether any request is waiting to be served."""
        return any(self._pending.values())

    def pending_groups(self) -> List[int]:
        """Groups that currently have pending requests (sorted)."""
        return sorted(group for group, requests in self._pending.items() if requests)

    def pending_count(self, group_id: Optional[int] = None) -> int:
        """Number of pending requests, optionally restricted to one group."""
        if group_id is None:
            return sum(len(requests) for requests in self._pending.values())
        return len(self._pending.get(group_id, ()))

    def queries_on_group(self, group_id: int) -> Set[str]:
        """Distinct query identifiers with pending data on ``group_id``."""
        counts = self._group_queries.get(group_id)
        if not counts:
            return set()
        return set(counts)

    def pending_queries(self) -> Set[str]:
        """Distinct query identifiers with any pending request."""
        return set(self._query_pending)

    def waiting_time(self, query_id: str) -> int:
        """Group switches since ``query_id`` was last serviced."""
        return self._waiting.get(query_id, 0)

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def next_request(self, group_id: int) -> Optional[GetRequest]:
        """Pop the next request to serve from ``group_id``."""
        pending = self._pending.get(group_id)
        if not pending:
            return None
        if group_id in self._dirty or not self._queues.get(group_id):
            self._queues[group_id] = deque(self.ordering.order(list(pending.values())))
            self._dirty.discard(group_id)
        request = self._queues[group_id].popleft()
        del pending[request.request_id]
        self._note_removed(request, group_id)
        return request

    def notify_switch(self, new_group: int) -> None:
        """Record a group switch and update per-query waiting times.

        Queries with pending data on the newly loaded group are (about to be)
        serviced, so their waiting time resets to zero; every other pending
        query has waited one more switch.
        """
        self.num_switches += 1
        serviced = self.queries_on_group(new_group)
        for query_id in self.pending_queries():
            if query_id in serviced:
                self._waiting[query_id] = 0
            else:
                waited = self._waiting.get(query_id, 0) + 1
                self._waiting[query_id] = waited
                if waited > self.max_waiting_seen:
                    self.max_waiting_seen = waited

    # ------------------------------------------------------------------ #
    # Policy hooks
    # ------------------------------------------------------------------ #
    def choose_next_group(self, current_group: Optional[int]) -> int:
        """Pick the group to load next (current group may be returned)."""
        raise NotImplementedError

    def service_quota(self, group_id: int) -> int:
        """How many requests to serve from ``group_id`` before re-deciding.

        The query-aware policies are non-preemptive: once a group is loaded,
        every request that was pending on it at decision time is served
        before the policy is consulted again (requests arriving later compete
        in the next decision, which is what lets the rank-based policy avoid
        starving other tenants).  The FCFS policies re-decide after every
        object.
        """
        return max(1, self.pending_count(group_id))


class _ArrivalIndexedScheduler(IOScheduler):
    """Base for the FCFS-family policies: incremental arrival-order index.

    The FCFS policies re-decide after every served object (or a small slack
    batch of them), and every decision needs the globally oldest pending
    request.  Recomputing that with a scan over the pool is O(pending) per
    decision — quadratic over a request burst, and the dominant cost of the
    vanilla/firmware baselines at million-request scale.  Instead, keep a
    min-heap of ``(request_id, group_id)`` pairs pushed on arrival and
    validated lazily when consulted: entries whose request has already left
    the pool (served, or drained to another device on failover) are
    discarded as they surface.  Each entry is pushed and popped at most
    once, so a decision costs O(log pending) amortised while choosing the
    exact same group as the scan (request ids are unique, so there are no
    ties to break).
    """

    def __init__(self, ordering: Optional[IntraGroupOrdering] = None) -> None:
        super().__init__(ordering=ordering or ArrivalOrdering())
        self._arrival_heap: List[Tuple[int, int]] = []

    def add_request(self, request: GetRequest, group_id: int) -> None:
        super().add_request(request, group_id)
        heappush(self._arrival_heap, (request.request_id, group_id))

    def _oldest_group(self) -> int:
        """Group of the oldest pending request (lazy-validated heap top)."""
        heap = self._arrival_heap
        pending = self._pending
        while heap:
            request_id, group_id = heap[0]
            requests = pending.get(group_id)
            if requests is not None and request_id in requests:
                return group_id
            heappop(heap)
        raise SchedulingError("choose_next_group called with no pending requests")


class ObjectFCFSScheduler(_ArrivalIndexedScheduler):
    """Strict first-come-first-served at object granularity.

    Models the behaviour of current CSD (and the paper's vanilla baseline):
    the oldest outstanding GET is always served next, regardless of which
    group it lives on, so interleaved clients force a group switch per
    object.
    """

    name = "object-fcfs"

    def service_quota(self, group_id: int) -> int:
        return 1

    def choose_next_group(self, current_group: Optional[int]) -> int:
        return self._oldest_group()


class SlackFCFSScheduler(_ArrivalIndexedScheduler):
    """Object FCFS with a reordering slack (what shipping CSD firmware does).

    The paper notes that current CSD schedule requests in FCFS order "with
    some parameterized slack that occasionally violates the strict FCFS
    ordering by reordering and grouping requests on the same disk group to
    improve performance".  This policy loads the group of the oldest
    outstanding request (FCFS at the head of the queue) but is then allowed
    to serve up to ``slack`` requests from that group — regardless of their
    position in the arrival order — before re-considering.  ``slack=1``
    degenerates to strict object FCFS; a large slack approaches group-at-a-
    time service without any query awareness.
    """

    name = "slack-fcfs"

    def __init__(self, slack: int = 8) -> None:
        super().__init__()
        if slack < 1:
            raise SchedulingError("slack must be at least 1")
        self.slack = slack

    def service_quota(self, group_id: int) -> int:
        return min(self.slack, max(1, self.pending_count(group_id)))

    def choose_next_group(self, current_group: Optional[int]) -> int:
        return self._oldest_group()


class QueryFCFSScheduler(IOScheduler):
    """First-come-first-served at query granularity (the "fairness" policy).

    The query whose first pending request arrived earliest is serviced to
    completion before any other query is considered; its objects are fetched
    group by group in the order the query requested them.  Fair, but it
    cannot merge requests of different queries that share a group, so it
    performs more switches than the query-aware policies.
    """

    name = "query-fcfs"

    def service_quota(self, group_id: int) -> int:
        return 1

    def _oldest_query(self) -> str:
        """The pending query whose *first* request arrived earliest."""
        pending = self.pending_queries()
        if not pending:
            raise SchedulingError("no pending requests")
        return min(pending, key=lambda query_id: self._query_arrival.get(query_id, 0))

    def choose_next_group(self, current_group: Optional[int]) -> int:
        query = self._oldest_query()
        best_group: Optional[int] = None
        best_request_id: Optional[int] = None
        for group, requests in self._pending.items():
            for request in requests.values():
                if request.query_id != query:
                    continue
                if best_request_id is None or request.request_id < best_request_id:
                    best_request_id = request.request_id
                    best_group = group
        if best_group is None:  # pragma: no cover - defensive
            raise SchedulingError("oldest query has no pending requests")
        return best_group

    def next_request(self, group_id: int) -> Optional[GetRequest]:
        """Serve only requests belonging to the oldest pending query."""
        pending = self._pending.get(group_id)
        if not pending:
            return None
        query = self._oldest_query()
        candidates = [
            request for request in pending.values() if request.query_id == query
        ]
        if not candidates:
            return None
        ordered = self.ordering.order(candidates)
        request = ordered[0]
        del pending[request.request_id]
        self._note_removed(request, group_id)
        self._dirty.add(group_id)
        return request


class MaxQueriesScheduler(IOScheduler):
    """Always switch to the group with the most queries having pending data.

    This is the efficiency-optimal policy adapted from tertiary-storage
    scheduling (within 2% of optimal for minimising switches) but it can
    starve queries on unpopular groups.
    """

    name = "max-queries"

    def choose_next_group(self, current_group: Optional[int]) -> int:
        groups = self.pending_groups()
        if not groups:
            raise SchedulingError("choose_next_group called with no pending requests")
        return max(groups, key=lambda group: (len(self.queries_on_group(group)), -group))


class RankBasedScheduler(IOScheduler):
    """The paper's rank-based, query-aware scheduler.

    ``R(g) = N_g + K * Σ_{q on g} W_q(g)`` where ``N_g`` is the number of
    queries with pending data on ``g`` and ``W_q`` the number of switches
    since query ``q`` was last serviced.  ``K = 1`` maximises fairness while
    preserving the Max-Queries behaviour whenever queue lengths differ by
    more than the accumulated waiting time.
    """

    name = "rank-based"

    def __init__(self, fairness_constant: float = 1.0,
                 ordering: Optional[IntraGroupOrdering] = None) -> None:
        super().__init__(ordering=ordering)
        if fairness_constant < 0:
            raise SchedulingError("fairness constant K must be non-negative")
        self.fairness_constant = fairness_constant

    def rank(self, group_id: int) -> float:
        """Current rank of ``group_id``."""
        counts = self._group_queries.get(group_id)
        if not counts:
            return 0.0
        waiting = self._waiting
        waiting_sum = sum(waiting.get(query_id, 0) for query_id in counts)
        return len(counts) + self.fairness_constant * waiting_sum

    def choose_next_group(self, current_group: Optional[int]) -> int:
        groups = self.pending_groups()
        if not groups:
            raise SchedulingError("choose_next_group called with no pending requests")
        group_queries = self._group_queries
        return max(
            groups,
            key=lambda group: (
                self.rank(group),
                len(group_queries.get(group) or ()),
                -group,
            ),
        )
