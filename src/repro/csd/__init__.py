"""Cold Storage Device substrate.

This package emulates the storage side of the paper's testbed: an OpenStack
Swift object store extended with a MAID middleware that groups disks into
*disk groups*, keeps only one group spun up at a time, and charges a group
switch latency whenever a request targets a different group.

Components:

* :mod:`repro.csd.object_store` — a Swift-like key/value blob store holding
  one object per relation segment, namespaced per tenant.
* :mod:`repro.csd.disk_group` — disk groups and the layout mapping objects to
  groups.
* :mod:`repro.csd.layout` — the layout policies used in the paper's
  sensitivity study (all-in-one, N clients per group, incremental) plus a
  custom mapping for ad-hoc experiments.
* :mod:`repro.csd.request` — GET requests tagged with client and query
  identifiers (the paper's "semantic" tagging by the client proxy).
* :mod:`repro.csd.scheduler` — the I/O schedulers compared in the paper:
  object-FCFS (what off-the-shelf CSD do), query-FCFS, Max-Queries and the
  rank-based query-aware scheduler Skipper introduces.
* :mod:`repro.csd.ordering` — intra-group object orderings (semantically
  smart round-robin across relations vs. table-major vs. arrival order).
* :mod:`repro.csd.device` — the simulated device itself: a process that
  performs group switches, transfers objects and records busy intervals for
  the metrics layer.
"""

from repro.csd.backend import StorageBackend
from repro.csd.request import GetRequest
from repro.csd.object_store import ObjectStore
from repro.csd.disk_group import DiskGroupLayout
from repro.csd.layout import (
    AllInOneLayout,
    ClientsPerGroupLayout,
    CustomLayout,
    IncrementalLayout,
    LayoutPolicy,
    RoundRobinObjectLayout,
    SkewedLayout,
)
from repro.csd.ordering import (
    ArrivalOrdering,
    IntraGroupOrdering,
    SemanticRoundRobinOrdering,
    TableMajorOrdering,
)
from repro.csd.scheduler import (
    IOScheduler,
    MaxQueriesScheduler,
    ObjectFCFSScheduler,
    QueryFCFSScheduler,
    RankBasedScheduler,
    SlackFCFSScheduler,
)
from repro.csd.device import ColdStorageDevice, DeviceConfig

__all__ = [
    "AllInOneLayout",
    "ArrivalOrdering",
    "ClientsPerGroupLayout",
    "ColdStorageDevice",
    "CustomLayout",
    "DeviceConfig",
    "DiskGroupLayout",
    "GetRequest",
    "IOScheduler",
    "IncrementalLayout",
    "IntraGroupOrdering",
    "LayoutPolicy",
    "MaxQueriesScheduler",
    "ObjectFCFSScheduler",
    "ObjectStore",
    "QueryFCFSScheduler",
    "RankBasedScheduler",
    "RoundRobinObjectLayout",
    "SemanticRoundRobinOrdering",
    "SkewedLayout",
    "SlackFCFSScheduler",
    "StorageBackend",
    "TableMajorOrdering",
]
