"""Swift-like object store.

Objects are stored under string keys of the form ``tenant/table.segment``
(the tenant prefix plays the role of a Swift account/container, the rest is
the object name).  Payloads are arbitrary Python objects — in practice
:class:`~repro.engine.relation.Segment` instances.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.exceptions import StorageError


def make_object_key(tenant: str, segment_id: str) -> str:
    """Build the store key for ``segment_id`` owned by ``tenant``."""
    if not tenant or "/" in tenant:
        raise StorageError(f"invalid tenant name: {tenant!r}")
    return f"{tenant}/{segment_id}"


def split_object_key(object_key: str) -> tuple[str, str]:
    """Split a store key into ``(tenant, segment_id)``."""
    tenant, sep, segment_id = object_key.partition("/")
    if not sep or not tenant or not segment_id:
        raise StorageError(f"malformed object key: {object_key!r}")
    return tenant, segment_id


class ObjectStore:
    """In-memory blob store with per-tenant namespaces."""

    def __init__(self) -> None:
        self._objects: Dict[str, object] = {}

    def put(self, object_key: str, payload: object) -> None:
        """Store ``payload`` under ``object_key`` (overwrites are rejected)."""
        split_object_key(object_key)
        if object_key in self._objects:
            raise StorageError(f"object {object_key!r} already exists")
        self._objects[object_key] = payload

    def put_segment(self, tenant: str, segment_id: str, payload: object) -> str:
        """Store ``payload`` for ``tenant`` and return the generated key."""
        key = make_object_key(tenant, segment_id)
        self.put(key, payload)
        return key

    def get(self, object_key: str) -> object:
        """Return the payload stored under ``object_key``."""
        try:
            return self._objects[object_key]
        except KeyError:
            raise StorageError(f"object not found: {object_key!r}") from None

    def exists(self, object_key: str) -> bool:
        """Whether an object is stored under ``object_key``."""
        return object_key in self._objects

    def delete(self, object_key: str) -> None:
        """Remove the object stored under ``object_key``."""
        if object_key not in self._objects:
            raise StorageError(f"object not found: {object_key!r}")
        del self._objects[object_key]

    def keys(self, tenant: Optional[str] = None) -> List[str]:
        """All object keys, optionally restricted to one tenant."""
        if tenant is None:
            return list(self._objects)
        prefix = f"{tenant}/"
        return [key for key in self._objects if key.startswith(prefix)]

    def tenants(self) -> List[str]:
        """Distinct tenant prefixes present in the store."""
        seen: List[str] = []
        for key in self._objects:
            tenant, _ = split_object_key(key)
            if tenant not in seen:
                seen.append(tenant)
        return seen

    def load_tenant(self, tenant: str, segments: Iterable) -> List[str]:
        """Store every segment of an iterable of segments for ``tenant``."""
        keys = []
        for segment in segments:
            keys.append(self.put_segment(tenant, segment.segment_id, segment))
        return keys

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, object_key: object) -> bool:
        return isinstance(object_key, str) and object_key in self._objects
