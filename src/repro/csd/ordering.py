"""Intra-group request orderings.

Once the CSD has switched to a disk group it must decide in which order to
return the objects requested on that group.  The paper shows that a
"semantically smart" order — satisfying requests evenly across the relations
of each query — lets the cache-constrained MJoin make progress with far fewer
re-issues than returning one table at a time.
"""

from __future__ import annotations

from collections import OrderedDict, defaultdict
from typing import Dict, List, Sequence

from repro.csd.request import GetRequest


class IntraGroupOrdering:
    """Base class: order the pending requests of one disk group."""

    def order(self, requests: Sequence[GetRequest]) -> List[GetRequest]:
        """Return ``requests`` in service order (a new list)."""
        raise NotImplementedError


class ArrivalOrdering(IntraGroupOrdering):
    """Serve requests in the order they arrived (FCFS within the group)."""

    def order(self, requests: Sequence[GetRequest]) -> List[GetRequest]:
        return sorted(requests, key=lambda request: request.request_id)


class TableMajorOrdering(IntraGroupOrdering):
    """Serve all objects of one table before moving to the next table.

    This is the adversarial ordering discussed in Section 4.4: a
    cache-constrained MJoin cannot make progress with objects of a single
    relation, so it maximises re-issues.
    """

    def order(self, requests: Sequence[GetRequest]) -> List[GetRequest]:
        return sorted(
            requests,
            key=lambda request: (
                request.query_id,
                request.table_name,
                request.segment_index,
                request.request_id,
            ),
        )


class SemanticRoundRobinOrdering(IntraGroupOrdering):
    """The paper's semantically-smart ordering.

    Within each query, requests are interleaved round-robin across that
    query's relations (A.1, B.1, C.1, A.2, B.2, C.2, …).  Across queries the
    scheduler then interleaves one object per query per turn so that no
    tenant waits for another tenant's full dataset.
    """

    def order(self, requests: Sequence[GetRequest]) -> List[GetRequest]:
        per_query: OrderedDict[str, List[GetRequest]] = OrderedDict()
        for request in sorted(requests, key=lambda request: request.request_id):
            per_query.setdefault(request.query_id, []).append(request)

        interleaved_per_query: Dict[str, List[GetRequest]] = {}
        for query_id, query_requests in per_query.items():
            per_table: OrderedDict[str, List[GetRequest]] = OrderedDict()
            for request in query_requests:
                per_table.setdefault(request.table_name, []).append(request)
            for table_requests in per_table.values():
                table_requests.sort(key=lambda request: (request.segment_index, request.request_id))
            interleaved: List[GetRequest] = []
            cursors = {table: 0 for table in per_table}
            remaining = len(query_requests)
            while remaining:
                for table, table_requests in per_table.items():
                    cursor = cursors[table]
                    if cursor < len(table_requests):
                        interleaved.append(table_requests[cursor])
                        cursors[table] = cursor + 1
                        remaining -= 1
            interleaved_per_query[query_id] = interleaved

        result: List[GetRequest] = []
        cursors = {query_id: 0 for query_id in interleaved_per_query}
        remaining = sum(len(items) for items in interleaved_per_query.values())
        while remaining:
            for query_id, items in interleaved_per_query.items():
                cursor = cursors[query_id]
                if cursor < len(items):
                    result.append(items[cursor])
                    cursors[query_id] = cursor + 1
                    remaining -= 1
        return result
