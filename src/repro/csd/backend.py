"""The storage-backend interface clients program against.

Executors and client proxies never care whether their GETs land on the
single shared :class:`~repro.csd.device.ColdStorageDevice` of the paper's
testbed or on a sharded :class:`~repro.fleet.router.FleetRouter` — both
expose the same two entry points.  The protocol below captures that contract
so the client layers can be typed against the interface instead of one
concrete device class.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover
    from repro.csd.request import GetRequest
    from repro.sim import Environment


@runtime_checkable
class StorageBackend(Protocol):
    """Anything able to accept tagged GET requests and complete them."""

    env: Environment

    def submit(self, request: GetRequest) -> GetRequest:
        """Accept a request; its ``completion`` event fires with the payload."""
        ...

    def get(self, object_key: str, client_id: str, query_id: str) -> GetRequest:
        """Build and submit a request for ``object_key``."""
        ...
