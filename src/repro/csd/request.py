"""Object GET requests and migration jobs.

Each GET request is tagged with the issuing client and a query identifier —
the "semantic information" the Skipper client proxy attaches so the CSD
scheduler can reason about whole queries instead of isolated objects.
:class:`MigrationJob` is the other kind of work a device performs: bulk
object copies charged by the fleet router while it rebalances after a
membership change.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable, Optional

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import Event

_request_counter = itertools.count()


class MigrationJob:
    """One unit of rebalancing I/O: read or write of a migrating object.

    Jobs are injected through the device inbox like GET requests but bypass
    the query scheduler: the device performs them with priority over
    foreground work (the window during which foreground requests were held
    up is reported as migration interference).
    """

    __slots__ = ("object_key", "direction", "seconds", "epoch", "reason", "notify")

    #: Why the copy happens: a membership rebalance (join/leave), read-repair
    #: after a fail-stop loss, write-path re-replication (R raised), or a
    #: feedback-driven placement reweight.
    KNOWN_REASONS = ("rebalance", "repair", "replicate", "reweight")

    def __init__(
        self,
        object_key: str,
        direction: str,
        seconds: float,
        epoch: int,
        reason: str = "rebalance",
        notify: Optional[Callable[[MigrationJob, float, float, bool], None]] = None,
    ) -> None:
        if direction not in ("read", "write"):
            raise ConfigurationError(
                f"migration direction must be read/write, got {direction!r}"
            )
        if reason not in self.KNOWN_REASONS:
            raise ConfigurationError(
                f"migration reason must be one of {self.KNOWN_REASONS}, got {reason!r}"
            )
        self.object_key = object_key
        self.direction = direction
        self.seconds = seconds
        self.epoch = epoch
        self.reason = reason
        #: Called by the device as ``notify(job, start, end, interfered)``.
        self.notify = notify

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MigrationJob {self.reason} {self.direction} {self.object_key} "
            f"epoch={self.epoch} seconds={self.seconds}>"
        )


class GetRequest:
    """A single object GET issued by a database client."""

    __slots__ = (
        "request_id",
        "object_key",
        "client_id",
        "query_id",
        "completion",
        "issue_time",
        "group_id",
        "complete_time",
        "disk_group",
        "owner",
        "routed_at",
    )

    def __init__(
        self,
        object_key: str,
        client_id: str,
        query_id: str,
        completion: Event,
        issue_time: float = 0.0,
    ) -> None:
        self.request_id = next(_request_counter)
        self.object_key = object_key
        self.client_id = client_id
        self.query_id = query_id
        self.completion = completion
        self.issue_time = issue_time
        #: Filled in by the device when the request is served.
        self.group_id: Optional[int] = None
        self.complete_time: Optional[float] = None
        #: Disk group resolved at submit time (device-internal; the layout
        #: is append-only, so a placed key's group never changes).
        self.disk_group: Optional[int] = None
        #: Fleet member currently serving the request (router-internal);
        #: storing it here avoids a million-entry owner dict in the router.
        self.owner: Optional[object] = None
        #: Simulated time the router last dispatched the request (re-stamped
        #: on failover); completion minus this feeds the per-device latency
        #: EWMA behind adaptive routing.
        self.routed_at: Optional[float] = None

    @property
    def table_name(self) -> str:
        """Table encoded in the object key (``tenant/table.index`` or ``table.index``)."""
        _tenant, _, local = self.object_key.rpartition("/")
        table, _, _index = local.rpartition(".")
        return table

    @property
    def segment_index(self) -> int:
        """Segment index encoded in the object key."""
        _tenant, _, local = self.object_key.rpartition("/")
        _table, _, index = local.rpartition(".")
        return int(index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<GetRequest #{self.request_id} {self.object_key} "
            f"client={self.client_id} query={self.query_id}>"
        )
