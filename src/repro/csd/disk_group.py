"""Disk groups and the object-to-group mapping."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Set

from repro.exceptions import LayoutError


class DiskGroupLayout:
    """Immutable mapping from object keys to disk-group identifiers.

    The CSD middleware in the paper keeps exactly this metadata: which group
    each stored object lives on.  Group identifiers are small integers.
    """

    def __init__(self, assignment: Mapping[str, int]) -> None:
        if not assignment:
            raise LayoutError("layout must place at least one object")
        for key, group in assignment.items():
            if group < 0:
                raise LayoutError(f"object {key!r} assigned to negative group {group}")
        self._assignment: Dict[str, int] = dict(assignment)
        self._groups: Dict[int, Set[str]] = {}
        for key, group in self._assignment.items():
            self._groups.setdefault(group, set()).add(key)

    @property
    def num_groups(self) -> int:
        """Number of distinct disk groups used by the layout."""
        return len(self._groups)

    @property
    def group_ids(self) -> List[int]:
        """Sorted list of group identifiers."""
        return sorted(self._groups)

    def group_of(self, object_key: str) -> int:
        """Group holding ``object_key``."""
        try:
            return self._assignment[object_key]
        except KeyError:
            raise LayoutError(f"object {object_key!r} is not placed by this layout") from None

    def objects_in_group(self, group_id: int) -> Set[str]:
        """All object keys stored in ``group_id``."""
        if group_id not in self._groups:
            raise LayoutError(f"unknown disk group: {group_id}")
        return set(self._groups[group_id])

    def has_object(self, object_key: str) -> bool:
        """Whether the layout places ``object_key``."""
        return object_key in self._assignment

    def groups_of(self, object_keys: Iterable[str]) -> Set[int]:
        """Set of groups covering ``object_keys``."""
        return {self.group_of(key) for key in object_keys}

    def as_dict(self) -> Dict[str, int]:
        """Copy of the underlying object → group mapping."""
        return dict(self._assignment)

    def __len__(self) -> int:
        return len(self._assignment)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DiskGroupLayout objects={len(self._assignment)} groups={self.num_groups}>"
