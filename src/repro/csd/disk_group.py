"""Disk groups and the object-to-group mapping."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set

from repro.exceptions import LayoutError


class DiskGroupLayout:
    """Mapping from object keys to disk-group identifiers.

    The CSD middleware in the paper keeps exactly this metadata: which group
    each stored object lives on.  Group identifiers are small integers.  The
    mapping is append-only: rebalancing may :meth:`add_object` keys migrated
    onto the device mid-run, but an object is never re-homed or removed.
    """

    def __init__(self, assignment: Mapping[str, int]) -> None:
        if not assignment:
            raise LayoutError("layout must place at least one object")
        for key, group in assignment.items():
            if group < 0:
                raise LayoutError(f"object {key!r} assigned to negative group {group}")
        self._assignment: Dict[str, int] = dict(assignment)
        self._groups: Dict[int, Set[str]] = {}
        for key, group in self._assignment.items():
            self._groups.setdefault(group, set()).add(key)

    @property
    def num_groups(self) -> int:
        """Number of distinct disk groups used by the layout."""
        return len(self._groups)

    @property
    def group_ids(self) -> List[int]:
        """Sorted list of group identifiers."""
        return sorted(self._groups)

    @property
    def max_group_id(self) -> int:
        """Largest group identifier in use."""
        return max(self._groups)

    def add_object(self, object_key: str, group_id: int) -> None:
        """Place a new object into ``group_id`` (used by fleet rebalancing).

        Existing objects cannot be re-homed; migrating a key onto a device
        that already holds it is a layout bug upstream.
        """
        if group_id < 0:
            raise LayoutError(f"object {object_key!r} assigned to negative group {group_id}")
        if object_key in self._assignment:
            raise LayoutError(f"object {object_key!r} is already placed by this layout")
        self._assignment[object_key] = group_id
        self._groups.setdefault(group_id, set()).add(object_key)

    def tenant_group_map(self) -> Dict[str, int]:
        """Lowest group id per tenant prefix, in one scan of the layout."""
        lowest: Dict[str, int] = {}
        for key, group in self._assignment.items():
            tenant, separator, _rest = key.partition("/")
            if not separator:
                continue
            current = lowest.get(tenant)
            if current is None or group < current:
                lowest[tenant] = group
        return lowest

    def group_of(self, object_key: str) -> int:
        """Group holding ``object_key``."""
        try:
            return self._assignment[object_key]
        except KeyError:
            raise LayoutError(f"object {object_key!r} is not placed by this layout") from None

    def group_if_placed(self, object_key: str) -> Optional[int]:
        """Group holding ``object_key``, or ``None`` if it is not placed.

        One dict probe doing the work of ``has_object`` + ``group_of`` —
        the device submit path runs this for every incoming request.
        """
        return self._assignment.get(object_key)

    def objects_in_group(self, group_id: int) -> Set[str]:
        """All object keys stored in ``group_id``."""
        if group_id not in self._groups:
            raise LayoutError(f"unknown disk group: {group_id}")
        return set(self._groups[group_id])

    def has_object(self, object_key: str) -> bool:
        """Whether the layout places ``object_key``."""
        return object_key in self._assignment

    def groups_of(self, object_keys: Iterable[str]) -> Set[int]:
        """Set of groups covering ``object_keys``."""
        return {self.group_of(key) for key in object_keys}

    def as_dict(self) -> Dict[str, int]:
        """Copy of the underlying object → group mapping."""
        return dict(self._assignment)

    def __len__(self) -> int:
        return len(self._assignment)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DiskGroupLayout objects={len(self._assignment)} groups={self.num_groups}>"
