"""Skipper: cold-storage-aware query execution.

A reproduction of *"Cheap Data Analytics using Cold Storage Devices"*
(Borovica-Gajic, Appuswamy, Ailamaki -- VLDB 2016).

The package is organised as follows:

* :mod:`repro.sim` -- discrete-event simulation kernel (simulated time).
* :mod:`repro.engine` -- a small relational engine: schemas, segmented
  relations, predicates, operators, a left-deep planner and a cost model.
* :mod:`repro.csd` -- the Cold Storage Device substrate: object store, disk
  groups, layout policies, I/O schedulers and the device emulator.
* :mod:`repro.core` -- Skipper itself: subplan tracking, the bounded object
  cache with the maximal-progress eviction policy, the cache-aware MJoin
  state manager, the client proxy and the Skipper executor.
* :mod:`repro.vanilla` -- the pull-based baseline ("PostgreSQL on CSD").
* :mod:`repro.cluster` -- experiment configs, batch results and metrics.
* :mod:`repro.service` -- **the public query-service façade**: sessions,
  query handles and admission control over the storage substrate.
* :mod:`repro.fleet` -- sharded multi-device serving behind one interface.
* :mod:`repro.scenarios` -- declarative regression scenarios + goldens.
* :mod:`repro.workloads` -- TPC-H, SSB, analytics-benchmark and NREF-like
  synthetic workloads.
* :mod:`repro.tiering` -- the storage-tiering cost analysis.
* :mod:`repro.harness` -- one function per table/figure of the paper.

Quickstart (see :mod:`repro.service` for the session API)::

    from repro.service import experiments

    results = experiments.figure7_skipper_scaling(client_counts=(1, 3, 5), scale="small")
    print(results)
"""

from repro.exceptions import (
    AdmissionError,
    CacheError,
    CatalogError,
    ConfigurationError,
    ExecutionError,
    LayoutError,
    PlanningError,
    QueryError,
    ReproError,
    SchedulingError,
    SchemaError,
    ServiceError,
    SessionClosedError,
    SimulationError,
    StorageError,
)

__version__ = "1.1.0"

__all__ = [
    "AdmissionError",
    "CacheError",
    "CatalogError",
    "ConfigurationError",
    "ExecutionError",
    "LayoutError",
    "PlanningError",
    "QueryError",
    "ReproError",
    "SchedulingError",
    "SchemaError",
    "ServiceError",
    "SessionClosedError",
    "SimulationError",
    "StorageError",
    "__version__",
]
