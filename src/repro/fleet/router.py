"""The fleet router: one addressable storage service over N devices.

The router composes N independent :class:`~repro.csd.device.ColdStorageDevice`
instances — each with its own disk-group layout and its own I/O scheduler —
behind the exact ``submit()`` interface clients already speak, so executors
and client proxies are oblivious to whether they talk to one device or to a
sharded fleet.

Responsibilities:

* **Routing** — every GET is dispatched to one live replica of its object,
  chosen by the replica policy (primary-first or least-loaded).
* **Failover** — when a device fails (fail-stop at a scheduled time), the
  requests still queued on it are pulled back and re-routed to surviving
  replicas; nothing is lost as long as replication >= 2.
* **Aggregation** — per-device busy-interval streams are merged (ordered by
  completion) for the metrics layer, and per-device counters are combined
  into fleet-level statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.csd.device import BusyInterval, ColdStorageDevice, DeviceConfig, DeviceStats
from repro.csd.layout import LayoutPolicy
from repro.csd.object_store import ObjectStore, split_object_key
from repro.csd.request import GetRequest
from repro.csd.scheduler import IOScheduler
from repro.exceptions import FleetError
from repro.fleet.placement import build_placement
from repro.fleet.spec import DeviceFailure, FleetSpec
from repro.sim import Environment

SchedulerFactory = Callable[[], IOScheduler]


@dataclass
class FleetMember:
    """One device of the fleet plus the router's book-keeping about it."""

    device_id: str
    index: int
    #: ``None`` when the placement put no objects on this device (it then
    #: spins idle for the whole run but still appears in fleet metrics).
    device: Optional[ColdStorageDevice]
    object_keys: Tuple[str, ...]
    alive: bool = True
    failed_at: Optional[float] = None
    #: Requests routed to this device (including later failed-over ones).
    requests_routed: int = 0
    #: Routed but not yet completed (drives the least-loaded policy).
    outstanding: int = 0

    def busy_seconds(self) -> float:
        if self.device is None:
            return 0.0
        return sum(interval.duration for interval in self.device.busy_intervals)

    def objects_served(self) -> int:
        return self.device.stats.objects_served if self.device else 0

    def pending_requests(self) -> int:
        return self.device.scheduler.pending_count() if self.device else 0


@dataclass
class FleetRouterStats:
    """Fleet-wide counters maintained by the router."""

    requests_routed: int = 0
    failed_over: int = 0
    per_tenant_device_served: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def record_served(self, tenant: str, device_id: str) -> None:
        per_device = self.per_tenant_device_served.setdefault(tenant, {})
        per_device[device_id] = per_device.get(device_id, 0) + 1


class FleetRouter:
    """Dispatches GET requests across a sharded, replicated device fleet."""

    def __init__(
        self,
        env: Environment,
        object_store: ObjectStore,
        client_objects: Mapping[str, Sequence[str]],
        fleet_spec: FleetSpec,
        layout_policy: LayoutPolicy,
        scheduler_factory: SchedulerFactory,
        device_config: Optional[DeviceConfig] = None,
    ) -> None:
        self.env = env
        self.object_store = object_store
        self.spec = fleet_spec
        self.stats = FleetRouterStats()

        device_ids = list(fleet_spec.device_ids)
        all_keys = [key for keys in client_objects.values() for key in keys]
        policy = build_placement(
            fleet_spec.placement,
            fleet_spec.replication,
            virtual_nodes=fleet_spec.virtual_nodes,
        )
        #: object key -> replica device ids, primary first.
        self.placement: Dict[str, Tuple[str, ...]] = policy.place(all_keys, device_ids)

        self.members: List[FleetMember] = []
        self._member_by_id: Dict[str, FleetMember] = {}
        #: Member currently responsible for each in-flight request
        #: (re-pointed on failover, popped when the completion fires).
        self._owner_by_request: Dict[int, FleetMember] = {}
        for index, device_id in enumerate(device_ids):
            # Preserve each client's object order within the device so the
            # per-device disk-group layouts mirror the single-device ones.
            subset = {
                client: [
                    key for key in keys if device_id in self.placement[key]
                ]
                for client, keys in client_objects.items()
            }
            subset = {client: keys for client, keys in subset.items() if keys}
            device: Optional[ColdStorageDevice] = None
            member_keys: Tuple[str, ...] = tuple(
                key for keys in subset.values() for key in keys
            )
            if subset:
                device = ColdStorageDevice(
                    env=env,
                    object_store=object_store,
                    layout=layout_policy.build(subset),
                    scheduler=scheduler_factory(),
                    config=device_config,
                )
            member = FleetMember(
                device_id=device_id, index=index, device=device, object_keys=member_keys
            )
            self.members.append(member)
            self._member_by_id[device_id] = member

        for failure in fleet_spec.failures:
            env.process(
                self._fail_device(failure), name=f"fleet-failure:{failure.device}"
            )

    # ------------------------------------------------------------------ #
    # Client-facing API (same shape as ColdStorageDevice)
    # ------------------------------------------------------------------ #
    def submit(self, request: GetRequest) -> GetRequest:
        """Route ``request`` to a live replica of its object."""
        member = self._choose_replica(request.object_key)
        member.requests_routed += 1
        member.outstanding += 1
        self.stats.requests_routed += 1
        # One callback per request, however often it is re-routed; the owner
        # map points at whichever member is actually serving it now.
        if request.request_id not in self._owner_by_request:
            request.completion.add_callback(self._make_completion_callback(request))
        self._owner_by_request[request.request_id] = member
        member.device.submit(request)
        return request

    def get(self, object_key: str, client_id: str, query_id: str) -> GetRequest:
        """Convenience wrapper building and submitting a request."""
        request = GetRequest(
            object_key=object_key,
            client_id=client_id,
            query_id=query_id,
            completion=self.env.event(name=f"get:{object_key}"),
        )
        return self.submit(request)

    def _make_completion_callback(self, request: GetRequest):
        def _on_complete(_event) -> None:
            member = self._owner_by_request.pop(request.request_id)
            member.outstanding -= 1
            tenant, _segment = split_object_key(request.object_key)
            self.stats.record_served(tenant, member.device_id)

        return _on_complete

    def _choose_replica(self, object_key: str) -> FleetMember:
        try:
            replicas = self.placement[object_key]
        except KeyError:
            raise FleetError(f"object {object_key!r} is not placed on any device") from None
        live = [
            self._member_by_id[device_id]
            for device_id in replicas
            if self._member_by_id[device_id].alive
        ]
        if not live:
            raise FleetError(
                f"every replica of {object_key!r} is dead ({', '.join(replicas)})"
            )
        if self.spec.replica_policy == "least-loaded":
            # Replica order breaks ties, so equally loaded fleets behave
            # exactly like primary-first (deterministic either way).
            return min(live, key=lambda member: member.outstanding)
        return live[0]

    # ------------------------------------------------------------------ #
    # Failure handling
    # ------------------------------------------------------------------ #
    def _fail_device(self, failure: DeviceFailure):
        if failure.at_seconds > 0:
            yield self.env.timeout(failure.at_seconds)
        member = self.members[failure.device]
        member.alive = False
        member.failed_at = self.env.now
        device = member.device
        if device is None:
            return
        # Fail-stop at a request boundary: the transfer in flight (if any)
        # completes normally, everything still queued fails over.
        for request in device.drain_pending():
            member.outstanding -= 1
            self.stats.failed_over += 1
            self.submit(request)

    # ------------------------------------------------------------------ #
    # Aggregated views for the metrics / invariants layers
    # ------------------------------------------------------------------ #
    @property
    def busy_intervals(self) -> List[BusyInterval]:
        """All devices' busy intervals merged in completion order."""
        merged: List[BusyInterval] = []
        for member in self.members:
            if member.device is not None:
                merged.extend(member.device.busy_intervals)
        merged.sort(key=lambda interval: (interval.end, interval.start))
        return merged

    @property
    def device_stats(self) -> DeviceStats:
        """Fleet-wide counters in the single-device stats shape."""
        combined = DeviceStats()
        for member in self.members:
            if member.device is None:
                continue
            stats = member.device.stats
            combined.objects_served += stats.objects_served
            combined.group_switches += stats.group_switches
            combined.requests_received += stats.requests_received
            for client_id, count in stats.objects_per_client.items():
                combined.objects_per_client[client_id] = (
                    combined.objects_per_client.get(client_id, 0) + count
                )
        return combined

    def scheduler_switches(self) -> int:
        """Total scheduler-reported group switches across the fleet."""
        return sum(
            member.device.scheduler.num_switches
            for member in self.members
            if member.device is not None
        )

    def max_waiting_seen(self) -> int:
        """Worst per-query waiting counter reached on any device."""
        waits = [
            member.device.scheduler.max_waiting_seen
            for member in self.members
            if member.device is not None
        ]
        return max(waits) if waits else 0

    def pending_total(self) -> int:
        """Requests still queued anywhere in the fleet (0 after a clean run)."""
        return sum(member.pending_requests() for member in self.members)

    def metrics(self, total_simulated_time: float) -> Dict[str, object]:
        """Fleet-level metrics section of the scenario report."""
        # Imported here, not at module level: repro.cluster composes the
        # fleet router, so a top-level import would be circular.
        from repro.cluster.metrics import jain_fairness

        per_device: Dict[str, Dict[str, object]] = {}
        busy_values: List[float] = []
        for member in self.members:
            busy = member.busy_seconds()
            busy_values.append(busy)
            per_device[member.device_id] = {
                "alive": member.alive,
                "failed_at": member.failed_at,
                "objects_placed": len(member.object_keys),
                "objects_served": member.objects_served(),
                "group_switches": (
                    member.device.stats.group_switches if member.device else 0
                ),
                "requests_routed": member.requests_routed,
                "busy_seconds": busy,
                "utilization": (
                    busy / total_simulated_time if total_simulated_time > 0 else 0.0
                ),
            }

        mean_busy = sum(busy_values) / len(busy_values)
        if mean_busy > 0:
            variance = sum((value - mean_busy) ** 2 for value in busy_values) / len(
                busy_values
            )
            imbalance = variance**0.5 / mean_busy
        else:
            imbalance = 0.0

        served_by_tenant = {
            tenant: sum(per_device_counts.values())
            for tenant, per_device_counts in sorted(
                self.stats.per_tenant_device_served.items()
            )
        }
        # Per-tenant spread: how evenly each tenant's objects were served
        # across the devices holding at least one replica of its data.
        tenant_spread = {
            tenant: jain_fairness(
                [
                    per_device_counts.get(member.device_id, 0)
                    for member in self.members
                    if any(key.startswith(f"{tenant}/") for key in member.object_keys)
                ]
            )
            for tenant, per_device_counts in sorted(
                self.stats.per_tenant_device_served.items()
            )
        }

        total_served = sum(member.objects_served() for member in self.members)
        return {
            "devices": len(self.members),
            "replication": self.spec.replication,
            "placement": self.spec.placement,
            "replica_policy": self.spec.replica_policy,
            "per_device": per_device,
            "imbalance_coefficient": imbalance,
            "aggregate_throughput": (
                total_served / total_simulated_time if total_simulated_time > 0 else 0.0
            ),
            "tenant_fairness": (
                jain_fairness(list(served_by_tenant.values()))
                if served_by_tenant
                else 1.0
            ),
            "per_tenant_spread": tenant_spread,
            "requests_routed": self.stats.requests_routed,
            "failed_over_requests": self.stats.failed_over,
            "lost_objects": self.pending_total(),
        }
