"""The fleet router: one addressable storage service over N devices.

The router composes N independent :class:`~repro.csd.device.ColdStorageDevice`
instances — each with its own disk-group layout, its own I/O scheduler and
its own (possibly heterogeneous) :class:`~repro.csd.device.DeviceConfig` —
behind the exact ``submit()`` interface clients already speak, so executors
and client proxies are oblivious to whether they talk to one device or to a
sharded fleet.

Responsibilities:

* **Routing** — every GET is dispatched to one live replica of its object,
  chosen by the replica policy: primary-first, least-loaded (queue length),
  ewma-latency (smoothed service time × queue depth) or weighted (queue
  depth discounted by capacity weight).  Completions feed a per-device
  latency EWMA in simulated time, so adaptive policies stay deterministic.
* **Load-aware placement** — capacity weights (static speed factors under
  ``weighting="profile"``, or observed service rates when the feedback
  rebalancer triggers) size each device's vnode share on the consistent-hash
  ring; an all-equal-weight fleet is byte-identical to an unweighted one.
* **Membership** — the device roster is epoch-versioned
  (:class:`~repro.fleet.membership.FleetMembership`): a
  :class:`~repro.fleet.spec.DeviceJoin` or
  :class:`~repro.fleet.spec.DeviceLeave` advances the epoch, deterministically
  recomputes the consistent-hash placement over the new roster and executes
  the **minimal migration plan** — only keys whose replica set changed move,
  with the migration I/O charged to the source and destination devices as
  priority work that measurably interferes with foreground traffic.
* **Failover / handoff** — when a device fails (fail-stop) its queued
  requests are pulled back and re-routed to surviving replicas; when a
  device leaves gracefully its queue is handed off to the new owners of its
  keys.  Nothing is lost in either case.
* **Aggregation** — per-device busy-interval streams are merged (ordered by
  completion) for the metrics layer, and per-device counters are combined
  into fleet-level statistics, including a per-epoch imbalance series.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.csd.device import (
    BusyInterval,
    ColdStorageDevice,
    DeviceConfig,
    DeviceStats,
    MigrationTokenBucket,
)
from repro.csd.layout import LayoutPolicy, extend_layout_with_keys
from repro.csd.object_store import ObjectStore, split_object_key
from repro.csd.request import GetRequest, MigrationJob
from repro.csd.scheduler import IOScheduler
from repro.exceptions import ConfigurationError, FleetError
from repro.fleet.membership import FleetMembership, MemberRecord
from repro.fleet.migration import MigrationPlan, plan_migration
from repro.obs import NULL_TRACER, Ewma, MetricsRegistry
from repro.fleet.placement import (
    ConsistentHashPlacement,
    build_placement,
    normalize_weights,
)
from repro.fleet.spec import (
    DeviceFailure,
    DeviceJoin,
    DeviceLeave,
    FleetSpec,
    RebalancePolicy,
    SetReplication,
    device_name,
)
from repro.sim import Environment

SchedulerFactory = Callable[[], IOScheduler]


@dataclass
class FleetMember:
    """One device of the fleet plus the router's book-keeping about it."""

    device_id: str
    index: int
    #: ``None`` when the placement put no objects on this device (it then
    #: spins idle for the whole run but still appears in fleet metrics).
    device: Optional[ColdStorageDevice]
    object_keys: Tuple[str, ...]
    alive: bool = True
    failed_at: Optional[float] = None
    joined_at: float = 0.0
    left_at: Optional[float] = None
    #: Requests routed to this device (including later failed-over ones).
    requests_routed: int = 0
    #: Routed but not yet completed (drives the least-loaded policy).
    outstanding: int = 0
    #: Normalised capacity weight (1.0 on a uniform ring); sizes the device's
    #: vnode share and divides its queue under the ``weighted`` policy.
    weight: float = 1.0
    #: Per-device EWMA of request latency (routed → completed), in simulated
    #: seconds; feeds the ``ewma-latency`` policy and the rebalancer.
    ewma: Optional[Ewma] = None
    #: Sum of completed-request latencies (mean = sum / ewma.count).
    latency_sum: float = 0.0

    def busy_seconds(self) -> float:
        if self.device is None:
            return 0.0
        return self.device.busy_intervals.total_duration()

    def objects_served(self) -> int:
        return self.device.stats.objects_served if self.device else 0

    def pending_requests(self) -> int:
        return self.device.scheduler.pending_count() if self.device else 0


class FleetRouterStats:
    """Fleet-wide counters, registered as ``router.*`` metrics.

    The attribute names remain read/write properties over the registry
    counters, so report code and tests keep their existing shape while the
    values live in the (shared or private)
    :class:`~repro.obs.metrics.MetricsRegistry`.
    """

    __slots__ = (
        "metrics",
        "per_tenant_device_served",
        "_requests_routed",
        "_failed_over",
        "_handed_off",
        "_dropped_migration_jobs",
        "_choice_primary",
        "_choice_diverted",
        "request_latency",
    )

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        registry = metrics if metrics is not None else MetricsRegistry()
        self.metrics = registry
        self._requests_routed = registry.counter("router.requests_routed")
        self._failed_over = registry.counter("router.failed_over_requests")
        #: Requests handed off from a gracefully leaving device's queue.
        self._handed_off = registry.counter("router.handed_off_requests")
        #: Migration jobs withdrawn from a fail-stopped device's queue (a
        #: dead device performs no further I/O, so its pending rebalance
        #: work is dropped uncharged).
        self._dropped_migration_jobs = registry.counter(
            "router.dropped_migration_jobs"
        )
        #: Replica-choice split: requests served by their placement primary
        #: vs diverted to another replica by the replica policy.
        self._choice_primary = registry.counter("router.replica_choice.primary")
        self._choice_diverted = registry.counter("router.replica_choice.diverted")
        #: Fleet-wide routed→completed latency (simulated seconds); its raw
        #: samples back the p50/p95/p99 figures in the routing report section.
        self.request_latency = registry.histogram("router.request_latency_seconds")
        self.per_tenant_device_served: Dict[str, Dict[str, int]] = {}

    @property
    def requests_routed(self) -> int:
        return self._requests_routed.value

    @requests_routed.setter
    def requests_routed(self, value: int) -> None:
        self._requests_routed.value = value

    @property
    def failed_over(self) -> int:
        return self._failed_over.value

    @failed_over.setter
    def failed_over(self, value: int) -> None:
        self._failed_over.value = value

    @property
    def handed_off(self) -> int:
        return self._handed_off.value

    @handed_off.setter
    def handed_off(self, value: int) -> None:
        self._handed_off.value = value

    @property
    def dropped_migration_jobs(self) -> int:
        return self._dropped_migration_jobs.value

    @dropped_migration_jobs.setter
    def dropped_migration_jobs(self, value: int) -> None:
        self._dropped_migration_jobs.value = value

    @property
    def choice_primary(self) -> int:
        return self._choice_primary.value

    @property
    def choice_diverted(self) -> int:
        return self._choice_diverted.value

    def record_served(self, tenant: str, device_id: str) -> None:
        per_device = self.per_tenant_device_served.setdefault(tenant, {})
        per_device[device_id] = per_device.get(device_id, 0) + 1


class FleetRouter:
    """Dispatches GET requests across a sharded, replicated, elastic fleet."""

    def __init__(
        self,
        env: Environment,
        object_store: ObjectStore,
        client_objects: Mapping[str, Sequence[str]],
        fleet_spec: FleetSpec,
        layout_policy: LayoutPolicy,
        scheduler_factory: SchedulerFactory,
        device_config: Optional[DeviceConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ) -> None:
        self.env = env
        self.object_store = object_store
        self.spec = fleet_spec
        #: Registry shared with the devices (``None`` = each its own).
        self._metrics = metrics
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.stats = FleetRouterStats(metrics)
        self.layout_policy = layout_policy
        self.scheduler_factory = scheduler_factory
        #: Epoch-versioned roster: who is in the fleet, with which config.
        self.membership = FleetMembership(
            fleet_spec, device_config or DeviceConfig()
        )
        #: Migration plans executed so far, one per join/leave epoch.
        self.migration_plans: List[MigrationPlan] = []

        # Preserve each client's object order; placement recomputes and
        # per-device subsets all derive from this one ordering.
        self.client_objects: Dict[str, List[str]] = {
            client: list(keys) for client, keys in client_objects.items()
        }
        self._key_order: List[str] = [
            key for keys in self.client_objects.values() for key in keys
        ]
        #: key -> position in the canonical ordering; lets plan execution
        #: sort a plan's gained keys in O(M log M) instead of rescanning
        #: every client's full key list per gaining device.
        self._key_rank: Dict[str, int] = {
            key: rank for rank, key in enumerate(self._key_order)
        }
        self._policy = build_placement(
            fleet_spec.placement,
            fleet_spec.replication,
            virtual_nodes=fleet_spec.virtual_nodes,
        )
        self.members: List[FleetMember] = []
        self._member_by_id: Dict[str, FleetMember] = {}
        #: Raw (un-normalised) capacity weights the weighted ring is built
        #: from: static speed factors under ``weighting="profile"``, observed
        #: 1/EWMA-latency rates once the feedback rebalancer triggers.
        #: Empty = uniform ring (every device gets ``virtual_nodes`` vnodes).
        self._raw_weights: Dict[str, float] = {}
        #: Weights normalised over the current roster (mean 1.0), as
        #: installed on the ring; mirrored onto ``FleetMember.weight``.
        self._member_weights: Dict[str, float] = {}
        if fleet_spec.weighting == "profile":
            for record in self.membership.records:
                self._raw_weights[record.device_id] = self._profile_weight(
                    record.config
                )
        self._install_weights(list(fleet_spec.device_ids))
        #: Replication factor the current placement was computed at (tracks
        #: ``SetReplication`` events and repair under device loss).
        self.placement_replication = fleet_spec.replication
        #: Key population as (hash, key) pairs sorted by hash — computed
        #: once (key hashes never change): the initial bulk placement sweeps
        #: this sorted list and every epoch change walks changed ring arcs
        #: instead of re-placing all keys.
        #: object key -> replica device ids, primary first (current epoch).
        if isinstance(self._policy, ConsistentHashPlacement):
            self._sorted_key_hashes: List[Tuple[int, str]] = sorted(
                zip(self._policy.bulk_key_hashes(self._key_order), self._key_order)
            )
            self.placement: Dict[str, Tuple[str, ...]] = self._policy.place(
                self._key_order,
                list(fleet_spec.device_ids),
                sorted_key_hashes=self._sorted_key_hashes,
            )
            #: Per-device vnode counts the current placement's ring used,
            #: aligned with ``_placement_roster``; epoch diffs pass the old
            #: and new counts so weighted rings diff correctly.
            self._placement_vnode_counts: Tuple[int, ...] = (
                self._policy.vnode_counts(list(fleet_spec.device_ids))
            )
        else:
            self._sorted_key_hashes = []
            self.placement = self._policy.place(
                self._key_order, list(fleet_spec.device_ids)
            )
            self._placement_vnode_counts = ()
        #: Roster the current placement was computed over; paired with
        #: ``placement_replication`` it identifies the old epoch's ring for
        #: incremental placement diffs.
        self._placement_roster: Tuple[str, ...] = tuple(fleet_spec.device_ids)
        #: (first canonical rank, client) per client with keys, ascending —
        #: binary-searching a key's rank recovers its owning client without a
        #: per-key map (canonical order is client-major).
        self._client_spans: List[Tuple[int, str]] = []
        rank = 0
        for client, keys in self.client_objects.items():
            if keys:
                self._client_spans.append((rank, client))
                rank += len(keys)
        self._client_span_starts: List[int] = [
            start for start, _client in self._client_spans
        ]
        #: Per-epoch replication health: under-replicated key counts sampled
        #: when each epoch opened (before its plan ran) and after.
        self.replication_log: List[Dict[str, object]] = []
        #: Feedback-rebalancer tick log: one entry per controller interval
        #: (imbalance observed, whether a reweight fired, and why not).
        self.rebalance_log: List[Dict[str, object]] = []

        subsets = self._invert_placement()
        for record in self.membership.records:
            self._create_member(record, subsets.get(record.device_id, {}))

        #: Failure/membership processes; their exceptions would otherwise be
        #: recorded on the process event with no waiter and silently lost,
        #: so the service re-raises them after (or instead of) a stuck run.
        self.admin_processes = []
        for failure in fleet_spec.failures:
            self.admin_processes.append(
                env.process(
                    self._fail_device(failure), name=f"fleet-failure:{failure.device}"
                )
            )
        for event in fleet_spec.events:
            if isinstance(event, SetReplication):
                name = f"fleet-set-replication:{event.replication}"
            else:
                kind = "join" if isinstance(event, DeviceJoin) else "leave"
                name = f"fleet-{kind}:{event.device}"
            self.admin_processes.append(
                env.process(self._membership_event(event), name=name)
            )
        if fleet_spec.rebalance is not None:
            self.admin_processes.append(
                env.process(
                    self._rebalance_controller(fleet_spec.rebalance),
                    name="fleet-rebalancer",
                )
            )

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def _profile_weight(self, config: DeviceConfig) -> float:
        """Static capacity weight of a device: its speed-up over the base
        config's transfer rate (a device twice as fast weighs 2.0)."""
        base = self.membership.base_config.transfer_seconds_per_object
        if base <= 0 or config.transfer_seconds_per_object <= 0:
            raise ConfigurationError(
                "profile weighting requires positive transfer_seconds_per_object "
                f"(base={base!r}, device={config.transfer_seconds_per_object!r})"
            )
        return base / config.transfer_seconds_per_object

    def _install_weights(self, roster: Sequence[str]) -> None:
        """(Re-)normalise the raw weights over ``roster`` onto the ring.

        Normalisation is always over the devices actually in the roster, so
        a join or leave re-centres everyone's weight around mean 1.0 — the
        property that keeps an all-equal fleet byte-identical to an
        unweighted one.  A no-op on uniform fleets and non-ring placements.
        """
        if not self._raw_weights or not isinstance(
            self._policy, ConsistentHashPlacement
        ):
            return
        subset = {
            device_id: self._raw_weights[device_id]
            for device_id in roster
            if device_id in self._raw_weights
        }
        weights = normalize_weights(subset) if subset else {}
        self._policy.set_weights(weights if weights else None)
        self._member_weights = weights
        for member in self.members:
            member.weight = weights.get(member.device_id, 1.0)

    def _holds_object(self, device_id: str, object_key: str) -> bool:
        """Whether ``device_id`` already physically stores ``object_key``."""
        member = self._member_by_id.get(device_id)
        return (
            member is not None
            and member.device is not None
            and member.device.layout.has_object(object_key)
        )

    def _subset_for(self, device_id: str) -> Dict[str, List[str]]:
        """Current-placement keys of ``device_id``, grouped by client."""
        subset = {
            client: [key for key in keys if device_id in self.placement[key]]
            for client, keys in self.client_objects.items()
        }
        return {client: keys for client, keys in subset.items() if keys}

    def _invert_placement(self) -> Dict[str, Dict[str, List[str]]]:
        """Every device's :meth:`_subset_for` computed in one placement pass.

        Walking the canonical key order once and appending each key to its
        replicas' per-client lists produces, for every device, exactly the
        dict :meth:`_subset_for` would build — same clients in the same
        first-seen order, same keys in client order — in O(K·R) total
        instead of O(devices · K) repeated scans.
        """
        subsets: Dict[str, Dict[str, List[str]]] = {}
        placement = self.placement
        for client, keys in self.client_objects.items():
            for key in keys:
                for device_id in placement[key]:
                    per_client = subsets.setdefault(device_id, {})
                    bucket = per_client.get(client)
                    if bucket is None:
                        per_client[client] = [key]
                    else:
                        bucket.append(key)
        return subsets

    def _client_of_key(self, object_key: str) -> str:
        """Owning client of a placed key, via its canonical rank."""
        rank = self._key_rank[object_key]
        span = bisect_right(self._client_span_starts, rank) - 1
        return self._client_spans[span][1]

    def _make_throttle(self) -> Optional[MigrationTokenBucket]:
        """Fresh per-device token bucket, or ``None`` for strict priority."""
        throttle = self.spec.throttle
        if throttle is None:
            return None
        return MigrationTokenBucket(throttle.objects_per_second, throttle.burst)

    def _create_member(
        self, record: MemberRecord, subset: Mapping[str, Sequence[str]]
    ) -> FleetMember:
        device: Optional[ColdStorageDevice] = None
        member_keys: Tuple[str, ...] = tuple(
            key for keys in subset.values() for key in keys
        )
        if subset:
            device = ColdStorageDevice(
                env=self.env,
                object_store=self.object_store,
                layout=self.layout_policy.build(subset),
                scheduler=self.scheduler_factory(),
                config=record.config,
                migration_throttle=self._make_throttle(),
                name=record.device_id,
                metrics=self._metrics,
                tracer=self.tracer,
            )
        member = FleetMember(
            device_id=record.device_id,
            index=record.index,
            device=device,
            object_keys=member_keys,
            joined_at=record.joined_at,
            weight=self._member_weights.get(record.device_id, 1.0),
            ewma=Ewma(self.spec.ewma_alpha),
        )
        self.members.append(member)
        self._member_by_id[record.device_id] = member
        return member

    # ------------------------------------------------------------------ #
    # Client-facing API (same shape as ColdStorageDevice)
    # ------------------------------------------------------------------ #
    def submit(self, request: GetRequest) -> GetRequest:
        """Route ``request`` to a live replica of its object."""
        member = self._choose_replica(request.object_key)
        member.requests_routed += 1
        member.outstanding += 1
        request.routed_at = self.env.now
        self.stats._requests_routed.value += 1
        if self.tracer.enabled:
            self.tracer.route(
                request.query_id,
                request.object_key,
                member.device_id,
                self.membership.epoch,
                self.spec.replica_policy,
                member.outstanding,
            )
        # One callback per request, however often it is re-routed;
        # ``request.owner`` points at whichever member is actually serving
        # it now (a slot on the request instead of a router-side dict that
        # would grow one entry per in-flight key).
        if request.owner is None:
            request.completion.add_callback(self._make_completion_callback(request))
        request.owner = member
        member.device.submit(request)
        return request

    def get(self, object_key: str, client_id: str, query_id: str) -> GetRequest:
        """Convenience wrapper building and submitting a request."""
        request = GetRequest(
            object_key=object_key,
            client_id=client_id,
            query_id=query_id,
            completion=self.env.event(name=object_key),
        )
        return self.submit(request)

    def _make_completion_callback(self, request: GetRequest):
        def _on_complete(_event) -> None:
            member = request.owner
            request.owner = None
            if not isinstance(member, FleetMember):  # pragma: no cover - defensive
                raise FleetError(
                    f"request #{request.request_id} completed without a routed owner"
                )
            member.outstanding -= 1
            if member.outstanding < 0:
                raise FleetError(
                    f"device {member.device_id!r} completed more requests "
                    "than were routed to it (outstanding went negative)"
                )
            if request.routed_at is not None and member.ewma is not None:
                # Routed→completed latency on the *final* owner (failover
                # re-stamps routed_at, so a re-routed request charges only
                # its last leg — the one this device actually served).
                latency = self.env.now - request.routed_at
                member.ewma.observe(latency)
                member.latency_sum += latency
                self.stats.request_latency.observe(latency)
            tenant = request.object_key.partition("/")[0]
            self.stats.record_served(tenant, member.device_id)

        return _on_complete

    def _choose_replica(self, object_key: str) -> FleetMember:
        try:
            replicas = self.placement[object_key]
        except KeyError:
            raise FleetError(f"object {object_key!r} is not placed on any device") from None
        members = self._member_by_id
        policy = self.spec.replica_policy
        if policy == "primary-first":
            # Primary-first fast path: the answer is the first live replica,
            # so a healthy primary skips building the live-member list.
            primary = members[replicas[0]]
            if primary.alive:
                self.stats._choice_primary.value += 1
                return primary
        live = [
            members[device_id]
            for device_id in replicas
            if members[device_id].alive
        ]
        if not live:
            raise FleetError(
                f"every replica of {object_key!r} is dead ({', '.join(replicas)})"
            )
        # ``min`` keeps the first of equally scored members and ``live`` is
        # in replica order, so every policy degrades to primary-first on
        # ties (deterministic either way).
        if policy == "least-loaded":
            chosen = min(live, key=lambda member: member.outstanding)
        elif policy == "ewma-latency":
            # Expected wait: smoothed service time × queue depth.  An
            # unsampled device scores 0.0, so cold replicas get probed
            # before the EWMA starts steering traffic.
            chosen = min(
                live,
                key=lambda member: (
                    member.ewma.value_or(0.0) if member.ewma is not None else 0.0
                )
                * (member.outstanding + 1),
            )
        elif policy == "weighted":
            # Queue depth discounted by capacity: a device weighing 2.0
            # absorbs twice the outstanding work before being passed over.
            chosen = min(live, key=lambda member: member.outstanding / member.weight)
        else:
            chosen = live[0]
        if chosen.device_id == replicas[0]:
            self.stats._choice_primary.value += 1
        else:
            self.stats._choice_diverted.value += 1
        return chosen

    # ------------------------------------------------------------------ #
    # Failure handling (fail-stop: epoch advances; with ``repair`` the lost
    # replicas are re-created on surviving owners as charged migration I/O)
    # ------------------------------------------------------------------ #
    def _fail_device(self, failure: DeviceFailure):
        if failure.at_seconds > 0:
            yield self.env.timeout(failure.at_seconds)
        member = self._member_by_id[device_name(failure.device)]
        self.membership.fail(member.device_id, self.env.now)
        member.alive = False
        member.failed_at = self.env.now
        device = member.device
        # Fail-stop at a request boundary: the transfer in flight (if any)
        # completes normally, everything still queued fails over — and any
        # migration I/O still queued on the corpse is dropped outright (a
        # dead device performs no further reads or writes, ever).
        drained: List[GetRequest] = []
        if device is not None:
            drained = device.drain_pending()
            member.outstanding -= len(drained)
            self.stats.failed_over += len(drained)
            self.stats.dropped_migration_jobs += len(device.drain_migration_jobs())
        if self.spec.repair and self.membership.replication >= 2:
            # Read-repair: re-place over the survivors and re-create the dead
            # device's replicas from live sources, so the fleet returns to R
            # live replicas per key instead of silently staying degraded.
            self._rebalance("repair", member.device_id, reason="repair")
        else:
            self._record_replication_health("failure")
        for request in drained:
            self.submit(request)

    # ------------------------------------------------------------------ #
    # Membership events (joins / graceful leaves → epoch + migration)
    # ------------------------------------------------------------------ #
    def _membership_event(self, event):
        if event.at_seconds > 0:
            yield self.env.timeout(event.at_seconds)
        if isinstance(event, DeviceJoin):
            self._apply_join(event)
        elif isinstance(event, DeviceLeave):
            self._apply_leave(event)
        elif isinstance(event, SetReplication):
            self._apply_set_replication(event)
        else:  # pragma: no cover - spec validation rejects other types
            raise FleetError(f"unknown membership event {event!r}")

    def _apply_join(self, event: DeviceJoin) -> None:
        record = self.membership.join(event, self.env.now)
        if self.spec.weighting == "profile":
            # The joiner's speed factor enters the raw weight set here; the
            # rebalance below re-normalises over the whole serving roster.
            self._raw_weights[record.device_id] = self._profile_weight(record.config)
        self._create_member(record, {})
        self._rebalance("join", record.device_id)

    def _apply_leave(self, event: DeviceLeave) -> None:
        device_id = device_name(event.device)
        member = self._member_by_id.get(device_id)
        if member is None or not member.alive:
            raise FleetError(f"device {device_id!r} cannot leave: not a live member")
        self.membership.leave(device_id, self.env.now)
        member.alive = False
        member.left_at = self.env.now
        # Hand the leaver's queue off *after* the placement recompute so the
        # drained requests land on their new owners; the in-flight transfer
        # (if any) completes on the leaver, exactly like fail-stop drains.
        drained: List[GetRequest] = []
        if member.device is not None:
            drained = member.device.drain_pending()
            member.outstanding -= len(drained)
            self.stats.handed_off += len(drained)
        self._rebalance("leave", device_id)
        for request in drained:
            self.submit(request)

    def _apply_set_replication(self, event: SetReplication) -> None:
        """Raise or lower R: re-replicate (R up) or trim (R down) the
        affected keys, as one epoch with its own migration plan."""
        self.membership.set_replication(event.replication, self.env.now)
        self._rebalance("set-replication", "fleet", reason="replicate")

    # ------------------------------------------------------------------ #
    # Feedback rebalancer (periodic controller → reweight epochs)
    # ------------------------------------------------------------------ #
    def _rebalance_controller(self, policy: RebalancePolicy):
        """Periodic imbalance check; runs for the life of the simulation.

        The process never terminates on its own — ``run(until=...)`` simply
        stops dispatching its timeouts once the target event fires, so ticks
        scheduled past the end of the workload never happen.
        """
        window_start = 0.0
        while True:
            yield self.env.timeout(policy.interval_seconds)
            self._rebalance_tick(policy, window_start, self.env.now)
            window_start = self.env.now

    def _rebalance_tick(
        self, policy: RebalancePolicy, window_start: float, now: float
    ) -> None:
        """One controller decision over the busy window just ended.

        Imbalance is measured as the coefficient of variation of per-device
        busy seconds inside the window.  Past the threshold, target weights
        are set proportional to observed service rate (1 / latency EWMA) —
        a device answering twice as fast earns twice the arc share — and a
        ``reweight`` epoch migrates the placement to the new ring through
        the ordinary throttled-migration machinery.  Every tick appends a
        log entry stating what it saw and why it did (or did not) act.
        """
        from repro.cluster.metrics import imbalance_coefficient

        serving = [
            self._member_by_id[device_id]
            for device_id in self.membership.serving_ids()
        ]
        busy = [self._window_busy(member, window_start, now) for member in serving]
        imbalance = imbalance_coefficient(busy)
        entry: Dict[str, object] = {
            "at_seconds": now,
            "window_start": window_start,
            "epoch": self.membership.epoch,
            "imbalance_coefficient": imbalance,
            "triggered": False,
            "outcome": "below-threshold",
        }
        if imbalance > policy.imbalance_threshold:
            if any(
                member.ewma is None
                or member.ewma.count == 0
                or member.ewma.value <= 0
                for member in serving
            ):
                # A device nobody has completed a request on yet has no
                # observed rate; acting on a half-sampled fleet would swing
                # weights on noise, so the controller waits a window.
                entry["outcome"] = "insufficient-samples"
            else:
                raw = {
                    member.device_id: 1.0 / member.ewma.value  # type: ignore[union-attr]
                    for member in serving
                }
                target = normalize_weights(raw)
                current = {
                    member.device_id: self._member_weights.get(member.device_id, 1.0)
                    for member in serving
                }
                delta = max(
                    abs(target[device_id] - current[device_id])
                    for device_id in target
                )
                entry["max_weight_delta"] = delta
                if delta < policy.min_weight_delta:
                    entry["outcome"] = "weights-stable"
                else:
                    self._raw_weights = raw
                    self.membership.reweight(now)
                    self._rebalance("reweight", "fleet", reason="reweight")
                    entry["triggered"] = True
                    entry["outcome"] = "reweighted"
                    entry["weights"] = {
                        device_id: target[device_id] for device_id in sorted(target)
                    }
        self.rebalance_log.append(entry)

    def _under_replicated_count(self, placement: Mapping[str, Sequence[str]]) -> int:
        """Keys with fewer live replicas than the current target."""
        target = self.effective_replication
        return sum(
            1
            for replicas in placement.values()
            if sum(1 for device_id in replicas if self._member_by_id[device_id].alive)
            < target
        )

    def _record_replication_health(
        self, kind: str, at_open: Optional[int] = None
    ) -> None:
        """Append one per-epoch replication-health sample.

        ``under_replicated_at_open`` is the count the instant the epoch
        opened — for a failure, the degradation the loss itself caused;
        ``under_replicated_after_plan`` is what remained once the epoch's
        plan ran (unchanged when no plan ran, e.g. repair disabled).
        """
        after = self._under_replicated_count(self.placement)
        self.replication_log.append(
            {
                "epoch": self.membership.epoch,
                "at_seconds": self.env.now,
                "kind": kind,
                "replication": self.membership.replication,
                "under_replicated_at_open": after if at_open is None else at_open,
                "under_replicated_after_plan": after,
            }
        )

    def _rebalance(self, kind: str, device_id: str, reason: str = "rebalance") -> None:
        """Advance placement to the new epoch and execute the minimal plan."""
        epoch_record = self.membership.epoch_log[-1]
        old_placement = self.placement
        under_replicated_before = self._under_replicated_count(old_placement)
        # The effective factor adapts to the roster: a repair pass after a
        # loss can only restore min(R, serving) replicas per key.
        replication = self.effective_replication
        old_replication = self.placement_replication
        self._policy.replication = replication
        serving = list(self.membership.serving_ids())
        changed_keys: Optional[List[str]] = None
        new_vnode_counts: Tuple[int, ...] = ()
        if isinstance(self._policy, ConsistentHashPlacement):
            # The old ring's vnode counts are snapshotted; re-normalising
            # the weights over the new roster (and any reweight that led
            # here) yields the new counts, and the diff walks both rings.
            old_vnode_counts = self._placement_vnode_counts
            self._install_weights(serving)
            new_vnode_counts = self._policy.vnode_counts(serving)
            # Only the keys in ring arcs whose replica tuple changed need
            # re-placing; everything else keeps its entry from the old epoch.
            changed = self._policy.diff_keys(
                self._sorted_key_hashes,
                self._placement_roster,
                serving,
                old_replication,
                replication,
                old_vnode_counts=old_vnode_counts,
                new_vnode_counts=new_vnode_counts,
            )
            new_placement = dict(old_placement)
            new_placement.update(changed)
            # The plan must see changed keys in canonical key order (what a
            # full placement scan iterates), not hash order.
            changed_keys = sorted(changed, key=self._key_rank.__getitem__)
        else:
            new_placement = self._policy.place(self._key_order, serving)
        alive = {member.device_id: member.alive for member in self.members}
        plan = plan_migration(
            epoch=epoch_record.epoch,
            at_seconds=self.env.now,
            kind=kind,
            device_id=device_id,
            old_placement=old_placement,
            new_placement=new_placement,
            alive=alive,
            devices_before=epoch_record.devices_before,
            devices_after=epoch_record.devices_after,
            replication=replication,
            hash_minimal=self.spec.placement == "consistent-hash",
            # Layouts are append-only, so a device that held a key in an
            # earlier epoch still physically has it: re-adopting such a
            # replica costs no migration I/O.
            resident=self._holds_object,
            changed_keys=changed_keys,
        )
        self.placement = new_placement
        self.placement_replication = replication
        self._placement_roster = tuple(serving)
        self._placement_vnode_counts = new_vnode_counts
        self._execute_plan(plan, reason=reason)
        self.migration_plans.append(plan)
        self._record_replication_health(kind, at_open=under_replicated_before)

    def _execute_plan(self, plan: MigrationPlan, reason: str = "rebalance") -> None:
        """Extend destination layouts and charge the migration I/O."""
        gained: Dict[str, List[str]] = {}
        for move in plan.moves:
            gained.setdefault(move.dest, []).append(move.object_key)
        # Destinations in roster order: deterministic layout/group assignment.
        for member in self.members:
            keys = gained.get(member.device_id)
            if not keys:
                continue
            # Keys in client order, mirroring how initial layouts are built
            # (the precomputed rank map keeps this O(M log M) per device
            # instead of a scan over every client's full key list).
            ordered = sorted(keys, key=self._key_rank.__getitem__)
            if member.device is None:
                # A device with no ColdStorageDevice held nothing before, so
                # its gained keys are exactly its subset of the (already
                # updated) current placement: group them by owning client
                # (``ordered`` is canonical — client-major — so clients land
                # in first-seen order with keys in client order, matching
                # what a full placement scan would build).
                subset: Dict[str, List[str]] = {}
                for key in ordered:
                    client = self._client_of_key(key)
                    bucket = subset.get(client)
                    if bucket is None:
                        subset[client] = [key]
                    else:
                        bucket.append(key)
                record = self.membership.record(member.device_id)
                member.device = ColdStorageDevice(
                    env=self.env,
                    object_store=self.object_store,
                    layout=self.layout_policy.build(subset),
                    scheduler=self.scheduler_factory(),
                    config=record.config,
                    migration_throttle=self._make_throttle(),
                    name=member.device_id,
                    metrics=self._metrics,
                    tracer=self.tracer,
                )
            else:
                extend_layout_with_keys(member.device.layout, ordered)
            member.object_keys = member.object_keys + tuple(ordered)

        def _account(job: MigrationJob, start: float, end: float, _interfered: bool,
                     plan: MigrationPlan = plan) -> None:
            plan.migration_seconds += end - start

        for move in plan.moves:
            source = self._member_by_id.get(move.source)
            dest = self._member_by_id[move.dest]
            if source is not None and source.device is not None:
                source.device.submit_migration(
                    MigrationJob(
                        object_key=move.object_key,
                        direction="read",
                        seconds=source.device.config.transfer_seconds_per_object,
                        epoch=plan.epoch,
                        reason=reason,
                        notify=_account,
                    )
                )
            dest.device.submit_migration(
                MigrationJob(
                    object_key=move.object_key,
                    direction="write",
                    seconds=dest.device.config.transfer_seconds_per_object,
                    epoch=plan.epoch,
                    reason=reason,
                    notify=_account,
                )
            )

    def raise_admin_failure(self) -> None:
        """Re-raise the first exception a failure/membership process died of."""
        for process in self.admin_processes:
            if process.exception is not None:
                raise process.exception

    # ------------------------------------------------------------------ #
    # Aggregated views for the metrics / invariants layers
    # ------------------------------------------------------------------ #
    @property
    def epoch(self) -> int:
        """Current membership epoch (0 until the first membership change)."""
        return self.membership.epoch

    @property
    def effective_replication(self) -> int:
        """Replicas per key the current roster can actually sustain."""
        return min(self.membership.replication, len(self.membership.serving_ids()))

    @property
    def busy_intervals(self) -> List[BusyInterval]:
        """All devices' busy intervals merged in completion order."""
        merged: List[BusyInterval] = []
        for member in self.members:
            if member.device is not None:
                merged.extend(member.device.busy_intervals)
        merged.sort(key=lambda interval: (interval.end, interval.start))
        return merged

    @property
    def device_stats(self) -> DeviceStats:
        """Fleet-wide counters in the single-device stats shape."""
        combined = DeviceStats(name="fleet")
        for member in self.members:
            if member.device is not None:
                combined.absorb(member.device.stats)
        return combined

    def scheduler_switches(self) -> int:
        """Total scheduler-reported group switches across the fleet."""
        return sum(
            member.device.scheduler.num_switches
            for member in self.members
            if member.device is not None
        )

    def max_waiting_seen(self) -> int:
        """Worst per-query waiting counter reached on any device."""
        waits = [
            member.device.scheduler.max_waiting_seen
            for member in self.members
            if member.device is not None
        ]
        return max(waits) if waits else 0

    def pending_total(self) -> int:
        """Requests still queued anywhere in the fleet (0 after a clean run)."""
        return sum(member.pending_requests() for member in self.members)

    def _window_busy(self, member: FleetMember, start: float, end: float) -> float:
        """Busy seconds of ``member`` inside the window ``[start, end]``."""
        if member.device is None:
            return 0.0
        return member.device.busy_intervals.window_overlap(start, end)

    def per_epoch_imbalance(self, total_simulated_time: float) -> List[Dict[str, object]]:
        """Imbalance coefficient of each epoch's membership window.

        Every membership change opens a new epoch, so the member set is
        constant inside each window; a member belongs to a window when it had
        joined by the window's start and neither left nor failed before its
        end.
        """
        from repro.cluster.metrics import imbalance_coefficient

        series: List[Dict[str, object]] = []
        for epoch, start, end in self.membership.epoch_windows(total_simulated_time):
            present = [
                member
                for member in self.members
                if member.joined_at <= start
                and (member.left_at is None or member.left_at >= end)
                and (member.failed_at is None or member.failed_at >= end)
            ]
            busy = [self._window_busy(member, start, end) for member in present]
            series.append(
                {
                    "epoch": epoch,
                    "start": start,
                    "end": end,
                    "devices": len(present),
                    "imbalance_coefficient": imbalance_coefficient(busy),
                }
            )
        return series

    def rebalance_metrics(self, total_simulated_time: float) -> Dict[str, object]:
        """The ``rebalance`` section of the scenario report."""
        stats = self.device_stats
        return {
            "epoch": self.membership.epoch,
            "events": [record.to_dict() for record in self.membership.epoch_log],
            "plans": [plan.to_dict() for plan in self.migration_plans],
            "keys_moved_total": sum(plan.keys_moved for plan in self.migration_plans),
            "objects_migrated_total": sum(
                plan.objects_migrated for plan in self.migration_plans
            ),
            "bytes_migrated_total": sum(
                plan.bytes_migrated for plan in self.migration_plans
            ),
            "naive_reshuffle_keys": sum(
                plan.total_keys for plan in self.migration_plans
            ),
            "migration_seconds_total": stats.migration_seconds,
            "interference_seconds_total": stats.migration_interference_seconds,
            "handed_off_requests": self.stats.handed_off,
            "per_epoch_imbalance": self.per_epoch_imbalance(total_simulated_time),
        }

    def replication_metrics(self) -> Dict[str, object]:
        """The ``replication`` health section of the scenario report."""
        repair_plans = [plan for plan in self.migration_plans if plan.kind == "repair"]
        replicate_plans = [
            plan for plan in self.migration_plans if plan.kind == "set-replication"
        ]
        throttle = self.spec.throttle
        throttle_metrics: Optional[Dict[str, object]] = None
        if throttle is not None:
            observed: Dict[str, float] = {}
            for member in self.members:
                if member.device is None:
                    continue
                migration_intervals = [
                    interval
                    for interval in member.device.busy_intervals
                    if interval.kind == "migration"
                ]
                if len(migration_intervals) <= throttle.burst:
                    continue
                # Sustained rate between token consumptions (job starts).
                # The first `burst` jobs ride pre-accrued tokens and are
                # spaced only by transfer time, so they are excluded from
                # the numerator: the figure is never above the configured
                # cap, which auditors compare it against.
                window = migration_intervals[-1].start - migration_intervals[0].start
                observed[member.device_id] = (
                    (len(migration_intervals) - throttle.burst) / window
                    if window > 0
                    else 0.0
                )
            throttle_metrics = {
                "objects_per_second": throttle.objects_per_second,
                "burst": throttle.burst,
                "deferrals": self.device_stats.migration_deferrals,
                "observed_objects_per_second": observed,
            }
        return {
            "initial_replication": self.spec.replication,
            "replication": self.membership.replication,
            "effective_replication": self.effective_replication,
            "repair_enabled": self.spec.repair,
            "changes": [
                record.to_dict()
                for record in self.membership.epoch_log
                if record.kind == "set-replication"
            ],
            "per_epoch": list(self.replication_log),
            "under_replicated_keys": self._under_replicated_count(self.placement),
            "repair_objects": sum(plan.objects_migrated for plan in repair_plans),
            "repair_seconds": sum(plan.migration_seconds for plan in repair_plans),
            "replicate_objects": sum(
                plan.objects_migrated for plan in replicate_plans
            ),
            "replicate_seconds": sum(
                plan.migration_seconds for plan in replicate_plans
            ),
            "replicas_trimmed_total": sum(
                plan.replicas_trimmed for plan in self.migration_plans
            ),
            "dropped_migration_jobs": self.stats.dropped_migration_jobs,
            # Migration I/O still queued when the run ended.  The copies
            # already landed at plan time, so nothing is lost — but their
            # charge is missing from migration/interference seconds, and a
            # throttle paced slower than the workload makes this non-zero.
            "unfinished_migration_jobs": sum(
                member.device.pending_migration_jobs()
                for member in self.members
                if member.device is not None
            ),
            "throttle": throttle_metrics,
        }

    def routing_metrics(self) -> Dict[str, object]:
        """The ``routing`` section of the scenario report: replica-choice
        split, per-device weights/EWMAs, the fleet-wide latency distribution
        and (when configured) the feedback rebalancer's tick log."""
        from repro.cluster.metrics import mean, percentile

        vnode_counts: Dict[str, int] = dict(
            zip(self._placement_roster, self._placement_vnode_counts)
        )
        per_device: Dict[str, Dict[str, object]] = {}
        for member in self.members:
            completed = member.ewma.count if member.ewma is not None else 0
            per_device[member.device_id] = {
                "weight": self._member_weights.get(member.device_id, 1.0),
                # ``None`` for non-ring placements and devices outside the
                # current roster (left / failed members keep no arc share).
                "vnode_count": vnode_counts.get(member.device_id),
                "completed_requests": completed,
                "ewma_latency_seconds": (
                    member.ewma.value
                    if member.ewma is not None and completed
                    else None
                ),
                "mean_latency_seconds": (
                    member.latency_sum / completed if completed else None
                ),
            }
        samples = self.stats.request_latency.samples
        request_latency: Dict[str, object] = {
            "count": len(samples),
            "mean": mean(samples),
            "p50": percentile(samples, 0.50) if samples else 0.0,
            "p95": percentile(samples, 0.95) if samples else 0.0,
            "p99": percentile(samples, 0.99) if samples else 0.0,
            "max": max(samples) if samples else 0.0,
        }
        policy = self.spec.rebalance
        rebalancer: Optional[Dict[str, object]] = None
        if policy is not None:
            rebalancer = {
                "interval_seconds": policy.interval_seconds,
                "imbalance_threshold": policy.imbalance_threshold,
                "min_weight_delta": policy.min_weight_delta,
                "ticks": len(self.rebalance_log),
                "reweight_epochs": sum(
                    1 for entry in self.rebalance_log if entry["triggered"]
                ),
                "log": list(self.rebalance_log),
            }
        return {
            "replica_policy": self.spec.replica_policy,
            "weighting": self.spec.weighting,
            "ewma_alpha": self.spec.ewma_alpha,
            "replica_choices": {
                "primary": self.stats.choice_primary,
                "diverted": self.stats.choice_diverted,
            },
            "per_device": per_device,
            "request_latency": request_latency,
            "rebalancer": rebalancer,
        }

    def metrics(self, total_simulated_time: float) -> Dict[str, object]:
        """Fleet-level metrics section of the scenario report."""
        # Imported here, not at module level: repro.cluster composes the
        # fleet router, so a top-level import would be circular.
        from repro.cluster.metrics import imbalance_coefficient, jain_fairness

        per_device: Dict[str, Dict[str, object]] = {}
        busy_values: List[float] = []
        for member in self.members:
            busy = member.busy_seconds()
            busy_values.append(busy)
            per_device[member.device_id] = {
                "alive": member.alive,
                "failed_at": member.failed_at,
                "objects_placed": len(member.object_keys),
                "objects_served": member.objects_served(),
                "group_switches": (
                    member.device.stats.group_switches if member.device else 0
                ),
                "requests_routed": member.requests_routed,
                "busy_seconds": busy,
                "utilization": (
                    busy / total_simulated_time if total_simulated_time > 0 else 0.0
                ),
            }

        served_by_tenant = {
            tenant: sum(per_device_counts.values())
            for tenant, per_device_counts in sorted(
                self.stats.per_tenant_device_served.items()
            )
        }
        # Per-tenant spread: how evenly each tenant's objects were served
        # across the devices holding at least one replica of its data.
        tenant_spread = {
            tenant: jain_fairness(
                [
                    per_device_counts.get(member.device_id, 0)
                    for member in self.members
                    if any(key.startswith(f"{tenant}/") for key in member.object_keys)
                ]
            )
            for tenant, per_device_counts in sorted(
                self.stats.per_tenant_device_served.items()
            )
        }

        total_served = sum(member.objects_served() for member in self.members)
        return {
            "devices": len(self.members),
            "replication": self.membership.replication,
            "placement": self.spec.placement,
            "replica_policy": self.spec.replica_policy,
            "per_device": per_device,
            "imbalance_coefficient": imbalance_coefficient(busy_values),
            "aggregate_throughput": (
                total_served / total_simulated_time if total_simulated_time > 0 else 0.0
            ),
            "tenant_fairness": (
                jain_fairness(list(served_by_tenant.values()))
                if served_by_tenant
                else 1.0
            ),
            "per_tenant_spread": tenant_spread,
            "requests_routed": self.stats.requests_routed,
            "failed_over_requests": self.stats.failed_over,
            "lost_objects": self.pending_total(),
        }
