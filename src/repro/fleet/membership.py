"""Epoch-versioned fleet membership.

:class:`FleetMembership` is the single source of truth for *who is in the
fleet right now*: the ordered device roster, each device's (possibly
heterogeneous) :class:`~repro.csd.device.DeviceConfig`, and the membership
**epoch** — a counter advanced by every join, leave and failure.  The router
consults it for placement device sets and exposes its epoch log so reports
can attribute per-epoch metrics (imbalance, migration volume) to the exact
membership window they were measured in.

The membership itself performs no simulation events; advancing an epoch is
pure bookkeeping, which is what keeps event-free fleets byte-identical to
the pre-elastic fleet layer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.csd.device import DeviceConfig
from repro.exceptions import FleetError
from repro.fleet.spec import DeviceJoin, DeviceProfile, FleetSpec, device_name


@dataclass
class MemberRecord:
    """One device's membership state (runtime objects live in the router)."""

    device_id: str
    index: int
    config: DeviceConfig
    joined_at: float = 0.0
    left_at: Optional[float] = None
    failed_at: Optional[float] = None

    @property
    def serving(self) -> bool:
        """Whether the device is a live placement target."""
        return self.left_at is None and self.failed_at is None


@dataclass(frozen=True)
class EpochRecord:
    """One membership change: which epoch it opened, when, and why."""

    epoch: int
    at_seconds: float
    kind: str  # "join" | "leave" | "failure" | "set-replication" | "reweight"
    device_id: str
    devices_before: int
    devices_after: int
    #: Replication factor in effect from this epoch on.
    replication: int = 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "epoch": self.epoch,
            "at_seconds": self.at_seconds,
            "kind": self.kind,
            "device": self.device_id,
            "devices_before": self.devices_before,
            "devices_after": self.devices_after,
            "replication": self.replication,
        }


def resolve_device_config(
    base: DeviceConfig,
    switch_seconds: Optional[float] = None,
    transfer_seconds: Optional[float] = None,
) -> DeviceConfig:
    """Derive a per-device config from the scenario-wide base config."""
    if switch_seconds is None and transfer_seconds is None:
        return base
    return replace(
        base,
        group_switch_seconds=(
            base.group_switch_seconds if switch_seconds is None else switch_seconds
        ),
        transfer_seconds_per_object=(
            base.transfer_seconds_per_object
            if transfer_seconds is None
            else transfer_seconds
        ),
    )


class FleetMembership:
    """The live device roster plus the epoch counter over its history."""

    def __init__(self, spec: FleetSpec, base_config: DeviceConfig) -> None:
        self.spec = spec
        self.base_config = base_config
        self.epoch = 0
        #: Replication factor currently in effect (``SetReplication`` events
        #: move it away from ``spec.replication``).
        self.replication = spec.replication
        #: Every membership change, oldest first (epoch 0 has no record:
        #: it is the initial roster).
        self.epoch_log: List[EpochRecord] = []
        self._profile_by_index: Dict[int, DeviceProfile] = {
            profile.device: profile for profile in spec.profiles
        }
        self._records: Dict[str, MemberRecord] = {}
        self._order: List[str] = []
        for index in range(spec.devices):
            profile = self._profile_by_index.get(index)
            config = resolve_device_config(
                base_config,
                switch_seconds=profile.switch_seconds if profile else None,
                transfer_seconds=profile.transfer_seconds if profile else None,
            )
            self._add_record(MemberRecord(device_name(index), index, config))

    def _add_record(self, record: MemberRecord) -> None:
        self._records[record.device_id] = record
        self._order.append(record.device_id)

    # ------------------------------------------------------------------ #
    # Roster queries
    # ------------------------------------------------------------------ #
    def record(self, device_id: str) -> MemberRecord:
        try:
            return self._records[device_id]
        except KeyError:
            raise FleetError(f"unknown fleet member {device_id!r}") from None

    @property
    def records(self) -> List[MemberRecord]:
        """Every device ever part of the fleet, in join order."""
        return [self._records[device_id] for device_id in self._order]

    def serving_ids(self) -> Tuple[str, ...]:
        """Live placement targets (joined, not left, not failed), in order."""
        return tuple(
            device_id
            for device_id in self._order
            if self._records[device_id].serving
        )

    def device_config(self, device_id: str) -> DeviceConfig:
        """The (possibly heterogeneous) config of one member."""
        return self.record(device_id).config

    @property
    def heterogeneous(self) -> bool:
        """Whether any member's config differs from the base config."""
        return any(record.config != self.base_config for record in self.records)

    # ------------------------------------------------------------------ #
    # Membership changes — each advances the epoch
    # ------------------------------------------------------------------ #
    def _advance(self, kind: str, device_id: str, at_seconds: float) -> EpochRecord:
        if self.epoch_log and at_seconds < self.epoch_log[-1].at_seconds:
            raise FleetError(
                f"membership change at {at_seconds} precedes epoch "
                f"{self.epoch}'s change at {self.epoch_log[-1].at_seconds}"
            )
        devices_before = len(self.serving_ids())
        self.epoch += 1
        record = EpochRecord(
            epoch=self.epoch,
            at_seconds=at_seconds,
            kind=kind,
            device_id=device_id,
            devices_before=devices_before,
            # Filled by the caller mutating the roster first would race; the
            # roster is mutated before _advance in every path below.
            devices_after=devices_before,
            replication=self.replication,
        )
        return record

    def _join_config(self, event: DeviceJoin) -> DeviceConfig:
        """Resolve a joiner's config: its own overrides win over its profile."""
        profile = self._profile_by_index.get(event.device)
        return resolve_device_config(
            self.base_config,
            switch_seconds=(
                event.switch_seconds
                if event.switch_seconds is not None
                else (profile.switch_seconds if profile else None)
            ),
            transfer_seconds=(
                event.transfer_seconds
                if event.transfer_seconds is not None
                else (profile.transfer_seconds if profile else None)
            ),
        )

    def join(self, event: DeviceJoin, at_seconds: float) -> MemberRecord:
        """Add the joining device to the roster and open a new epoch."""
        device_id = device_name(event.device)
        if device_id in self._records:
            raise FleetError(f"device {device_id!r} is already a fleet member")
        epoch = self._advance("join", device_id, at_seconds)
        config = self._join_config(event)
        member = MemberRecord(
            device_id=device_id,
            index=event.device,
            config=config,
            joined_at=at_seconds,
        )
        self._add_record(member)
        self.epoch_log.append(
            replace(epoch, devices_after=len(self.serving_ids()))
        )
        return member

    def leave(self, device_id: str, at_seconds: float) -> MemberRecord:
        """Gracefully retire a member and open a new epoch."""
        member = self.record(device_id)
        if not member.serving:
            raise FleetError(f"device {device_id!r} is not serving; cannot leave")
        epoch = self._advance("leave", device_id, at_seconds)
        member.left_at = at_seconds
        self.epoch_log.append(
            replace(epoch, devices_after=len(self.serving_ids()))
        )
        return member

    def fail(self, device_id: str, at_seconds: float) -> MemberRecord:
        """Mark a member fail-stopped and open a new epoch (no migration)."""
        member = self.record(device_id)
        if not member.serving:
            raise FleetError(f"device {device_id!r} is not serving; cannot fail")
        epoch = self._advance("failure", device_id, at_seconds)
        member.failed_at = at_seconds
        self.epoch_log.append(
            replace(epoch, devices_after=len(self.serving_ids()))
        )
        return member

    def set_replication(self, replication: int, at_seconds: float) -> EpochRecord:
        """Change the replication factor in effect and open a new epoch.

        The roster is untouched; the caller (the router) diffs the placement
        at the old vs new R and re-replicates or trims accordingly.
        """
        if replication < 1:
            raise FleetError(f"replication factor must be >= 1, got {replication}")
        if replication == self.replication:
            raise FleetError(
                f"replication factor is already {replication}; nothing to change"
            )
        serving = len(self.serving_ids())
        if replication > serving:
            raise FleetError(
                f"cannot raise replication to {replication}: only {serving} "
                "device(s) are serving"
            )
        self.replication = replication
        epoch = self._advance("set-replication", "fleet", at_seconds)
        record = replace(epoch, devices_after=serving)
        self.epoch_log.append(record)
        return record

    def reweight(self, at_seconds: float) -> EpochRecord:
        """Open a new epoch for a placement reweight (roster untouched).

        The feedback rebalancer changes no member's life-cycle state — only
        the capacity weights the ring is built from — but the placement
        still moves, so the change must be epoch-versioned like any other
        recompute: reports and invariants attribute the resulting migration
        plan to this record.
        """
        serving = len(self.serving_ids())
        epoch = self._advance("reweight", "fleet", at_seconds)
        record = replace(epoch, devices_after=serving)
        self.epoch_log.append(record)
        return record

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def epoch_windows(self, end_time: float) -> List[Tuple[int, float, float]]:
        """``(epoch, start, end)`` windows covering ``[0, end_time]``."""
        windows: List[Tuple[int, float, float]] = []
        start = 0.0
        epoch = 0
        for record in self.epoch_log:
            boundary = min(record.at_seconds, end_time)
            windows.append((epoch, start, boundary))
            start = boundary
            epoch = record.epoch
        windows.append((epoch, start, max(start, end_time)))
        return windows
