"""Object placement across a fleet of cold storage devices.

A placement policy decides, for every object key, which R devices of the
fleet hold a replica.  The first device of each replica tuple is the
*primary*; the router prefers it unless the replica-choice policy or a
device failure says otherwise.

Placement is pure and deterministic: the same keys and device ids always
produce the same mapping, on every platform and Python version, which is
what lets fleet scenarios commit byte-identical golden metrics.  Hashes are
therefore derived from :mod:`hashlib`, never from Python's randomised
``hash()``.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import PlacementError

#: Placement policy names resolvable by :func:`build_placement`.
KNOWN_PLACEMENTS = ("consistent-hash", "round-robin")

#: Vnodes per device on the consistent-hash ring.  More vnodes smooth the
#: per-device share of the key space at the cost of a larger ring.
DEFAULT_VIRTUAL_NODES = 64


def stable_hash(text: str) -> int:
    """Deterministic 64-bit hash of ``text`` (platform independent).

    sha256 rather than md5: identical everywhere Python runs, including
    FIPS-mode builds where md5 raises at call time.
    """
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class PlacementPolicy:
    """Base class: maps every object key onto R distinct devices."""

    name = "base"

    def __init__(self, replication: int = 1) -> None:
        if replication < 1:
            raise PlacementError(f"replication must be >= 1, got {replication}")
        self.replication = replication

    def place(
        self, object_keys: Sequence[str], device_ids: Sequence[str]
    ) -> Dict[str, Tuple[str, ...]]:
        """Map each key to its replica devices (primary first)."""
        self._validate(object_keys, device_ids)
        return {key: self.replicas_for(key, device_ids) for key in object_keys}

    def replicas_for(self, object_key: str, device_ids: Sequence[str]) -> Tuple[str, ...]:
        """Replica devices for one key (primary first)."""
        raise NotImplementedError

    def _validate(self, object_keys: Sequence[str], device_ids: Sequence[str]) -> None:
        if not object_keys:
            raise PlacementError("placement requires at least one object key")
        if not device_ids:
            raise PlacementError("placement requires at least one device")
        if len(set(device_ids)) != len(device_ids):
            raise PlacementError("device ids must be unique")
        if self.replication > len(device_ids):
            raise PlacementError(
                f"replication factor {self.replication} exceeds fleet size "
                f"{len(device_ids)}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "replication": self.replication}


class RoundRobinPlacement(PlacementPolicy):
    """Deal keys onto devices in order: key *i* → devices ``i, i+1, …, i+R-1``.

    Perfectly balanced for uniform key populations, but adding a device
    relocates almost every key — the weakness consistent hashing fixes.
    """

    name = "round-robin"

    def place(
        self, object_keys: Sequence[str], device_ids: Sequence[str]
    ) -> Dict[str, Tuple[str, ...]]:
        self._validate(object_keys, device_ids)
        count = len(device_ids)
        return {
            key: tuple(
                device_ids[(index + replica) % count]
                for replica in range(self.replication)
            )
            for index, key in enumerate(object_keys)
        }

    def replicas_for(self, object_key: str, device_ids: Sequence[str]) -> Tuple[str, ...]:
        raise PlacementError(
            "round-robin placement is positional; use place() over the full key list"
        )


class ConsistentHashPlacement(PlacementPolicy):
    """Classic consistent hashing with virtual nodes and R-way replication.

    Each device contributes ``virtual_nodes`` points on a 64-bit ring; a key
    is owned by the first R *distinct* devices found walking clockwise from
    the key's hash.  Adding one device to an N-device ring relocates only
    ~K/(N+1) of K keys.
    """

    name = "consistent-hash"

    def __init__(self, replication: int = 1, virtual_nodes: int = DEFAULT_VIRTUAL_NODES) -> None:
        super().__init__(replication)
        if virtual_nodes < 1:
            raise PlacementError(f"virtual_nodes must be >= 1, got {virtual_nodes}")
        self.virtual_nodes = virtual_nodes
        self._ring_cache: Dict[Tuple[str, ...], Tuple[List[int], List[str]]] = {}

    def _ring(self, device_ids: Sequence[str]) -> Tuple[List[int], List[str]]:
        cache_key = tuple(device_ids)
        cached = self._ring_cache.get(cache_key)
        if cached is not None:
            return cached
        points: List[Tuple[int, str]] = []
        for device_id in device_ids:
            for vnode in range(self.virtual_nodes):
                points.append((stable_hash(f"{device_id}#{vnode}"), device_id))
        # Ties between devices at the same ring point are broken by device id
        # so the ring is independent of the listing order of the fleet.
        points.sort()
        hashes = [point for point, _device in points]
        owners = [device for _point, device in points]
        self._ring_cache[cache_key] = (hashes, owners)
        return hashes, owners

    def replicas_for(self, object_key: str, device_ids: Sequence[str]) -> Tuple[str, ...]:
        hashes, owners = self._ring(device_ids)
        position = bisect.bisect_right(hashes, stable_hash(object_key))
        replicas: List[str] = []
        for step in range(len(hashes)):
            owner = owners[(position + step) % len(hashes)]
            if owner not in replicas:
                replicas.append(owner)
                if len(replicas) == self.replication:
                    break
        return tuple(replicas)

    def to_dict(self) -> Dict[str, object]:
        description = super().to_dict()
        description["virtual_nodes"] = self.virtual_nodes
        return description


def build_placement(
    name: str, replication: int, virtual_nodes: int = DEFAULT_VIRTUAL_NODES
) -> PlacementPolicy:
    """Resolve a placement policy name into a policy object."""
    if name == "consistent-hash":
        return ConsistentHashPlacement(replication, virtual_nodes=virtual_nodes)
    if name == "round-robin":
        return RoundRobinPlacement(replication)
    raise PlacementError(
        f"unknown placement policy {name!r}; expected one of {sorted(KNOWN_PLACEMENTS)}"
    )
