"""Object placement across a fleet of cold storage devices.

A placement policy decides, for every object key, which R devices of the
fleet hold a replica.  The first device of each replica tuple is the
*primary*; the router prefers it unless the replica-choice policy or a
device failure says otherwise.

Placement is pure and deterministic: the same keys and device ids always
produce the same mapping, on every platform and Python version, which is
what lets fleet scenarios commit byte-identical golden metrics.  Hashes are
therefore derived from :mod:`hashlib`, never from Python's randomised
``hash()``.
"""

from __future__ import annotations

import bisect
import hashlib
import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError, PlacementError

#: Placement policy names resolvable by :func:`build_placement`.
KNOWN_PLACEMENTS = ("consistent-hash", "round-robin")

#: Vnodes per device on the consistent-hash ring.  More vnodes smooth the
#: per-device share of the key space at the cost of a larger ring.
DEFAULT_VIRTUAL_NODES = 64


def normalize_weights(weights: Mapping[str, float]) -> Dict[str, float]:
    """Mean-normalise per-device capacity weights to average exactly 1.0.

    A normalised weight of 1.0 means "vanilla device": it gets the default
    vnode count.  Degenerate inputs (empty mapping, zero/negative/non-finite
    weights) raise :class:`~repro.exceptions.ConfigurationError` rather than
    silently collapsing to uniform or NaN shares.  All-equal inputs map to
    exactly 1.0 each — not merely approximately — so an equally-weighted
    ring is byte-identical to an unweighted one.
    """
    if not weights:
        raise ConfigurationError("capacity weights must be a non-empty mapping")
    for device_id, weight in weights.items():
        if isinstance(weight, bool) or not isinstance(weight, (int, float)):
            raise ConfigurationError(
                f"capacity weight for {device_id!r} must be a number, got {weight!r}"
            )
        if not math.isfinite(weight) or weight <= 0:
            raise ConfigurationError(
                f"capacity weight for {device_id!r} must be finite and "
                f"positive, got {weight!r}"
            )
    values = list(weights.values())
    if all(value == values[0] for value in values):
        return {device_id: 1.0 for device_id in weights}
    mean = math.fsum(values) / len(values)
    return {device_id: weight / mean for device_id, weight in weights.items()}


def stable_hash(text: str) -> int:
    """Deterministic 64-bit hash of ``text`` (platform independent).

    sha256 rather than md5: identical everywhere Python runs, including
    FIPS-mode builds where md5 raises at call time.
    """
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big")


class PlacementPolicy:
    """Base class: maps every object key onto R distinct devices."""

    name = "base"

    def __init__(self, replication: int = 1) -> None:
        if replication < 1:
            raise PlacementError(f"replication must be >= 1, got {replication}")
        self.replication = replication

    def place(
        self, object_keys: Sequence[str], device_ids: Sequence[str]
    ) -> Dict[str, Tuple[str, ...]]:
        """Map each key to its replica devices (primary first)."""
        self._validate(object_keys, device_ids)
        return {key: self.replicas_for(key, device_ids) for key in object_keys}

    def replicas_for(self, object_key: str, device_ids: Sequence[str]) -> Tuple[str, ...]:
        """Replica devices for one key (primary first)."""
        raise NotImplementedError

    def _validate(self, object_keys: Sequence[str], device_ids: Sequence[str]) -> None:
        if not object_keys:
            raise PlacementError("placement requires at least one object key")
        if not device_ids:
            raise PlacementError("placement requires at least one device")
        if len(set(device_ids)) != len(device_ids):
            raise PlacementError("device ids must be unique")
        if self.replication > len(device_ids):
            raise PlacementError(
                f"replication factor {self.replication} exceeds fleet size "
                f"{len(device_ids)}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "replication": self.replication}


class RoundRobinPlacement(PlacementPolicy):
    """Deal keys onto devices in order: key *i* → devices ``i, i+1, …, i+R-1``.

    Perfectly balanced for uniform key populations, but adding a device
    relocates almost every key — the weakness consistent hashing fixes.
    """

    name = "round-robin"

    def place(
        self, object_keys: Sequence[str], device_ids: Sequence[str]
    ) -> Dict[str, Tuple[str, ...]]:
        self._validate(object_keys, device_ids)
        count = len(device_ids)
        return {
            key: tuple(
                device_ids[(index + replica) % count]
                for replica in range(self.replication)
            )
            for index, key in enumerate(object_keys)
        }

    def replicas_for(self, object_key: str, device_ids: Sequence[str]) -> Tuple[str, ...]:
        raise PlacementError(
            "round-robin placement is positional; use place() over the full key list"
        )


class ConsistentHashPlacement(PlacementPolicy):
    """Consistent hashing with (optionally weighted) virtual nodes and R-way
    replication.

    Each device contributes ``virtual_nodes`` points on a 64-bit ring — or,
    once :meth:`set_weights` installs capacity weights, a vnode count
    proportional to its weight — and a key is owned by the first R *distinct*
    devices found walking clockwise from the key's hash.  Adding one device
    to an N-device ring relocates only ~K/(N+1) of K keys; reweighting a
    device shifts only the arcs its gained/lost vnodes cover.
    """

    name = "consistent-hash"

    def __init__(self, replication: int = 1, virtual_nodes: int = DEFAULT_VIRTUAL_NODES) -> None:
        super().__init__(replication)
        if virtual_nodes < 1:
            raise PlacementError(f"virtual_nodes must be >= 1, got {virtual_nodes}")
        self.virtual_nodes = virtual_nodes
        #: Mean-normalised capacity weights; empty = uniform (every device
        #: contributes exactly ``virtual_nodes`` points).
        self._weights: Dict[str, float] = {}
        self._ring_cache: Dict[
            Tuple[Tuple[str, ...], Tuple[int, ...]], Tuple[List[int], List[str]]
        ] = {}
        #: (roster, vnode counts, R) -> replica tuple per ring arc; see
        #: :meth:`_segments`.
        self._segment_cache: Dict[
            Tuple[Tuple[str, ...], Tuple[int, ...], int],
            Tuple[List[int], List[Tuple[str, ...]]],
        ] = {}
        self._key_hash_cache: Dict[str, int] = {}

    def set_weights(self, weights: Optional[Mapping[str, float]]) -> None:
        """Install capacity weights driving per-device vnode counts.

        ``None`` (or an empty mapping) resets the ring to uniform.  Weights
        are mean-normalised (see :func:`normalize_weights`); devices absent
        from the mapping default to weight 1.0.  Rings for every distinct
        (roster, counts) pair stay cached, so flipping between weight sets
        (old vs new epoch) costs nothing after the first build.
        """
        if not weights:
            self._weights = {}
            return
        self._weights = normalize_weights(weights)

    @property
    def weights(self) -> Dict[str, float]:
        """The installed mean-normalised weights (empty = uniform)."""
        return dict(self._weights)

    def vnode_counts(self, device_ids: Sequence[str]) -> Tuple[int, ...]:
        """Per-device ring point counts under the installed weights.

        A device of normalised weight *w* contributes
        ``max(1, round(virtual_nodes * w))`` points, so weight 1.0 yields
        exactly ``virtual_nodes`` — an all-equal-weights ring is
        byte-identical to the unweighted one.
        """
        if not self._weights:
            return (self.virtual_nodes,) * len(device_ids)
        return tuple(
            max(1, round(self.virtual_nodes * self._weights.get(device_id, 1.0)))
            for device_id in device_ids
        )

    def key_hash(self, object_key: str) -> int:
        """Memoised :func:`stable_hash` of an object key."""
        cached = self._key_hash_cache.get(object_key)
        if cached is None:
            cached = stable_hash(object_key)
            self._key_hash_cache[object_key] = cached
        return cached

    def bulk_key_hashes(self, object_keys: Sequence[str]) -> List[int]:
        """Memoised :func:`stable_hash` of many keys with the per-call overhead
        (method dispatch, attribute lookups) hoisted out of the loop."""
        cache = self._key_hash_cache
        cache_get = cache.get
        sha256 = hashlib.sha256
        from_bytes = int.from_bytes
        hashes: List[int] = []
        append = hashes.append
        for key in object_keys:
            value = cache_get(key)
            if value is None:
                value = from_bytes(sha256(key.encode()).digest()[:8], "big")
                cache[key] = value
            append(value)
        return hashes

    def _ring(
        self, device_ids: Sequence[str], vnode_counts: Optional[Sequence[int]] = None
    ) -> Tuple[List[int], List[str]]:
        counts = (
            tuple(vnode_counts) if vnode_counts is not None else self.vnode_counts(device_ids)
        )
        if len(counts) != len(device_ids):
            raise PlacementError(
                f"vnode_counts has {len(counts)} entries for "
                f"{len(device_ids)} devices"
            )
        cache_key = (tuple(device_ids), counts)
        cached = self._ring_cache.get(cache_key)
        if cached is not None:
            return cached
        points: List[Tuple[int, str]] = []
        for device_id, count in zip(device_ids, counts):
            if count < 1:
                raise PlacementError(
                    f"device {device_id!r} needs at least one vnode, got {count}"
                )
            for vnode in range(count):
                points.append((stable_hash(f"{device_id}#{vnode}"), device_id))
        # Ties between devices at the same ring point are broken by device id
        # so the ring is independent of the listing order of the fleet.
        points.sort()
        hashes = [point for point, _device in points]
        owners = [device for _point, device in points]
        self._ring_cache[cache_key] = (hashes, owners)
        return hashes, owners

    def _segments(
        self,
        device_ids: Sequence[str],
        replication: int,
        vnode_counts: Optional[Sequence[int]] = None,
    ) -> Tuple[List[int], List[Tuple[str, ...]]]:
        """Ring hashes plus the replica tuple owning each ring arc.

        A key hashing into the arc that ends at ring point ``i`` (i.e. with
        ``bisect_right(hashes, key_hash) % V == i``) is owned by
        ``replicas_by_arc[i]`` — the first ``replication`` distinct devices
        on the clockwise walk from ``i``.  Precomputing the walk once per
        (roster, R) turns per-key placement into a bisect plus a list
        lookup, and lets epoch diffs compare arcs instead of keys.
        """
        counts = (
            tuple(vnode_counts) if vnode_counts is not None else self.vnode_counts(device_ids)
        )
        cache_key = (tuple(device_ids), counts, replication)
        cached = self._segment_cache.get(cache_key)
        if cached is not None:
            return cached
        hashes, owners = self._ring(device_ids, counts)
        ring_size = len(hashes)
        replicas_by_arc: List[Tuple[str, ...]] = []
        for position in range(ring_size):
            replicas: List[str] = []
            for step in range(ring_size):
                owner = owners[(position + step) % ring_size]
                if owner not in replicas:
                    replicas.append(owner)
                    if len(replicas) == replication:
                        break
            replicas_by_arc.append(tuple(replicas))
        result = (hashes, replicas_by_arc)
        self._segment_cache[cache_key] = result
        return result

    def place(
        self,
        object_keys: Sequence[str],
        device_ids: Sequence[str],
        *,
        sorted_key_hashes: Optional[Sequence[Tuple[int, str]]] = None,
    ) -> Dict[str, Tuple[str, ...]]:
        """Bulk arc-sweep placement.

        Instead of one ring bisect per key (O(K·log V)), sort the key hashes
        once and walk keys and ring arcs together with two pointers, assigning
        whole runs of keys per arc — O(K log K + V), and O(K + V) when the
        caller supplies a pre-sorted ``(hash, key)`` list (the fleet router
        keeps one for epoch diffs and passes it back in here).
        """
        self._validate(object_keys, device_ids)
        hashes, replicas_by_arc = self._segments(device_ids, self.replication)
        ring_size = len(hashes)
        if sorted_key_hashes is None:
            sorted_key_hashes = sorted(zip(self.bulk_key_hashes(object_keys), object_keys))
        # Two-pointer sweep: key hashes ascend, so the owning arc index
        # (== bisect_right(hashes, key_hash)) only ever moves forward.
        owners: Dict[str, Tuple[str, ...]] = {}
        position = 0
        for key_hash_value, key in sorted_key_hashes:
            while position < ring_size and hashes[position] <= key_hash_value:
                position += 1
            owners[key] = replicas_by_arc[position % ring_size]
        # Re-emit in the caller's key order: downstream consumers (layout
        # build, migration plans, golden metrics) iterate the placement dict
        # and rely on its insertion order matching the key population order.
        return {key: owners[key] for key in object_keys}

    def replicas_for(self, object_key: str, device_ids: Sequence[str]) -> Tuple[str, ...]:
        hashes, replicas_by_arc = self._segments(device_ids, self.replication)
        position = bisect.bisect_right(hashes, self.key_hash(object_key))
        return replicas_by_arc[position % len(hashes)]

    def diff_keys(
        self,
        sorted_key_hashes: Sequence[Tuple[int, str]],
        old_device_ids: Sequence[str],
        new_device_ids: Sequence[str],
        old_replication: int,
        new_replication: int,
        old_vnode_counts: Optional[Sequence[int]] = None,
        new_vnode_counts: Optional[Sequence[int]] = None,
    ) -> Dict[str, Tuple[str, ...]]:
        """Keys whose replica tuple differs between two (roster, counts, R)
        epochs.

        ``sorted_key_hashes`` is the full key population as ``(hash, key)``
        pairs sorted ascending (computed once per run — key hashes never
        change).  Both rings are walked with two pointers over the merged
        arc boundaries; runs of keys falling into arcs with identical old
        and new replica tuples are skipped in one bisect jump, so the cost
        is O(changed ranges + ring size) instead of a full re-placement of
        every key — weighted or not.  ``old_vnode_counts`` /
        ``new_vnode_counts`` identify each epoch's (possibly weighted) ring;
        ``None`` means the uniform ring (``virtual_nodes`` points per
        device), *not* the currently installed weights — callers diffing a
        reweight pass both explicitly.  Returns ``{key: new_replicas}`` for
        exactly the keys a full old-vs-new placement diff would report as
        changed.
        """
        if not new_device_ids:
            raise PlacementError("placement requires at least one device")
        if len(set(new_device_ids)) != len(new_device_ids):
            raise PlacementError("device ids must be unique")
        if new_replication > len(new_device_ids):
            raise PlacementError(
                f"replication factor {new_replication} exceeds fleet size "
                f"{len(new_device_ids)}"
            )
        if old_vnode_counts is None:
            old_vnode_counts = (self.virtual_nodes,) * len(old_device_ids)
        if new_vnode_counts is None:
            new_vnode_counts = (self.virtual_nodes,) * len(new_device_ids)
        old_hashes, old_arcs = self._segments(
            old_device_ids, old_replication, old_vnode_counts
        )
        new_hashes, new_arcs = self._segments(
            new_device_ids, new_replication, new_vnode_counts
        )
        old_size = len(old_hashes)
        new_size = len(new_hashes)
        key_hashes = [pair[0] for pair in sorted_key_hashes]
        total = len(sorted_key_hashes)
        changed: Dict[str, Tuple[str, ...]] = {}
        bisect_left = bisect.bisect_left
        index = 0
        old_pos = 0
        new_pos = 0
        while index < total:
            key_hash = key_hashes[index]
            while old_pos < old_size and old_hashes[old_pos] <= key_hash:
                old_pos += 1
            while new_pos < new_size and new_hashes[new_pos] <= key_hash:
                new_pos += 1
            old_replicas = old_arcs[old_pos % old_size]
            new_replicas = new_arcs[new_pos % new_size]
            # Keys up to the next arc boundary (of either ring) share both
            # replica tuples; a key hashing exactly onto a boundary belongs
            # to the *next* arc (bisect_right semantics), so the run ends
            # strictly before the boundary.
            boundaries = []
            if old_pos < old_size:
                boundaries.append(old_hashes[old_pos])
            if new_pos < new_size:
                boundaries.append(new_hashes[new_pos])
            if boundaries:
                limit = bisect_left(key_hashes, min(boundaries), index)
            else:
                limit = total
            if old_replicas != new_replicas:
                for position in range(index, limit):
                    changed[sorted_key_hashes[position][1]] = new_replicas
            index = limit
        return changed

    def to_dict(self) -> Dict[str, object]:
        description = super().to_dict()
        description["virtual_nodes"] = self.virtual_nodes
        return description


def build_placement(
    name: str, replication: int, virtual_nodes: int = DEFAULT_VIRTUAL_NODES
) -> PlacementPolicy:
    """Resolve a placement policy name into a policy object."""
    if name == "consistent-hash":
        return ConsistentHashPlacement(replication, virtual_nodes=virtual_nodes)
    if name == "round-robin":
        return RoundRobinPlacement(replication)
    raise PlacementError(
        f"unknown placement policy {name!r}; expected one of {sorted(KNOWN_PLACEMENTS)}"
    )
