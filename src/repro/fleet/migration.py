"""Minimal migration plans between placement epochs.

When the fleet membership changes, the placement is recomputed over the new
device set and the two placements are diffed: only the keys whose replica
set actually changed move, each as one :class:`KeyMove` per gained replica
(read charged to a surviving source device, write to the destination).
Consistent hashing guarantees the plan stays near the information-theoretic
minimum — ~R·K/(N+1) of K keys for a join into an N-device fleet — which
the ``bounded-migration`` invariant pins against the naive full reshuffle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

#: Nominal object size used to report migration volume in bytes.  Objects in
#: the paper's setup are ~1 GB Swift blobs; the simulator does not model
#: payload sizes, so migration volume scales with the object count.
MIGRATION_OBJECT_BYTES = 1 << 30


@dataclass(frozen=True)
class KeyMove:
    """One replica copy: ``object_key`` streamed from ``source`` to ``dest``."""

    object_key: str
    source: str
    dest: str


@dataclass(frozen=True)
class KeyTrim:
    """One replica dropped from the placement (no I/O; layouts are
    append-only, so the object physically stays where it was).

    ``survivors`` counts the *live* devices in the key's replica set after
    the trim — the ``replication-repair`` invariant pins it at >= 1.  A
    placement recomputed over the serving roster always leaves live
    survivors; the count exists to catch a regression that diffs against a
    placement containing dead devices (e.g. computed over a stale roster),
    where a trim really could strand a key on corpses.
    """

    object_key: str
    device: str
    survivors: int


@dataclass
class MigrationPlan:
    """Everything one membership epoch moves, plus its execution totals."""

    epoch: int
    at_seconds: float
    kind: str  # "join" | "leave" | "repair" | "set-replication" | "reweight"
    device_id: str
    moves: List[KeyMove]
    total_keys: int
    devices_before: int
    devices_after: int
    replication: int = 1
    #: Whether the placement policy carries consistent hashing's minimality
    #: guarantee.  A repair on a round-robin fleet legitimately re-places
    #: nearly every key, so its bound is the full reshuffle, not ~2·R·K/N.
    hash_minimal: bool = True
    #: Replicas dropped from the placement by this epoch (R down, or a key's
    #: replica set shifting away from a device on a join/leave).
    trims: List[KeyTrim] = field(default_factory=list)
    #: Simulated seconds of migration I/O actually charged (filled in by the
    #: router as source reads and destination writes execute).
    migration_seconds: float = 0.0
    _moved_keys: Tuple[str, ...] = field(default=(), repr=False)

    def __post_init__(self) -> None:
        self._moved_keys = tuple(
            dict.fromkeys(move.object_key for move in self.moves)
        )

    @property
    def keys_moved(self) -> int:
        """Distinct keys whose replica set changed (the minimality metric)."""
        return len(self._moved_keys)

    @property
    def objects_migrated(self) -> int:
        """Replica copies performed (>= keys_moved when R > 1 shifts twice)."""
        return len(self.moves)

    @property
    def bytes_migrated(self) -> int:
        """Nominal bytes streamed between devices by this plan."""
        return self.objects_migrated * MIGRATION_OBJECT_BYTES

    def migration_bound(self) -> int:
        """Conservative upper bound on ``keys_moved`` for a minimal plan.

        A single join/leave on a consistent-hash ring relocates an expected
        ``R·K/N`` of K keys (N the smaller fleet size); doubling that absorbs
        hash variance at realistic vnode counts.  The same bound covers a
        read-repair pass (the dead device held ~R·K/N keys).  The naive
        comparator — a full reshuffle, e.g. round-robin placement — moves
        all K keys, so the bound is also capped there.  A replication-factor
        change is the one legitimate full sweep: raising R gives *every* key
        a new replica, so its bound is all K keys — as is any plan over a
        placement without the hash-minimality guarantee (a repair on a
        round-robin fleet re-places nearly everything by design).  A
        ``reweight`` epoch shares the full-sweep bound: shifting capacity
        weights resizes every device's arc share at once, so the fraction
        moved is set by the weight delta, not by 1/N.
        """
        if self.kind in ("set-replication", "reweight") or not self.hash_minimal:
            return self.total_keys
        smaller_fleet = max(1, min(self.devices_before, self.devices_after))
        return min(
            self.total_keys,
            -(-2 * self.replication * self.total_keys // smaller_fleet),
        )

    @property
    def keys_trimmed(self) -> int:
        """Distinct keys that lost at least one placement replica."""
        return len(set(trim.object_key for trim in self.trims))

    @property
    def replicas_trimmed(self) -> int:
        """Placement replicas dropped by this plan (no I/O charged)."""
        return len(self.trims)

    def to_dict(self) -> Dict[str, object]:
        return {
            "epoch": self.epoch,
            "at_seconds": self.at_seconds,
            "kind": self.kind,
            "device": self.device_id,
            "keys_moved": self.keys_moved,
            "objects_migrated": self.objects_migrated,
            "bytes_migrated": self.bytes_migrated,
            "keys_trimmed": self.keys_trimmed,
            "replicas_trimmed": self.replicas_trimmed,
            "migration_seconds": self.migration_seconds,
            "devices_before": self.devices_before,
            "devices_after": self.devices_after,
        }


def plan_migration(
    epoch: int,
    at_seconds: float,
    kind: str,
    device_id: str,
    old_placement: Mapping[str, Sequence[str]],
    new_placement: Mapping[str, Sequence[str]],
    alive: Optional[Mapping[str, bool]] = None,
    devices_before: int = 0,
    devices_after: int = 0,
    replication: int = 1,
    hash_minimal: bool = True,
    resident: Optional[Callable[[str, str], bool]] = None,
    changed_keys: Optional[Sequence[str]] = None,
) -> MigrationPlan:
    """Diff two placements into the minimal set of replica copies.

    For every key whose replica set gained a device, one :class:`KeyMove`
    streams the key from a surviving old replica (the first live one; when
    none is live, the departing ``device_id`` itself if it held the key —
    a leaver legitimately performs its decommissioning reads — and only
    then the primary, whatever its state).  Keys whose replica set is
    unchanged never appear — the "minimal plan" property the hypothesis
    suite checks.  ``resident(device_id, object_key)`` lets the caller skip
    copies whose destination still physically holds the object from an
    earlier epoch (replica sets can return to a former owner after several
    membership changes); such re-adoptions cost no I/O.

    Replicas *dropped* from a key's set (lowering R trims every key;
    joins/leaves shift sets away from devices) are recorded as
    :class:`KeyTrim` entries: pure placement bookkeeping, no I/O, each
    carrying the size of the key's surviving replica set.

    ``changed_keys``, when provided, must be exactly the keys whose replica
    set differs between the two placements, in ``old_placement`` iteration
    order; the diff then skips the (typically vast) unchanged majority.
    Keys with identical replica sets contribute neither moves nor trims, so
    the resulting plan is identical to a full scan.
    """
    moves: List[KeyMove] = []
    trims: List[KeyTrim] = []
    if changed_keys is None:
        items = old_placement.items()
    else:
        items = [(key, old_placement[key]) for key in changed_keys]
    for object_key, old_replicas in items:
        new_replicas = new_placement[object_key]
        for device in old_replicas:
            if device not in new_replicas:
                trims.append(
                    KeyTrim(
                        object_key=object_key,
                        device=device,
                        survivors=sum(
                            1
                            for survivor in new_replicas
                            if alive is None or alive.get(survivor, True)
                        ),
                    )
                )
        gained = [
            device
            for device in new_replicas
            if device not in old_replicas
            and not (resident is not None and resident(device, object_key))
        ]
        if not gained:
            continue
        source = next(
            (
                device
                for device in old_replicas
                if alive is None or alive.get(device, True)
            ),
            # No live replica left (e.g. the key sat on exactly the leaver
            # plus an earlier fail-stopped device): read from the leaver,
            # which still physically holds the data; a *failed* device must
            # never perform I/O again.
            device_id if device_id in old_replicas else old_replicas[0],
        )
        for dest in gained:
            moves.append(KeyMove(object_key=object_key, source=source, dest=dest))
    return MigrationPlan(
        epoch=epoch,
        at_seconds=at_seconds,
        kind=kind,
        device_id=device_id,
        moves=moves,
        trims=trims,
        total_keys=len(old_placement),
        devices_before=devices_before,
        devices_after=devices_after,
        replication=replication,
        hash_minimal=hash_minimal,
    )
