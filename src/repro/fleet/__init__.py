"""Sharded multi-CSD serving: placement, routing, replication, failover.

The fleet layer composes N simulated Cold Storage Devices into one
addressable storage service:

* :mod:`repro.fleet.placement` — :class:`PlacementPolicy` with
  consistent-hashing and round-robin implementations plus R-way replication.
* :mod:`repro.fleet.spec` — declarative :class:`FleetSpec` /
  :class:`DeviceFailure`, embedded in scenario specs.
* :mod:`repro.fleet.router` — :class:`FleetRouter`, the device-compatible
  facade performing replica choice, failover and metric aggregation.
"""

from repro.fleet.placement import (
    DEFAULT_VIRTUAL_NODES,
    KNOWN_PLACEMENTS,
    ConsistentHashPlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    build_placement,
    stable_hash,
)
from repro.fleet.router import FleetMember, FleetRouter, FleetRouterStats
from repro.fleet.spec import (
    KNOWN_REPLICA_POLICIES,
    DeviceFailure,
    FleetSpec,
    device_name,
)

__all__ = [
    "DEFAULT_VIRTUAL_NODES",
    "KNOWN_PLACEMENTS",
    "KNOWN_REPLICA_POLICIES",
    "ConsistentHashPlacement",
    "DeviceFailure",
    "FleetMember",
    "FleetRouter",
    "FleetRouterStats",
    "FleetSpec",
    "PlacementPolicy",
    "RoundRobinPlacement",
    "build_placement",
    "device_name",
    "stable_hash",
]
