"""Sharded multi-CSD serving: placement, routing, replication, elasticity.

The fleet layer composes N simulated Cold Storage Devices into one
addressable storage service:

* :mod:`repro.fleet.placement` — :class:`PlacementPolicy` with
  consistent-hashing and round-robin implementations plus R-way replication.
* :mod:`repro.fleet.spec` — declarative :class:`FleetSpec` with
  :class:`DeviceFailure`, membership events (:class:`DeviceJoin`,
  :class:`DeviceLeave`, :class:`SetReplication`), heterogeneous
  :class:`DeviceProfile` overrides, read-repair and
  :class:`MigrationThrottle` knobs, embedded in scenario specs.
* :mod:`repro.fleet.membership` — :class:`FleetMembership`, the
  epoch-versioned device roster (and replication factor) advanced by every
  join/leave/failure/R-change.
* :mod:`repro.fleet.migration` — minimal :class:`MigrationPlan` diffs
  between placement epochs, including replica :class:`KeyTrim` bookkeeping.
* :mod:`repro.fleet.router` — :class:`FleetRouter`, the device-compatible
  facade performing replica choice, failover, live rebalancing and metric
  aggregation.
"""

from repro.fleet.membership import (
    EpochRecord,
    FleetMembership,
    MemberRecord,
    resolve_device_config,
)
from repro.fleet.migration import (
    MIGRATION_OBJECT_BYTES,
    KeyMove,
    KeyTrim,
    MigrationPlan,
    plan_migration,
)
from repro.fleet.placement import (
    DEFAULT_VIRTUAL_NODES,
    KNOWN_PLACEMENTS,
    ConsistentHashPlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    build_placement,
    stable_hash,
)
from repro.fleet.router import FleetMember, FleetRouter, FleetRouterStats
from repro.fleet.spec import (
    KNOWN_REPLICA_POLICIES,
    DeviceFailure,
    DeviceJoin,
    DeviceLeave,
    DeviceProfile,
    FleetSpec,
    MigrationThrottle,
    SetReplication,
    device_name,
)

__all__ = [
    "DEFAULT_VIRTUAL_NODES",
    "KNOWN_PLACEMENTS",
    "KNOWN_REPLICA_POLICIES",
    "MIGRATION_OBJECT_BYTES",
    "ConsistentHashPlacement",
    "DeviceFailure",
    "DeviceJoin",
    "DeviceLeave",
    "DeviceProfile",
    "EpochRecord",
    "FleetMember",
    "FleetMembership",
    "FleetRouter",
    "FleetRouterStats",
    "FleetSpec",
    "KeyMove",
    "KeyTrim",
    "MemberRecord",
    "MigrationPlan",
    "MigrationThrottle",
    "PlacementPolicy",
    "RoundRobinPlacement",
    "SetReplication",
    "build_placement",
    "device_name",
    "plan_migration",
    "resolve_device_config",
    "stable_hash",
]
