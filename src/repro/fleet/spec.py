"""Declarative description of a storage fleet.

A :class:`FleetSpec` is pure data, embedded in a
:class:`~repro.scenarios.spec.ScenarioSpec` the same way tenants and device
knobs are: the scenario runner resolves it into a live
:class:`~repro.fleet.router.FleetRouter`.  ``devices=1, replication=1`` is
the degenerate single-CSD setup the original paper reproduces; anything
larger turns the run into a sharded multi-device experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.exceptions import ScenarioError
from repro.fleet.placement import DEFAULT_VIRTUAL_NODES, KNOWN_PLACEMENTS

#: Replica-choice policy names resolvable by the router.
KNOWN_REPLICA_POLICIES = ("primary-first", "least-loaded")


def device_name(index: int) -> str:
    """Canonical identifier of the ``index``-th device of a fleet."""
    return f"csd{index}"


@dataclass(frozen=True)
class DeviceFailure:
    """A device going dark (fail-stop) at a fixed simulated time.

    The device finishes the transfer it is performing at that instant, then
    stops serving; every request still queued on it is failed over to a live
    replica by the router.
    """

    device: int
    at_seconds: float

    def __post_init__(self) -> None:
        if self.device < 0:
            raise ScenarioError(f"failure device index must be >= 0, got {self.device}")
        if not math.isfinite(self.at_seconds) or self.at_seconds < 0:
            raise ScenarioError(
                f"failure time must be finite and non-negative, got {self.at_seconds!r}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {"device": self.device, "at_seconds": self.at_seconds}


@dataclass(frozen=True)
class FleetSpec:
    """Sharded multi-device fleet: size, replication, placement, failures."""

    devices: int = 2
    replication: int = 1
    placement: str = "consistent-hash"
    replica_policy: str = "primary-first"
    virtual_nodes: int = DEFAULT_VIRTUAL_NODES
    failures: Tuple[DeviceFailure, ...] = ()

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise ScenarioError(f"fleet needs at least one device, got {self.devices}")
        if not 1 <= self.replication <= self.devices:
            raise ScenarioError(
                f"replication must be between 1 and the fleet size "
                f"({self.devices}), got {self.replication}"
            )
        if self.placement not in KNOWN_PLACEMENTS:
            raise ScenarioError(
                f"unknown placement {self.placement!r}; "
                f"expected one of {sorted(KNOWN_PLACEMENTS)}"
            )
        if self.replica_policy not in KNOWN_REPLICA_POLICIES:
            raise ScenarioError(
                f"unknown replica policy {self.replica_policy!r}; "
                f"expected one of {sorted(KNOWN_REPLICA_POLICIES)}"
            )
        if self.virtual_nodes < 1:
            raise ScenarioError(f"virtual_nodes must be >= 1, got {self.virtual_nodes}")
        failed = [failure.device for failure in self.failures]
        if any(index >= self.devices for index in failed):
            raise ScenarioError(
                f"failure device index out of range for a {self.devices}-device fleet"
            )
        if len(set(failed)) != len(failed):
            raise ScenarioError("each device may fail at most once")
        if self.failures and self.replication < 2:
            raise ScenarioError(
                "device failures require replication >= 2; with a single "
                "replica the failed device's queued objects would be lost"
            )
        if len(self.failures) >= self.replication:
            raise ScenarioError(
                f"at most replication-1 devices may fail (R={self.replication}); "
                "otherwise some object could lose every replica"
            )

    @property
    def device_ids(self) -> Tuple[str, ...]:
        """Canonical identifiers of every device in the fleet."""
        return tuple(device_name(index) for index in range(self.devices))

    def to_dict(self) -> Dict[str, object]:
        return {
            "devices": self.devices,
            "replication": self.replication,
            "placement": self.placement,
            "replica_policy": self.replica_policy,
            "virtual_nodes": self.virtual_nodes,
            "failures": [failure.to_dict() for failure in self.failures],
        }
