"""Declarative description of a storage fleet.

A :class:`FleetSpec` is pure data, embedded in a
:class:`~repro.scenarios.spec.ScenarioSpec` the same way tenants and device
knobs are: the scenario runner resolves it into a live
:class:`~repro.fleet.router.FleetRouter`.  ``devices=1, replication=1`` is
the degenerate single-CSD setup the original paper reproduces; anything
larger turns the run into a sharded multi-device experiment.

Beyond the static shape (size, replication, placement) a fleet can be
*elastic*: ``events`` lists membership changes — :class:`DeviceJoin` and
:class:`DeviceLeave` — that fire at fixed simulated times and advance the
fleet's placement epoch, and ``profiles`` makes the fleet *heterogeneous* by
overriding individual devices' switch/transfer latencies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.exceptions import ScenarioError
from repro.fleet.placement import DEFAULT_VIRTUAL_NODES, KNOWN_PLACEMENTS

#: Replica-choice policy names resolvable by the router.
KNOWN_REPLICA_POLICIES = ("primary-first", "least-loaded")


def device_name(index: int) -> str:
    """Canonical identifier of the ``index``-th device of a fleet."""
    return f"csd{index}"


def _validate_event_time(label: str, at_seconds: float) -> None:
    if not math.isfinite(at_seconds) or at_seconds < 0:
        raise ScenarioError(
            f"{label} time must be finite and non-negative, got {at_seconds!r}"
        )


@dataclass(frozen=True)
class DeviceFailure:
    """A device going dark (fail-stop) at a fixed simulated time.

    The device finishes the transfer it is performing at that instant, then
    stops serving; every request still queued on it is failed over to a live
    replica by the router.  A failure advances the fleet's membership epoch
    but — unlike a graceful :class:`DeviceLeave` — triggers no migration:
    the dead device's data is simply re-served from surviving replicas.
    """

    device: int
    at_seconds: float

    def __post_init__(self) -> None:
        if self.device < 0:
            raise ScenarioError(f"failure device index must be >= 0, got {self.device}")
        _validate_event_time("failure", self.at_seconds)

    def to_dict(self) -> Dict[str, object]:
        return {"device": self.device, "at_seconds": self.at_seconds}


@dataclass(frozen=True)
class DeviceJoin:
    """A new device joining the fleet at a fixed simulated time.

    The join advances the membership epoch: placement is recomputed over the
    enlarged fleet and only the keys whose replica set changed are migrated
    onto the joiner (consistent hashing keeps that to ~R·K/(N+1) of K keys).
    ``switch_seconds`` / ``transfer_seconds`` optionally give the joiner its
    own device profile (e.g. a faster generation of hardware).
    """

    device: int
    at_seconds: float
    switch_seconds: Optional[float] = None
    transfer_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.device < 0:
            raise ScenarioError(f"join device index must be >= 0, got {self.device}")
        _validate_event_time("join", self.at_seconds)
        for label, value in (
            ("switch_seconds", self.switch_seconds),
            ("transfer_seconds", self.transfer_seconds),
        ):
            if value is None:
                continue
            if not math.isfinite(value) or value < 0:
                raise ScenarioError(
                    f"join {label} must be finite and non-negative, got {value!r}"
                )

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "join",
            "device": self.device,
            "at_seconds": self.at_seconds,
            "switch_seconds": self.switch_seconds,
            "transfer_seconds": self.transfer_seconds,
        }


@dataclass(frozen=True)
class DeviceLeave:
    """A device leaving the fleet gracefully at a fixed simulated time.

    The leave advances the membership epoch: placement is recomputed over
    the shrunken fleet, the leaver's queued requests are handed off to the
    new owners, and every key that held a replica on the leaver is migrated
    (read charged to a surviving source, write to the destination) before
    the device is decommissioned.
    """

    device: int
    at_seconds: float

    def __post_init__(self) -> None:
        if self.device < 0:
            raise ScenarioError(f"leave device index must be >= 0, got {self.device}")
        _validate_event_time("leave", self.at_seconds)

    def to_dict(self) -> Dict[str, object]:
        return {"kind": "leave", "device": self.device, "at_seconds": self.at_seconds}


@dataclass(frozen=True)
class DeviceProfile:
    """Per-device latency overrides making the fleet heterogeneous.

    ``None`` fields inherit the scenario-wide device config, so a profile
    can make one device slower at switching, faster at transferring, or
    both.
    """

    device: int
    switch_seconds: Optional[float] = None
    transfer_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.device < 0:
            raise ScenarioError(f"profile device index must be >= 0, got {self.device}")
        if self.switch_seconds is None and self.transfer_seconds is None:
            raise ScenarioError(
                f"profile for device {self.device} overrides nothing; drop it"
            )
        for label, value in (
            ("switch_seconds", self.switch_seconds),
            ("transfer_seconds", self.transfer_seconds),
        ):
            if value is None:
                continue
            if not math.isfinite(value) or value < 0:
                raise ScenarioError(
                    f"profile {label} must be finite and non-negative, got {value!r}"
                )

    def to_dict(self) -> Dict[str, object]:
        return {
            "device": self.device,
            "switch_seconds": self.switch_seconds,
            "transfer_seconds": self.transfer_seconds,
        }


#: Membership events accepted by ``FleetSpec.events``.
MembershipEvent = (DeviceJoin, DeviceLeave)


@dataclass(frozen=True)
class FleetSpec:
    """Sharded multi-device fleet: size, replication, placement, elasticity."""

    devices: int = 2
    replication: int = 1
    placement: str = "consistent-hash"
    replica_policy: str = "primary-first"
    virtual_nodes: int = DEFAULT_VIRTUAL_NODES
    failures: Tuple[DeviceFailure, ...] = ()
    #: Membership changes (joins / graceful leaves) fired at simulated times.
    events: Tuple[object, ...] = ()
    #: Per-device latency overrides (heterogeneous fleets).
    profiles: Tuple[DeviceProfile, ...] = ()

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise ScenarioError(f"fleet needs at least one device, got {self.devices}")
        if not 1 <= self.replication <= self.devices:
            raise ScenarioError(
                f"replication must be between 1 and the fleet size "
                f"({self.devices}), got {self.replication}"
            )
        if self.placement not in KNOWN_PLACEMENTS:
            raise ScenarioError(
                f"unknown placement {self.placement!r}; "
                f"expected one of {sorted(KNOWN_PLACEMENTS)}"
            )
        if self.replica_policy not in KNOWN_REPLICA_POLICIES:
            raise ScenarioError(
                f"unknown replica policy {self.replica_policy!r}; "
                f"expected one of {sorted(KNOWN_REPLICA_POLICIES)}"
            )
        if self.virtual_nodes < 1:
            raise ScenarioError(f"virtual_nodes must be >= 1, got {self.virtual_nodes}")
        self._validate_failures()
        self._validate_events()
        self._validate_profiles()

    def _validate_failures(self) -> None:
        failed = [failure.device for failure in self.failures]
        if any(index >= self.devices for index in failed):
            raise ScenarioError(
                f"failure device index out of range for a {self.devices}-device fleet"
            )
        if len(set(failed)) != len(failed):
            raise ScenarioError("each device may fail at most once")
        if self.failures and self.replication < 2:
            raise ScenarioError(
                "device failures require replication >= 2; with a single "
                "replica the failed device's queued objects would be lost"
            )
        if len(self.failures) >= self.replication:
            raise ScenarioError(
                f"at most replication-1 devices may fail (R={self.replication}); "
                "otherwise some object could lose every replica"
            )

    def _validate_events(self) -> None:
        if not self.events:
            return
        if self.placement != "consistent-hash":
            raise ScenarioError(
                "membership events require consistent-hash placement; "
                f"{self.placement!r} would reshuffle nearly every key on a "
                "membership change"
            )
        joins = [event for event in self.events if isinstance(event, DeviceJoin)]
        leaves = [event for event in self.events if isinstance(event, DeviceLeave)]
        if len(joins) + len(leaves) != len(self.events):
            bad = next(
                event
                for event in self.events
                if not isinstance(event, MembershipEvent)
            )
            raise ScenarioError(
                f"fleet events must be DeviceJoin or DeviceLeave, got {bad!r} "
                "(device failures go in FleetSpec.failures)"
            )
        join_indexes = [event.device for event in joins]
        if any(index < self.devices for index in join_indexes):
            raise ScenarioError(
                f"joining devices must use fresh indexes >= {self.devices} "
                f"(the initial fleet is csd0..csd{self.devices - 1})"
            )
        if len(set(join_indexes)) != len(join_indexes):
            raise ScenarioError("each device may join at most once")
        join_time_by_index = {event.device: event.at_seconds for event in joins}
        leave_indexes = [event.device for event in leaves]
        if len(set(leave_indexes)) != len(leave_indexes):
            raise ScenarioError("each device may leave at most once")
        failed_indexes = {failure.device for failure in self.failures}
        for leave in leaves:
            if leave.device in failed_indexes:
                raise ScenarioError(
                    f"device {leave.device} both fails and leaves; pick one"
                )
            if leave.device >= self.devices:
                joined_at = join_time_by_index.get(leave.device)
                if joined_at is None:
                    raise ScenarioError(
                        f"device {leave.device} leaves but never joins the fleet"
                    )
                if joined_at >= leave.at_seconds:
                    raise ScenarioError(
                        f"device {leave.device} must join strictly before it leaves"
                    )
        # Walk the membership changes in the exact order they fire at run
        # time — by timestamp, ties broken by process-creation order
        # (failures are registered before events, each in listed order) —
        # and reject any point where the serving fleet dips below R.  The
        # final count alone is not enough: a leave can transiently
        # under-replicate the fleet even if a later join restores it.
        changes = [
            (failure.at_seconds, index, -1, False)
            for index, failure in enumerate(self.failures)
        ] + [
            (
                event.at_seconds,
                len(self.failures) + index,
                1 if isinstance(event, DeviceJoin) else -1,
                True,
            )
            for index, event in enumerate(self.events)
        ]
        serving = self.devices
        for _at, _order, delta, recomputes in sorted(changes):
            serving += delta
            # Fail-stop losses route around the dead replicas without a
            # placement recompute; only joins/leaves re-place over the
            # serving set, which must then hold at least R devices.
            if recomputes and serving < self.replication:
                raise ScenarioError(
                    f"membership timeline drops the fleet to {serving} "
                    f"serving device(s), below the replication factor "
                    f"{self.replication}; reorder the events or lower R"
                )

    def _validate_profiles(self) -> None:
        known = set(range(self.devices)) | {
            event.device for event in self.events if isinstance(event, DeviceJoin)
        }
        profiled = [profile.device for profile in self.profiles]
        if len(set(profiled)) != len(profiled):
            raise ScenarioError("each device may carry at most one profile")
        for profile in self.profiles:
            if profile.device not in known:
                raise ScenarioError(
                    f"profile for unknown device index {profile.device} "
                    f"(fleet has csd0..csd{self.devices - 1} plus joins)"
                )

    @property
    def device_ids(self) -> Tuple[str, ...]:
        """Canonical identifiers of the fleet's *initial* devices."""
        return tuple(device_name(index) for index in range(self.devices))

    @property
    def joins(self) -> Tuple[DeviceJoin, ...]:
        """The join events, in listed order."""
        return tuple(event for event in self.events if isinstance(event, DeviceJoin))

    @property
    def leaves(self) -> Tuple[DeviceLeave, ...]:
        """The leave events, in listed order."""
        return tuple(event for event in self.events if isinstance(event, DeviceLeave))

    @property
    def heterogeneous(self) -> bool:
        """Whether any device deviates from the scenario-wide config."""
        return bool(self.profiles) or any(
            event.switch_seconds is not None or event.transfer_seconds is not None
            for event in self.joins
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "devices": self.devices,
            "replication": self.replication,
            "placement": self.placement,
            "replica_policy": self.replica_policy,
            "virtual_nodes": self.virtual_nodes,
            "failures": [failure.to_dict() for failure in self.failures],
            "events": [event.to_dict() for event in self.events],
            "profiles": [profile.to_dict() for profile in self.profiles],
        }
