"""Declarative description of a storage fleet.

A :class:`FleetSpec` is pure data, embedded in a
:class:`~repro.scenarios.spec.ScenarioSpec` the same way tenants and device
knobs are: the scenario runner resolves it into a live
:class:`~repro.fleet.router.FleetRouter`.  ``devices=1, replication=1`` is
the degenerate single-CSD setup the original paper reproduces; anything
larger turns the run into a sharded multi-device experiment.

Beyond the static shape (size, replication, placement) a fleet can be
*elastic*: ``events`` lists membership changes — :class:`DeviceJoin`,
:class:`DeviceLeave` and :class:`SetReplication` — that fire at fixed
simulated times and advance the fleet's placement epoch, and ``profiles``
makes the fleet *heterogeneous* by overriding individual devices'
switch/transfer latencies.

Replication is a *lifecycle*, not a frozen placement parameter:
:class:`SetReplication` raises or lowers R mid-run (re-replicating or
trimming only the affected keys), ``repair`` turns fail-stop losses into a
read-repair pass that restores the lost replicas on surviving owners, and
:class:`MigrationThrottle` rate-limits all of that rebalance I/O with a
per-device token bucket so it interleaves with foreground queries instead
of starving them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.exceptions import ScenarioError
from repro.fleet.placement import DEFAULT_VIRTUAL_NODES, KNOWN_PLACEMENTS

#: Replica-choice policy names resolvable by the router.  ``least-loaded``
#: is the queue-length policy; ``ewma-latency`` scores replicas by expected
#: wait (EWMA of observed latency times queue depth); ``weighted`` divides
#: queue length by the device's capacity weight.
KNOWN_REPLICA_POLICIES = ("primary-first", "least-loaded", "ewma-latency", "weighted")

#: Placement-weighting modes: ``uniform`` keeps the classic hash-uniform
#: ring; ``profile`` sizes each device's vnode count by its transfer-speed
#: factor relative to the scenario-wide base device.
KNOWN_WEIGHTINGS = ("uniform", "profile")

#: Default smoothing factor for the router's per-device latency EWMA.
DEFAULT_EWMA_ALPHA = 0.3


def device_name(index: int) -> str:
    """Canonical identifier of the ``index``-th device of a fleet."""
    return f"csd{index}"


def _validate_event_time(label: str, at_seconds: float) -> None:
    if not math.isfinite(at_seconds) or at_seconds < 0:
        raise ScenarioError(
            f"{label} time must be finite and non-negative, got {at_seconds!r}"
        )


@dataclass(frozen=True)
class DeviceFailure:
    """A device going dark (fail-stop) at a fixed simulated time.

    The device finishes the transfer it is performing at that instant, then
    stops serving; every request still queued on it is failed over to a live
    replica by the router.  A failure advances the fleet's membership epoch
    but — unlike a graceful :class:`DeviceLeave` — triggers no migration:
    the dead device's data is simply re-served from surviving replicas.
    """

    device: int
    at_seconds: float

    def __post_init__(self) -> None:
        if self.device < 0:
            raise ScenarioError(f"failure device index must be >= 0, got {self.device}")
        _validate_event_time("failure", self.at_seconds)

    def to_dict(self) -> Dict[str, object]:
        return {"device": self.device, "at_seconds": self.at_seconds}


@dataclass(frozen=True)
class DeviceJoin:
    """A new device joining the fleet at a fixed simulated time.

    The join advances the membership epoch: placement is recomputed over the
    enlarged fleet and only the keys whose replica set changed are migrated
    onto the joiner (consistent hashing keeps that to ~R·K/(N+1) of K keys).
    ``switch_seconds`` / ``transfer_seconds`` optionally give the joiner its
    own device profile (e.g. a faster generation of hardware).
    """

    device: int
    at_seconds: float
    switch_seconds: Optional[float] = None
    transfer_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.device < 0:
            raise ScenarioError(f"join device index must be >= 0, got {self.device}")
        _validate_event_time("join", self.at_seconds)
        for label, value in (
            ("switch_seconds", self.switch_seconds),
            ("transfer_seconds", self.transfer_seconds),
        ):
            if value is None:
                continue
            if not math.isfinite(value) or value < 0:
                raise ScenarioError(
                    f"join {label} must be finite and non-negative, got {value!r}"
                )

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "join",
            "device": self.device,
            "at_seconds": self.at_seconds,
            "switch_seconds": self.switch_seconds,
            "transfer_seconds": self.transfer_seconds,
        }


@dataclass(frozen=True)
class DeviceLeave:
    """A device leaving the fleet gracefully at a fixed simulated time.

    The leave advances the membership epoch: placement is recomputed over
    the shrunken fleet, the leaver's queued requests are handed off to the
    new owners, and every key that held a replica on the leaver is migrated
    (read charged to a surviving source, write to the destination) before
    the device is decommissioned.
    """

    device: int
    at_seconds: float

    def __post_init__(self) -> None:
        if self.device < 0:
            raise ScenarioError(f"leave device index must be >= 0, got {self.device}")
        _validate_event_time("leave", self.at_seconds)

    def to_dict(self) -> Dict[str, object]:
        return {"kind": "leave", "device": self.device, "at_seconds": self.at_seconds}


@dataclass(frozen=True)
class DeviceProfile:
    """Per-device latency overrides making the fleet heterogeneous.

    ``None`` fields inherit the scenario-wide device config, so a profile
    can make one device slower at switching, faster at transferring, or
    both.
    """

    device: int
    switch_seconds: Optional[float] = None
    transfer_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.device < 0:
            raise ScenarioError(f"profile device index must be >= 0, got {self.device}")
        if self.switch_seconds is None and self.transfer_seconds is None:
            raise ScenarioError(
                f"profile for device {self.device} overrides nothing; drop it"
            )
        for label, value in (
            ("switch_seconds", self.switch_seconds),
            ("transfer_seconds", self.transfer_seconds),
        ):
            if value is None:
                continue
            if not math.isfinite(value) or value < 0:
                raise ScenarioError(
                    f"profile {label} must be finite and non-negative, got {value!r}"
                )

    def to_dict(self) -> Dict[str, object]:
        return {
            "device": self.device,
            "switch_seconds": self.switch_seconds,
            "transfer_seconds": self.transfer_seconds,
        }


@dataclass(frozen=True)
class SetReplication:
    """A replication-factor change fired at a fixed simulated time.

    The change advances the membership epoch and diffs the placement at the
    old vs new R over the current serving roster.  Raising R re-replicates
    every key onto its new owners (write-path replication charged as
    migration I/O); lowering R trims the surplus replicas from the placement
    — trims are pure bookkeeping (layouts are append-only) and never drop a
    key's last live replica, which the ``replication-repair`` invariant pins.
    """

    replication: int
    at_seconds: float

    def __post_init__(self) -> None:
        if self.replication < 1:
            raise ScenarioError(
                f"replication factor must be >= 1, got {self.replication}"
            )
        _validate_event_time("set-replication", self.at_seconds)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "set-replication",
            "replication": self.replication,
            "at_seconds": self.at_seconds,
        }


@dataclass(frozen=True)
class MigrationThrottle:
    """Token-bucket rate limit on rebalance I/O, per device.

    Each device accrues ``objects_per_second`` migration tokens (up to
    ``burst``); a migration read/write consumes one.  With no tokens left,
    pending foreground queries are served first and the deferral is counted;
    an otherwise idle device simply waits for the bucket to refill.  Without
    a throttle, migration work runs at strict priority over queries (the
    pre-throttle behaviour).
    """

    objects_per_second: float
    burst: int = 1

    def __post_init__(self) -> None:
        if not math.isfinite(self.objects_per_second) or self.objects_per_second <= 0:
            raise ScenarioError(
                "throttle objects_per_second must be finite and positive, "
                f"got {self.objects_per_second!r}"
            )
        if not isinstance(self.burst, int) or isinstance(self.burst, bool) or self.burst < 1:
            raise ScenarioError(
                f"throttle burst must be an integer >= 1, got {self.burst!r}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "objects_per_second": self.objects_per_second,
            "burst": self.burst,
        }


@dataclass(frozen=True)
class RebalancePolicy:
    """Feedback-driven reweighting: watch observed load, re-place past a
    threshold.

    Every ``interval_seconds`` of simulated time the router computes the
    imbalance coefficient of per-device busy time over the elapsed window.
    When it exceeds ``imbalance_threshold`` — and every serving device has
    at least one latency sample — the controller derives fresh capacity
    weights from the inverse of each device's latency EWMA, and (unless the
    weights moved less than ``min_weight_delta`` from the current ones)
    opens a ``reweight`` epoch whose migration plan executes through the
    normal throttled-migration machinery.
    """

    interval_seconds: float
    imbalance_threshold: float = 0.2
    #: Minimum max-abs change in any normalised weight for a tick to emit a
    #: reweight epoch; damps oscillation between near-identical placements.
    min_weight_delta: float = 0.05

    def __post_init__(self) -> None:
        if not math.isfinite(self.interval_seconds) or self.interval_seconds <= 0:
            raise ScenarioError(
                "rebalance interval_seconds must be finite and positive, "
                f"got {self.interval_seconds!r}"
            )
        if not math.isfinite(self.imbalance_threshold) or self.imbalance_threshold < 0:
            raise ScenarioError(
                "rebalance imbalance_threshold must be finite and "
                f"non-negative, got {self.imbalance_threshold!r}"
            )
        if not math.isfinite(self.min_weight_delta) or self.min_weight_delta < 0:
            raise ScenarioError(
                "rebalance min_weight_delta must be finite and non-negative, "
                f"got {self.min_weight_delta!r}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "interval_seconds": self.interval_seconds,
            "imbalance_threshold": self.imbalance_threshold,
            "min_weight_delta": self.min_weight_delta,
        }


#: Membership events accepted by ``FleetSpec.events``.
MembershipEvent = (DeviceJoin, DeviceLeave, SetReplication)

#: Static type of one ``FleetSpec.events`` entry (``_validate_events``
#: still enforces membership at runtime, with a pointed error message).
FleetEvent = Union[DeviceJoin, DeviceLeave, SetReplication]


@dataclass(frozen=True)
class FleetSpec:
    """Sharded multi-device fleet: size, replication, placement, elasticity."""

    devices: int = 2
    replication: int = 1
    placement: str = "consistent-hash"
    replica_policy: str = "primary-first"
    virtual_nodes: int = DEFAULT_VIRTUAL_NODES
    failures: Tuple[DeviceFailure, ...] = ()
    #: Membership changes (joins / graceful leaves / replication-factor
    #: changes) fired at simulated times.
    events: Tuple[FleetEvent, ...] = ()
    #: Per-device latency overrides (heterogeneous fleets).
    profiles: Tuple[DeviceProfile, ...] = ()
    #: Read-repair after fail-stop losses: with R >= 2, the lost replicas are
    #: re-created on surviving owners as charged migration I/O.  ``False``
    #: pins the pre-repair behaviour (the fleet silently stays
    #: under-replicated after a failure).
    repair: bool = True
    #: Rate limit on migration/repair I/O; ``None`` keeps strict priority.
    throttle: Optional[MigrationThrottle] = None
    #: How the consistent-hash ring sizes per-device vnode counts:
    #: ``uniform`` (hash-uniform key shares, the classic ring) or
    #: ``profile`` (vnode count ∝ the device's transfer-speed factor).
    weighting: str = "uniform"
    #: Smoothing factor of the per-device latency EWMA feeding the
    #: ``ewma-latency`` policy and the rebalancer (0 < alpha <= 1).
    ewma_alpha: float = DEFAULT_EWMA_ALPHA
    #: Feedback-driven reweighting controller; ``None`` disables it.
    rebalance: Optional[RebalancePolicy] = None

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise ScenarioError(f"fleet needs at least one device, got {self.devices}")
        if not 1 <= self.replication <= self.devices:
            raise ScenarioError(
                f"replication must be between 1 and the fleet size "
                f"({self.devices}), got {self.replication}"
            )
        if self.placement not in KNOWN_PLACEMENTS:
            raise ScenarioError(
                f"unknown placement {self.placement!r}; "
                f"expected one of {sorted(KNOWN_PLACEMENTS)}"
            )
        if self.replica_policy not in KNOWN_REPLICA_POLICIES:
            raise ScenarioError(
                f"unknown replica policy {self.replica_policy!r}; "
                f"expected one of {sorted(KNOWN_REPLICA_POLICIES)}"
            )
        if self.virtual_nodes < 1:
            raise ScenarioError(f"virtual_nodes must be >= 1, got {self.virtual_nodes}")
        if self.throttle is not None and not isinstance(self.throttle, MigrationThrottle):
            raise ScenarioError(
                f"throttle must be a MigrationThrottle or None, got {self.throttle!r}"
            )
        if self.weighting not in KNOWN_WEIGHTINGS:
            raise ScenarioError(
                f"unknown weighting {self.weighting!r}; "
                f"expected one of {sorted(KNOWN_WEIGHTINGS)}"
            )
        if self.weighting != "uniform" and self.placement != "consistent-hash":
            raise ScenarioError(
                f"weighting {self.weighting!r} requires consistent-hash "
                f"placement; {self.placement!r} has no ring to weight"
            )
        if not math.isfinite(self.ewma_alpha) or not 0 < self.ewma_alpha <= 1:
            raise ScenarioError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha!r}"
            )
        if self.rebalance is not None:
            if not isinstance(self.rebalance, RebalancePolicy):
                raise ScenarioError(
                    f"rebalance must be a RebalancePolicy or None, "
                    f"got {self.rebalance!r}"
                )
            if self.placement != "consistent-hash":
                raise ScenarioError(
                    "the feedback rebalancer requires consistent-hash "
                    f"placement; {self.placement!r} would reshuffle nearly "
                    "every key on each reweight"
                )
        self._validate_failures()
        self._validate_events()
        self._validate_timeline()
        self._validate_profiles()

    def _validate_failures(self) -> None:
        failed = [failure.device for failure in self.failures]
        if any(index >= self.devices for index in failed):
            raise ScenarioError(
                f"failure device index out of range for a {self.devices}-device fleet"
            )
        if len(set(failed)) != len(failed):
            raise ScenarioError("each device may fail at most once")

    def _validate_events(self) -> None:
        if not self.events:
            return
        if self.placement != "consistent-hash":
            raise ScenarioError(
                "membership events require consistent-hash placement; "
                f"{self.placement!r} would reshuffle nearly every key on a "
                "membership change"
            )
        joins = list(self.joins)
        leaves = list(self.leaves)
        r_changes = [event for event in self.events if isinstance(event, SetReplication)]
        if len(joins) + len(leaves) + len(r_changes) != len(self.events):
            bad = next(
                event
                for event in self.events
                if not isinstance(event, MembershipEvent)
            )
            raise ScenarioError(
                f"fleet events must be DeviceJoin, DeviceLeave or "
                f"SetReplication, got {bad!r} (device failures go in "
                "FleetSpec.failures)"
            )
        join_indexes = [event.device for event in joins]
        if any(index < self.devices for index in join_indexes):
            raise ScenarioError(
                f"joining devices must use fresh indexes >= {self.devices} "
                f"(the initial fleet is csd0..csd{self.devices - 1})"
            )
        if len(set(join_indexes)) != len(join_indexes):
            raise ScenarioError("each device may join at most once")
        join_time_by_index = {event.device: event.at_seconds for event in joins}
        leave_indexes = [event.device for event in leaves]
        if len(set(leave_indexes)) != len(leave_indexes):
            raise ScenarioError("each device may leave at most once")
        failed_indexes = {failure.device for failure in self.failures}
        for leave in leaves:
            if leave.device in failed_indexes:
                raise ScenarioError(
                    f"device {leave.device} both fails and leaves; pick one"
                )
            if leave.device >= self.devices:
                joined_at = join_time_by_index.get(leave.device)
                if joined_at is None:
                    raise ScenarioError(
                        f"device {leave.device} leaves but never joins the fleet"
                    )
                if joined_at >= leave.at_seconds:
                    raise ScenarioError(
                        f"device {leave.device} must join strictly before it leaves"
                    )

    def _validate_timeline(self) -> None:
        """Walk failures and events in firing order, tracking serving count
        and the replication factor in effect.

        Changes fire by timestamp, ties broken by process-creation order
        (failures are registered before events, each in listed order).  The
        final counts alone are not enough: a leave can transiently
        under-replicate the fleet even if a later join restores it, and a
        failure is only survivable under the R in effect *at that instant*.
        """
        if not self.failures and not self.events:
            return
        changes: List[Tuple[float, int, object, Any]] = []
        for index, failure in enumerate(self.failures):
            changes.append((failure.at_seconds, index, "failure", failure))
        for index, event in enumerate(self.events):
            changes.append(
                (
                    event.at_seconds,
                    len(self.failures) + index,
                    event.to_dict()["kind"],
                    event,
                )
            )
        serving = self.devices
        replication = self.replication
        failures_seen = 0
        for _at, _order, kind, change in sorted(changes, key=lambda item: item[:2]):
            if kind == "failure":
                failures_seen += 1
                if replication < 2:
                    raise ScenarioError(
                        "device failures require replication >= 2 at the "
                        "failure instant; with a single replica the failed "
                        "device's queued objects would be lost"
                    )
                if self.repair:
                    # Each loss is re-replicated before the next change, so
                    # the cumulative failure budget resets; what must hold is
                    # that every failure still finds a surviving replica to
                    # repair from.
                    if serving < 2:
                        raise ScenarioError(
                            "a failure at this point would leave no surviving "
                            "device to repair from; reorder the events or "
                            "keep more devices serving"
                        )
                elif failures_seen >= replication:
                    raise ScenarioError(
                        f"at most replication-1 devices may fail "
                        f"(R={replication}); otherwise some object could "
                        "lose every replica (enable repair to re-replicate "
                        "between well-spaced losses)"
                    )
                serving -= 1
                continue
            if kind == "set-replication":
                if change.replication == replication:
                    raise ScenarioError(
                        f"SetReplication at {change.at_seconds} sets the "
                        f"factor to {replication}, which it already is"
                    )
                if change.replication > serving:
                    raise ScenarioError(
                        f"SetReplication to {change.replication} at "
                        f"{change.at_seconds} exceeds the {serving} device(s) "
                        "serving at that instant"
                    )
                replication = change.replication
                continue
            serving += 1 if kind == "join" else -1
            # Fail-stop losses route around the dead replicas without a
            # placement recompute; only joins/leaves re-place over the
            # serving set, which must then hold at least R devices.
            if serving < replication:
                raise ScenarioError(
                    f"membership timeline drops the fleet to {serving} "
                    f"serving device(s), below the replication factor "
                    f"{replication}; reorder the events or lower R"
                )

    def _validate_profiles(self) -> None:
        known = set(range(self.devices)) | {
            event.device for event in self.events if isinstance(event, DeviceJoin)
        }
        profiled = [profile.device for profile in self.profiles]
        if len(set(profiled)) != len(profiled):
            raise ScenarioError("each device may carry at most one profile")
        for profile in self.profiles:
            if profile.device not in known:
                raise ScenarioError(
                    f"profile for unknown device index {profile.device} "
                    f"(fleet has csd0..csd{self.devices - 1} plus joins)"
                )

    @property
    def device_ids(self) -> Tuple[str, ...]:
        """Canonical identifiers of the fleet's *initial* devices."""
        return tuple(device_name(index) for index in range(self.devices))

    @property
    def joins(self) -> Tuple[DeviceJoin, ...]:
        """The join events, in listed order."""
        return tuple(event for event in self.events if isinstance(event, DeviceJoin))

    @property
    def leaves(self) -> Tuple[DeviceLeave, ...]:
        """The leave events, in listed order."""
        return tuple(event for event in self.events if isinstance(event, DeviceLeave))

    @property
    def replication_changes(self) -> Tuple[SetReplication, ...]:
        """The replication-factor changes, in listed order."""
        return tuple(
            event for event in self.events if isinstance(event, SetReplication)
        )

    @property
    def heterogeneous(self) -> bool:
        """Whether any device deviates from the scenario-wide config."""
        return bool(self.profiles) or any(
            event.switch_seconds is not None or event.transfer_seconds is not None
            for event in self.joins
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "devices": self.devices,
            "replication": self.replication,
            "placement": self.placement,
            "replica_policy": self.replica_policy,
            "virtual_nodes": self.virtual_nodes,
            "failures": [failure.to_dict() for failure in self.failures],
            "events": [event.to_dict() for event in self.events],
            "profiles": [profile.to_dict() for profile in self.profiles],
            "repair": self.repair,
            "throttle": self.throttle.to_dict() if self.throttle is not None else None,
            "weighting": self.weighting,
            "ewma_alpha": self.ewma_alpha,
            "rebalance": (
                self.rebalance.to_dict() if self.rebalance is not None else None
            ),
        }
