"""``python -m repro`` — run the paper's experiments from the command line."""

import sys

from repro.harness.runner import main

if __name__ == "__main__":
    sys.exit(main())
