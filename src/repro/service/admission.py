"""Admission control between sessions and the storage backend.

The :class:`AdmissionController` decides, for every query a session wants to
start, whether it runs now (**admitted**), waits in a bounded FIFO queue
(**queued**) or is refused outright (**rejected**, surfaced to callers as a
typed :class:`~repro.exceptions.AdmissionError`).  Capacity is expressed as
in-flight query caps — one global, one per tenant — mirroring how a serving
system protects a storage fleet from overload: past the caps requests queue,
and past the queue they are shed.

The controller is deterministic: grants happen in strict FIFO order over the
waiting queue (skipping entries whose tenant cap is still exhausted), and all
bookkeeping uses the simulated clock.  A service with no controller attached
behaves exactly like the pre-façade batch harness.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, Optional, Tuple

from repro.cluster.metrics import jain_fairness, mean, percentile
from repro.exceptions import AdmissionError, ConfigurationError
from repro.obs import Histogram, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim import Environment
    from repro.sim.events import Event


@dataclass(frozen=True)
class AdmissionConfig:
    """Capacity knobs of the admission controller.

    ``None`` caps are unlimited; a cap of 0 means no query can ever run and
    everything is rejected (useful to drain or fence a service).
    """

    #: Maximum queries executing concurrently across the whole service.
    max_in_flight: Optional[int] = None
    #: Maximum queries executing concurrently per tenant.
    max_in_flight_per_tenant: Optional[int] = None
    #: Maximum queries waiting for a slot before new arrivals are rejected.
    max_queue_depth: int = 64

    def __post_init__(self) -> None:
        for label, value in (
            ("max_in_flight", self.max_in_flight),
            ("max_in_flight_per_tenant", self.max_in_flight_per_tenant),
        ):
            if value is None:
                continue
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise ConfigurationError(
                    f"{label} must be a non-negative integer or None, got {value!r}"
                )
        depth = self.max_queue_depth
        if not isinstance(depth, int) or isinstance(depth, bool) or depth < 0:
            raise ConfigurationError(
                f"max_queue_depth must be a non-negative integer, got {depth!r}"
            )

    @property
    def zero_capacity(self) -> bool:
        """True when no query can ever be granted a slot."""
        return self.max_in_flight == 0 or self.max_in_flight_per_tenant == 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "max_in_flight": self.max_in_flight,
            "max_in_flight_per_tenant": self.max_in_flight_per_tenant,
            "max_queue_depth": self.max_queue_depth,
        }


class AdmissionTicket:
    """Outcome of one admission request."""

    __slots__ = ("event", "error", "queued")

    def __init__(
        self,
        event: Optional[Event] = None,
        error: Optional[AdmissionError] = None,
        queued: bool = False,
    ):
        #: Event that fires when the slot is granted (``None`` when rejected).
        self.event = event
        #: The rejection, when admission refused the query.
        self.error = error
        #: Whether the query had to wait in the admission queue.
        self.queued = queued

    @property
    def rejected(self) -> bool:
        return self.error is not None


class _TenantCounters:
    """Per-tenant admission counters, registered as ``admission.tenant.*``."""

    __slots__ = ("submitted", "admitted", "queued", "rejected")

    def __init__(self, metrics: MetricsRegistry, tenant_id: str) -> None:
        prefix = f"admission.tenant.{tenant_id}"
        self.submitted = metrics.counter(f"{prefix}.submitted")
        self.admitted = metrics.counter(f"{prefix}.admitted")
        self.queued = metrics.counter(f"{prefix}.queued")
        self.rejected = metrics.counter(f"{prefix}.rejected")


class AdmissionController:
    """Per-tenant and global in-flight caps with a bounded FIFO queue."""

    def __init__(
        self,
        env: Environment,
        config: AdmissionConfig,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.env = env
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._in_flight_total = 0
        self._in_flight_by_tenant: Dict[str, int] = {}
        #: FIFO of (tenant, grant event, enqueue time).
        self._waiting: Deque[Tuple[str, Event, float]] = deque()
        self._counters: Dict[str, _TenantCounters] = {}
        #: Queue-delay samples per tenant, keyed in first-grant order — the
        #: flattening order the report's aggregate percentiles depend on.
        self._delay_hists: Dict[str, Histogram] = {}
        self._in_flight_gauge = self.metrics.gauge("admission.in_flight")
        self._queue_depth_gauge = self.metrics.gauge("admission.queue_depth")

    # ------------------------------------------------------------------ #
    # Slot accounting
    # ------------------------------------------------------------------ #
    def _tenant(self, tenant_id: str) -> _TenantCounters:
        counters = self._counters.get(tenant_id)
        if counters is None:
            counters = self._counters[tenant_id] = _TenantCounters(
                self.metrics, tenant_id
            )
        return counters

    def _delays(self, tenant_id: str) -> Histogram:
        hist = self._delay_hists.get(tenant_id)
        if hist is None:
            hist = self._delay_hists[tenant_id] = self.metrics.histogram(
                f"admission.tenant.{tenant_id}.queue_delay"
            )
        return hist

    def _has_capacity(self, tenant_id: str) -> bool:
        if (
            self.config.max_in_flight is not None
            and self._in_flight_total >= self.config.max_in_flight
        ):
            return False
        if self.config.max_in_flight_per_tenant is not None:
            used = self._in_flight_by_tenant.get(tenant_id, 0)
            if used >= self.config.max_in_flight_per_tenant:
                return False
        return True

    def _occupy(self, tenant_id: str) -> None:
        self._in_flight_total += 1
        self._in_flight_by_tenant[tenant_id] = self._in_flight_by_tenant.get(tenant_id, 0) + 1
        self._in_flight_gauge.set(self._in_flight_total)
        self._tenant(tenant_id).admitted.inc()

    # ------------------------------------------------------------------ #
    # Session-facing API
    # ------------------------------------------------------------------ #
    def request(self, tenant_id: str) -> AdmissionTicket:
        """Ask for an execution slot; never blocks, the ticket says how."""
        counters = self._tenant(tenant_id)
        counters.submitted.inc()
        if self.config.zero_capacity:
            counters.rejected.inc()
            return AdmissionTicket(error=self._rejection(tenant_id, "capacity is zero"))
        if self._has_capacity(tenant_id):
            self._occupy(tenant_id)
            grant = self.env.event(name=f"admission-grant:{tenant_id}")
            grant.succeed(None)
            return AdmissionTicket(event=grant)
        if len(self._waiting) >= self.config.max_queue_depth:
            counters.rejected.inc()
            return AdmissionTicket(
                error=self._rejection(
                    tenant_id,
                    f"admission queue is full ({self.config.max_queue_depth} waiting)",
                )
            )
        counters.queued.inc()
        grant = self.env.event(name=f"admission-wait:{tenant_id}")
        self._waiting.append((tenant_id, grant, self.env.now))
        self._queue_depth_gauge.set(len(self._waiting))
        return AdmissionTicket(event=grant, queued=True)

    def release(self, tenant_id: str) -> None:
        """Return a slot after a query finished; grants eligible waiters FIFO."""
        if self._in_flight_total <= 0:
            raise ConfigurationError("admission release without a matching grant")
        # The global counter alone cannot catch a mismatched release: other
        # tenants' in-flight queries keep it positive while this tenant's
        # counter would silently go negative (inflating its capacity under
        # a per-tenant cap).
        in_flight = self._in_flight_by_tenant.get(tenant_id, 0)
        if in_flight <= 0:
            raise ConfigurationError(
                f"admission release without a matching grant for tenant {tenant_id!r}"
            )
        self._in_flight_total -= 1
        self._in_flight_by_tenant[tenant_id] = in_flight - 1
        self._in_flight_gauge.set(self._in_flight_total)
        self._grant_waiters()

    def _grant_waiters(self) -> None:
        """Grant queued requests in FIFO order, skipping capped tenants."""
        still_waiting: Deque[Tuple[str, Event, float]] = deque()
        while self._waiting:
            tenant_id, grant, enqueued_at = self._waiting.popleft()
            if self._has_capacity(tenant_id):
                self._occupy(tenant_id)
                self._delays(tenant_id).observe(self.env.now - enqueued_at)
                grant.succeed(None)
            else:
                still_waiting.append((tenant_id, grant, enqueued_at))
        self._waiting = still_waiting
        self._queue_depth_gauge.set(len(self._waiting))

    def _rejection(self, tenant_id: str, reason: str) -> AdmissionError:
        return AdmissionError(
            f"tenant {tenant_id!r}: query rejected by admission control ({reason})"
        )

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    @property
    def waiting(self) -> int:
        """Queries currently held in the admission queue."""
        return len(self._waiting)

    @property
    def in_flight(self) -> int:
        """Queries currently executing under this controller."""
        return self._in_flight_total

    @property
    def peak_in_flight(self) -> int:
        return self._in_flight_gauge.peak

    @property
    def peak_queue_depth(self) -> int:
        return self._queue_depth_gauge.peak

    def _tenant_delays(self, tenant_id: str) -> Tuple[float, ...]:
        hist = self._delay_hists.get(tenant_id)
        return tuple(hist.samples) if hist is not None else ()

    def summary(self) -> Dict[str, object]:
        """Canonical metrics dict for the scenario report's admission section.

        The aggregate delay statistics flatten the per-tenant samples in the
        tenants' first-grant order (``_delay_hists`` insertion order), which
        reproduces the historical float-summation order byte for byte.
        """
        delays = [
            delay for hist in self._delay_hists.values() for delay in hist.samples
        ]
        per_tenant = {
            tenant_id: {
                "submitted": counters.submitted.value,
                "admitted": counters.admitted.value,
                "queued": counters.queued.value,
                "rejected": counters.rejected.value,
                "mean_queue_delay": mean(self._tenant_delays(tenant_id)),
            }
            for tenant_id, counters in sorted(self._counters.items())
        }
        # Fairness is a statement about *queueing* tenants: one that was
        # always admitted straight through (or only ever rejected) recorded
        # no delay, and counting its 0.0 mean would drag the index down as
        # if it had been favoured with instant grants.
        delay_means = [
            entry["mean_queue_delay"]
            for tenant_id, entry in per_tenant.items()
            if self._tenant_delays(tenant_id)
        ]
        return {
            "config": self.config.to_dict(),
            "submitted": sum(c.submitted.value for c in self._counters.values()),
            "admitted": sum(c.admitted.value for c in self._counters.values()),
            "queued": sum(c.queued.value for c in self._counters.values()),
            "rejected": sum(c.rejected.value for c in self._counters.values()),
            "peak_in_flight": self.peak_in_flight,
            "peak_queue_depth": self.peak_queue_depth,
            "queue_delay": {
                "mean": mean(delays),
                "p50": percentile(delays, 0.50) if delays else 0.0,
                "p95": percentile(delays, 0.95) if delays else 0.0,
                "max": max(delays) if delays else 0.0,
            },
            "fairness_jain": jain_fairness(delay_means) if delay_means else 1.0,
            "per_tenant": per_tenant,
        }
