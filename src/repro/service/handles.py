"""Future-like handles for queries submitted through the service façade.

A :class:`QueryHandle` is returned by :meth:`Session.submit
<repro.service.session.Session.submit>` the moment a query enters the
service.  It tracks the query through its lifecycle — submitted, held by
admission control, running, finished or rejected — with a simulated-time
timestamp for every transition, and exposes the measurement the executor
produced once the simulation has run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.exceptions import AdmissionError, ServiceError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.client import QueryResult
    from repro.engine.query import Query

#: Lifecycle states of a submitted query.
STATUS_PENDING = "pending"  #: submitted, waiting for its session to pick it up
STATUS_QUEUED = "queued"  #: held in the admission controller's queue
STATUS_RUNNING = "running"  #: executing against the storage backend
STATUS_FINISHED = "finished"  #: completed; :meth:`QueryHandle.result` is ready
STATUS_REJECTED = "rejected"  #: refused by admission control


class QueryHandle:
    """Tracks one submitted query from admission to completion."""

    def __init__(self, query: Query, tenant_id: str, submitted_at: Optional[float]) -> None:
        self.query = query
        self.tenant_id = tenant_id
        self.status = STATUS_PENDING
        #: When the query entered the service (``None`` until a deferred
        #: ``submit(..., at=...)`` actually arrives).
        self.submitted_at = submitted_at
        #: When admission control queued the query (``None`` if it never waited).
        self.queued_at: Optional[float] = None
        #: When the executor started running the query.
        self.started_at: Optional[float] = None
        #: When the query finished or was rejected.
        self.finished_at: Optional[float] = None
        self._result: Optional[QueryResult] = None
        self._error: Optional[AdmissionError] = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def done(self) -> bool:
        """Whether the query reached a terminal state (finished or rejected)."""
        return self.status in (STATUS_FINISHED, STATUS_REJECTED)

    @property
    def queue_delay(self) -> float:
        """Seconds spent in the admission queue (0.0 if never queued)."""
        if self.queued_at is None or self.started_at is None:
            return 0.0
        return self.started_at - self.queued_at

    @property
    def service_seconds(self) -> float:
        """Execution time only: from running to finished (0.0 until then)."""
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at

    @property
    def total_seconds(self) -> float:
        """End-to-end time in the service: submit to terminal (0.0 until then)."""
        if self.submitted_at is None or self.finished_at is None:
            return 0.0
        return self.finished_at - self.submitted_at

    def result(self) -> QueryResult:
        """The executor's measurement, once the simulation has run.

        Raises :class:`~repro.exceptions.AdmissionError` if the query was
        rejected by admission control, and
        :class:`~repro.exceptions.ServiceError` if it has not reached a
        terminal state yet (run the service first).
        """
        if self.status == STATUS_REJECTED:
            assert self._error is not None
            raise self._error
        if self.status != STATUS_FINISHED:
            raise ServiceError(
                f"query {self.query.name!r} of tenant {self.tenant_id!r} has "
                f"not finished (status: {self.status}); call "
                "StorageService.run() to drive the simulation first"
            )
        return self._result

    # ------------------------------------------------------------------ #
    # Transitions (driven by the session / admission controller)
    # ------------------------------------------------------------------ #
    def _check_transition(self, target: str, allowed: tuple, now: float, floor: Optional[float]) -> None:
        if self.status not in allowed:
            raise ServiceError(
                f"query {self.query.name!r} of tenant {self.tenant_id!r}: "
                f"illegal transition {self.status} -> {target}"
            )
        if floor is not None and now < floor:
            raise ServiceError(
                f"query {self.query.name!r} of tenant {self.tenant_id!r}: "
                f"non-monotonic timestamp {now} < {floor} entering {target}"
            )

    def _mark_submitted(self, now: float) -> None:
        if self.submitted_at is not None:
            raise ServiceError(
                f"query {self.query.name!r} of tenant {self.tenant_id!r} was "
                "already submitted"
            )
        self._check_transition(STATUS_PENDING, (STATUS_PENDING,), now, None)
        self.submitted_at = now

    def _mark_queued(self, now: float) -> None:
        self._check_transition(STATUS_QUEUED, (STATUS_PENDING,), now, self.submitted_at)
        self.status = STATUS_QUEUED
        self.queued_at = now

    def _mark_running(self, now: float) -> None:
        self._check_transition(
            STATUS_RUNNING,
            (STATUS_PENDING, STATUS_QUEUED),
            now,
            self.queued_at if self.queued_at is not None else self.submitted_at,
        )
        self.status = STATUS_RUNNING
        self.started_at = now

    def _mark_finished(self, result: QueryResult, now: float) -> None:
        self._check_transition(STATUS_FINISHED, (STATUS_RUNNING,), now, self.started_at)
        self.status = STATUS_FINISHED
        self.finished_at = now
        self._result = result

    def _mark_rejected(self, error: AdmissionError, now: float) -> None:
        self._check_transition(
            STATUS_REJECTED,
            (STATUS_PENDING, STATUS_QUEUED),
            now,
            self.queued_at if self.queued_at is not None else self.submitted_at,
        )
        self.status = STATUS_REJECTED
        self.finished_at = now
        self._error = error

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<QueryHandle {self.query.name!r} tenant={self.tenant_id!r} "
            f"status={self.status}>"
        )
