"""The public query-service façade.

This package is the one entry point client code programs against:

* :class:`StorageService` — owns the backend (single CSD or sharded fleet),
  the catalogs and the simulation clock; hands out sessions and drives runs.
* :class:`Session` — a per-tenant connection; ``session.submit(query)``
  returns a :class:`QueryHandle` immediately, queries run sequentially per
  session.
* :class:`QueryHandle` — future-like: ``.status``, submit/queue/start/finish
  timestamps, ``.result()``.
* :class:`AdmissionConfig` / :class:`AdmissionController` — per-tenant and
  global in-flight caps with a bounded queue; overflow is **queued** and,
  past the queue, **rejected** with a typed
  :class:`~repro.exceptions.AdmissionError`.

Quickstart::

    from repro.service import ClientSpec, ClusterConfig, StorageService, workloads

    tpch = workloads.tpch
    catalog = tpch.build_catalog("tiny", seed=42)
    config = ClusterConfig(client_specs=[ClientSpec("t0", queries=[tpch.q12()])])
    service = StorageService(config, catalog=catalog)
    session = service.open_session("t0")
    handle = session.submit(tpch.q12())
    service.run()
    print(handle.result().execution_time)

The legacy batch entry point (``repro.cluster.Cluster``) has been retired;
the experiment harness runs through the façade.  For
convenience the façade also re-exports the experiment harness
(:mod:`repro.harness.experiments` as :data:`experiments`), the table
renderer and the workload generators, so examples and notebooks need a
single import.
"""

from repro.cluster.client import ClientSpec, DatabaseClient, QueryResult
from repro.cluster.cluster import ClusterConfig, ClusterResult
from repro.engine.executor import canonical_rows
from repro.exceptions import AdmissionError, ServiceError, SessionClosedError
from repro.service.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionTicket,
)
from repro.service.handles import (
    QueryHandle,
    STATUS_FINISHED,
    STATUS_PENDING,
    STATUS_QUEUED,
    STATUS_REJECTED,
    STATUS_RUNNING,
)
from repro.service.service import StorageService
from repro.service.session import Session

# Imported last: the harness itself consumes the service layer above.
from repro import workloads
from repro.harness import experiments
from repro.harness.tables import format_admission_table, format_table

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionError",
    "AdmissionTicket",
    "ClientSpec",
    "ClusterConfig",
    "ClusterResult",
    "DatabaseClient",
    "QueryHandle",
    "QueryResult",
    "STATUS_FINISHED",
    "STATUS_PENDING",
    "STATUS_QUEUED",
    "STATUS_REJECTED",
    "STATUS_RUNNING",
    "ServiceError",
    "Session",
    "SessionClosedError",
    "StorageService",
    "canonical_rows",
    "experiments",
    "format_admission_table",
    "format_table",
    "workloads",
]
