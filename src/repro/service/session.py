"""Per-tenant sessions: the submission side of the service façade.

A :class:`Session` is a long-lived, per-tenant connection to a
:class:`~repro.service.service.StorageService`.  Queries submitted to a
session run **sequentially in submission order** (one in flight per session,
like a database connection); each :meth:`Session.submit` returns a
:class:`~repro.service.handles.QueryHandle` immediately.  Every query passes
through the service's admission controller (when one is configured) before an
executor is created for it.

Determinism note: with admission disabled, a session that has all its queries
submitted before the simulation runs performs exactly the same sequence of
simulation events as the legacy
:class:`~repro.cluster.client.DatabaseClient` process it replaces — this is
what keeps the pre-façade golden metrics byte-identical.
"""

from __future__ import annotations

import math
from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional

from repro.cluster.client import MODE_SKIPPER, MODE_VANILLA, QueryResult
from repro.core.cache import EvictionPolicy, MaxProgressEviction
from repro.core.executor import SkipperExecutor
from repro.exceptions import ConfigurationError, SessionClosedError
from repro.service.handles import QueryHandle
from repro.vanilla.executor import VanillaExecutor

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.query import Query
    from repro.service.service import StorageService


class Session:
    """One tenant's open connection to the storage service."""

    def __init__(
        self,
        service: StorageService,
        tenant_id: str,
        mode: str = MODE_SKIPPER,
        cache_capacity: int = 30,
        eviction_policy: Optional[EvictionPolicy] = None,
        enable_pruning: bool = True,
        start_delay: float = 0.0,
    ) -> None:
        if mode not in (MODE_SKIPPER, MODE_VANILLA):
            raise ConfigurationError(f"unknown session mode: {mode!r}")
        if mode == MODE_SKIPPER and cache_capacity <= 0:
            raise ConfigurationError(
                f"session {tenant_id!r}: cache_capacity must be positive, "
                f"got {cache_capacity}"
            )
        if not math.isfinite(start_delay) or start_delay < 0:
            raise ConfigurationError("start_delay must be finite and non-negative")
        self.service = service
        self.env = service.env
        self.tenant_id = tenant_id
        self.mode = mode
        self.cache_capacity = cache_capacity
        self.eviction_policy = eviction_policy
        self.enable_pruning = enable_pruning
        self.start_delay = start_delay
        #: Every handle ever issued by this session, in submission order.
        self.handles: List[QueryHandle] = []
        #: Results of the queries that ran to completion, in execution order.
        self.results: List[QueryResult] = []
        self._pending: Deque[QueryHandle] = deque()
        self._outstanding = 0
        self._closed = False
        self._wakeup = None
        self.process = self.env.process(self._run(), name=f"session:{tenant_id}")

    # ------------------------------------------------------------------ #
    # Client-facing API
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def submit(self, query: Query, at: Optional[float] = None) -> QueryHandle:
        """Hand ``query`` to the service; returns its handle immediately.

        ``at`` defers the submission to an absolute simulated time (it must
        not lie in the past).  Queries run sequentially per session, in the
        order they arrive.
        """
        if self._closed:
            raise SessionClosedError(
                f"session {self.tenant_id!r} is closed; open a new session to "
                "submit more queries"
            )
        if at is not None:
            if not math.isfinite(at) or at < self.env.now:
                raise ConfigurationError(
                    f"submit time {at!r} must be finite and not in the past "
                    f"(now: {self.env.now})"
                )
        handle = QueryHandle(query, self.tenant_id, submitted_at=None)
        self.handles.append(handle)
        self._outstanding += 1
        if at is None or at <= self.env.now:
            handle._mark_submitted(self.env.now)
            self._pending.append(handle)
            self._notify()
        else:
            self.env.process(
                self._deliver_at(handle, at),
                name=f"session-submit:{self.tenant_id}",
            )
        return handle

    def close(self) -> None:
        """Refuse further submissions; queued work still runs to completion."""
        if self._closed:
            return
        self._closed = True
        self._notify()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _notify(self) -> None:
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed(None)

    def _deliver_at(self, handle: QueryHandle, at: float):
        yield self.env.timeout(at - self.env.now)
        handle._mark_submitted(self.env.now)
        self._pending.append(handle)
        self._notify()

    def _make_executor(self):
        """Fresh executor per query, mirroring the legacy DatabaseClient."""
        if self.mode == MODE_SKIPPER:
            return SkipperExecutor(
                env=self.env,
                client_id=self.tenant_id,
                catalog=self.service.catalog,
                device=self.service.backend,
                cache_capacity=self.cache_capacity,
                eviction_policy=self.eviction_policy or MaxProgressEviction(),
                cost_model=self.service.cost_model,
                enable_pruning=self.enable_pruning,
            )
        return VanillaExecutor(
            env=self.env,
            client_id=self.tenant_id,
            catalog=self.service.catalog,
            device=self.service.backend,
            cost_model=self.service.cost_model,
        )

    def _run(self):
        if self.start_delay > 0:
            yield self.env.timeout(self.start_delay)
        while True:
            while self._pending:
                handle = self._pending.popleft()
                yield from self._execute(handle)
            if self._closed and self._outstanding == 0:
                break
            # Idle but not finished: wait for a submit, a deferred delivery
            # or close().  Never reached in pre-submitted batch runs, so the
            # legacy event sequence is preserved exactly.
            self._wakeup = self.env.event(name=f"session-wake:{self.tenant_id}")
            yield self._wakeup
            self._wakeup = None

    def _execute(self, handle: QueryHandle):
        tracer = self.service.tracer
        root = None
        if tracer.enabled:
            root = tracer.start_span(
                f"query:{handle.query.name}",
                kind="query",
                track=self.tenant_id,
                tenant=self.tenant_id,
                query=handle.query.name,
            )
        admission = self.service.admission
        if admission is not None:
            ticket = admission.request(self.tenant_id)
            if ticket.rejected:
                handle._mark_rejected(ticket.error, self.env.now)
                self._outstanding -= 1
                if root is not None:
                    root.attrs["status"] = "rejected"
                    tracer.add_event(root, "admission.rejected")
                    tracer.end_span(root)
                return
            if ticket.queued:
                handle._mark_queued(self.env.now)
                if root is not None:
                    tracer.add_event(root, "admission.queued")
            yield ticket.event
            if root is not None:
                tracer.add_event(root, "admission.granted")
        handle._mark_running(self.env.now)
        executor = self._make_executor()
        if root is not None:
            executor.tracer = tracer
            executor.trace_parent = root
        try:
            result = yield from executor.execute(handle.query)
        finally:
            if admission is not None:
                admission.release(self.tenant_id)
        handle._mark_finished(result, self.env.now)
        if root is not None:
            root.attrs["status"] = "finished"
            root.attrs["queue_delay"] = handle.queue_delay
            root.attrs["execution_time"] = result.execution_time
            tracer.end_span(root)
        self.results.append(result)
        self._outstanding -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"<Session {self.tenant_id!r} {state} outstanding={self._outstanding}>"
