"""The storage-service façade: the one public entry point for running queries.

:class:`StorageService` owns everything one deployment needs — the simulation
environment, the object store loaded with every tenant's segments, the
storage backend (the paper's single shared CSD or a sharded
:class:`~repro.fleet.router.FleetRouter`), an optional
:class:`~repro.service.admission.AdmissionController` — and hands out
per-tenant :class:`~repro.service.session.Session` objects through which
queries are submitted::

    service = StorageService(config, catalog=catalog)   # or StorageService(scenario_spec)
    session = service.open_session("tenant0")
    handle = session.submit(query)
    result = service.run()          # drives the simulation to completion
    print(handle.result().execution_time)

The façade replaced the legacy batch harness (``Cluster.run()``), whose
deprecated shims have since been retired.  With no admission controller
configured, a batch run through the façade is event-for-event identical to
the legacy harness, which the golden-metrics suite pins.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.cluster.client import ClientSpec
from repro.cluster.cluster import ClusterConfig, ClusterResult
from repro.cluster.metrics import (
    ExecutionBreakdown,
    attribute_waiting_batch,
    busy_span_index,
)
from repro.csd.device import ColdStorageDevice
from repro.csd.object_store import ObjectStore
from repro.csd.request import GetRequest
from repro.csd.scheduler import IOScheduler, RankBasedScheduler
from repro.engine.catalog import Catalog
from repro.exceptions import ConfigurationError, ServiceError
from repro.fleet.router import FleetRouter
from repro.obs import NULL_TRACER, MetricsRegistry, Tracer
from repro.service.admission import AdmissionConfig, AdmissionController
from repro.service.handles import QueryHandle
from repro.service.session import Session
from repro.sim import Environment

_UNSET = object()


class StorageService:
    """A long-lived query service over the simulated storage substrate.

    ``spec_or_config`` is either a declarative
    :class:`~repro.scenarios.spec.ScenarioSpec` (the catalog, layout,
    scheduler, arrival delays and admission knobs are materialised from it)
    or a :class:`~repro.cluster.cluster.ClusterConfig` plus an explicit
    ``catalog``.
    """

    def __init__(
        self,
        spec_or_config: Union[ClusterConfig, object],
        *,
        catalog: Optional[Catalog] = None,
        scheduler: Optional[IOScheduler] = None,
        scheduler_factory: Optional[Callable[[], IOScheduler]] = None,
        admission: Optional[AdmissionConfig] = None,
        trace: Optional[bool] = None,
    ) -> None:
        if scheduler is not None and scheduler_factory is not None:
            raise ConfigurationError("pass either scheduler or scheduler_factory, not both")

        if isinstance(spec_or_config, ClusterConfig):
            if catalog is None:
                raise ConfigurationError(
                    "StorageService(ClusterConfig) needs an explicit catalog"
                )
            config = spec_or_config
        else:
            # Deferred import: the scenario layer builds on the service layer.
            from repro.scenarios.spec import ScenarioSpec

            if not isinstance(spec_or_config, ScenarioSpec):
                raise ConfigurationError(
                    "StorageService expects a ScenarioSpec or a ClusterConfig, "
                    f"got {type(spec_or_config).__name__}"
                )
            from repro.scenarios.runner import (
                build_catalog,
                build_cluster_config,
                build_scheduler,
            )

            spec = spec_or_config
            if catalog is None:
                catalog = build_catalog(spec)
            config = build_cluster_config(spec)
            if scheduler is None and scheduler_factory is None:
                # Every device of a fleet gets its own scheduler instance, so
                # the scheduler is resolved as a factory.
                scheduler_factory = lambda: build_scheduler(spec)  # noqa: E731
            if admission is None:
                admission = spec.admission
            if trace is None:
                trace = spec.trace

        self.catalog = catalog
        self.config = config
        self.cost_model = config.cost_model
        self.env = Environment()
        self.object_store = ObjectStore()
        #: Service-wide metrics registry every component registers into.
        self.metrics = MetricsRegistry()
        #: Simulated-time tracer; the shared no-op singleton when disabled,
        #: so the off path costs one (false) attribute check per hook.
        self.tracer = Tracer(self.env) if trace else NULL_TRACER

        client_objects: Dict[str, List[str]] = {}
        for spec_ in config.client_specs:
            keys: List[str] = []
            for table in self._tables_used_by(spec_):
                relation = catalog.relation(table)
                keys.extend(
                    self.object_store.put_segment(spec_.client_id, segment.segment_id, segment)
                    for segment in relation.segments
                )
            client_objects[spec_.client_id] = keys

        factory = scheduler_factory or RankBasedScheduler
        if config.fleet_spec is not None:
            if scheduler is not None:
                raise ConfigurationError(
                    "fleet mode needs one scheduler per device; pass "
                    "scheduler_factory instead of a shared scheduler instance"
                )
            # Sharded mode: N devices behind a router, each with its own
            # layout (built over its placement subset) and scheduler.
            self.fleet: Optional[FleetRouter] = FleetRouter(
                env=self.env,
                object_store=self.object_store,
                client_objects=client_objects,
                fleet_spec=config.fleet_spec,
                layout_policy=config.layout_policy,
                scheduler_factory=factory,
                device_config=config.device_config,
                metrics=self.metrics,
                tracer=self.tracer,
            )
            self.device = None
            self.layout = None
            self.scheduler = None
            backend = self.fleet
        else:
            self.fleet = None
            self.scheduler = scheduler or factory()
            self.layout = config.layout_policy.build(client_objects)
            self.device = ColdStorageDevice(
                env=self.env,
                object_store=self.object_store,
                layout=self.layout,
                scheduler=self.scheduler,
                config=config.device_config,
                metrics=self.metrics,
                tracer=self.tracer,
            )
            backend = self.device
        #: What sessions actually talk to: the single device or the fleet router.
        self.backend = backend
        #: Admission controller, or ``None`` when admission is disabled.
        self.admission: Optional[AdmissionController] = (
            AdmissionController(self.env, admission, metrics=self.metrics)
            if admission is not None
            else None
        )
        self._specs_by_tenant = {spec_.client_id: spec_ for spec_ in config.client_specs}
        #: Sessions currently accepting submissions, by tenant.
        self._active_sessions: Dict[str, Session] = {}
        #: Every session ever opened, in creation order.
        self._sessions: List[Session] = []
        self._ran = False

    @staticmethod
    def _tables_used_by(spec: ClientSpec) -> List[str]:
        """Tables referenced by any query of one client (stable order)."""
        tables: List[str] = []
        for query in spec.queries:
            for table in query.tables:
                if table not in tables:
                    tables.append(table)
        return tables

    # ------------------------------------------------------------------ #
    # Sessions
    # ------------------------------------------------------------------ #
    @property
    def sessions(self) -> List[Session]:
        """Every session opened on this service, in creation order."""
        return list(self._sessions)

    def open_session(
        self,
        tenant_id: str,
        *,
        mode=_UNSET,
        cache_capacity=_UNSET,
        eviction_policy=_UNSET,
        enable_pruning=_UNSET,
        start_delay=_UNSET,
    ) -> Session:
        """Open a session for ``tenant_id``.

        The tenant must be declared in the cluster config / scenario spec
        (that is what loads its segments onto the backend); unset knobs
        default to the tenant's declared :class:`ClientSpec`.  A tenant can
        hold at most one open session at a time.
        """
        if self._ran:
            raise ServiceError("the service has already run; no further sessions")
        spec = self._specs_by_tenant.get(tenant_id)
        if spec is None:
            raise ServiceError(
                f"unknown tenant {tenant_id!r}; tenants are declared (with "
                "their datasets) in the cluster config or scenario spec: "
                f"{sorted(self._specs_by_tenant)}"
            )
        existing = self._active_sessions.get(tenant_id)
        if existing is not None and not existing.closed:
            raise ServiceError(
                f"tenant {tenant_id!r} already has an open session; close it "
                "before opening another"
            )
        session = Session(
            service=self,
            tenant_id=tenant_id,
            mode=spec.mode if mode is _UNSET else mode,
            cache_capacity=spec.cache_capacity if cache_capacity is _UNSET else cache_capacity,
            eviction_policy=(
                spec.eviction_policy if eviction_policy is _UNSET else eviction_policy
            ),
            enable_pruning=spec.enable_pruning if enable_pruning is _UNSET else enable_pruning,
            start_delay=spec.start_delay if start_delay is _UNSET else start_delay,
        )
        self._active_sessions[tenant_id] = session
        self._sessions.append(session)
        return session

    def submit_workload(self) -> Dict[str, List[QueryHandle]]:
        """Open a session per configured client and submit its whole workload.

        This is the batch shape of the legacy harness: every tenant's
        ``repetitions x queries`` are queued up front and the sessions are
        closed, so :meth:`run` drives everything to completion.
        """
        handles: Dict[str, List[QueryHandle]] = {}
        for spec in self.config.client_specs:
            session = self.open_session(spec.client_id)
            for _repetition in range(spec.repetitions):
                for query in spec.queries:
                    session.submit(query)
            session.close()
            handles[spec.client_id] = list(session.handles)
        return handles

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self) -> ClusterResult:
        """Drive the simulation until every submitted query has resolved.

        With no sessions opened yet, the configured batch workload is
        submitted first (legacy ``Cluster.run()`` semantics).  All sessions
        are closed before running; a service runs exactly once.
        """
        if self._ran:
            raise ServiceError("the service has already run")
        if not self._sessions:
            self.submit_workload()
        self._ran = True
        for session in self._sessions:
            session.close()
        try:
            self.env.run(self.env.all_of([session.process for session in self._sessions]))
        except Exception:
            # A crashed fleet failure/membership process starves the sessions
            # and surfaces as an unrelated "ran out of events" error; prefer
            # re-raising the root cause.
            if self.fleet is not None:
                self.fleet.raise_admin_failure()
            raise
        if self.fleet is not None:
            self.fleet.raise_admin_failure()

        busy_intervals = self.busy_intervals()
        # The busy-span unions depend only on the backend's interval log, so
        # build them once instead of per query result.
        span_index = busy_span_index(busy_intervals)
        # A tenant may have held several sessions over the service's lifetime
        # (close, then reopen); its measurements are concatenated in session
        # order.
        results_by_client: Dict[str, List] = {}
        ordered_results: List[Tuple[str, object]] = []
        for session in self._sessions:
            results_by_client.setdefault(session.tenant_id, []).extend(session.results)
            ordered_results.extend(
                (session.tenant_id, result) for result in session.results
            )
        # All queries attributed in one sorted sweep over the span index —
        # bit-identical to per-query attribute_waiting calls, without the
        # per-call bisect windows.
        breakdowns = attribute_waiting_batch(
            [result.blocked_intervals for _tenant, result in ordered_results],
            busy_intervals,
            [result.processing_time for _tenant, result in ordered_results],
            span_index=span_index,
        )
        breakdowns_by_client: Dict[str, List[ExecutionBreakdown]] = {}
        for (tenant, _result), breakdown in zip(ordered_results, breakdowns):
            breakdowns_by_client.setdefault(tenant, []).append(breakdown)

        stats = self.device_stats()
        return ClusterResult(
            config=self.config,
            results_by_client=results_by_client,
            breakdowns_by_client=breakdowns_by_client,
            device_switches=stats.group_switches,
            device_objects_served=stats.objects_served,
            total_simulated_time=self.env.now,
            admission=(
                self.admission.summary() if self.admission is not None else None
            ),
        )

    # ------------------------------------------------------------------ #
    # Backend introspection / administration
    # ------------------------------------------------------------------ #
    @property
    def membership(self):
        """The fleet's epoch-versioned membership (``None`` single-device).

        Sessions are oblivious to membership changes: they keep talking to
        the router while devices join, leave or fail underneath them.
        """
        return self.fleet.membership if self.fleet is not None else None

    def fleet_epoch(self) -> int:
        """Current fleet membership epoch (0 for single-device services)."""
        return self.fleet.epoch if self.fleet is not None else 0

    def device_stats(self):
        """Aggregate device counters (single device or whole fleet)."""
        if self.fleet is not None:
            return self.fleet.device_stats
        return self.device.stats

    def busy_intervals(self):
        """Busy intervals of the backend (merged across a fleet)."""
        return self.backend.busy_intervals

    def drain_pending(self) -> List[GetRequest]:
        """Pull every not-yet-served GET out of the backend (admin escape hatch).

        On an idle backend this is a no-op returning ``[]``.  In fleet mode
        every live device is drained; dead devices were already drained by
        the failover path.
        """
        if self.fleet is not None:
            drained: List[GetRequest] = []
            for member in self.fleet.members:
                if member.device is not None and member.alive:
                    drained.extend(member.device.drain_pending())
            return drained
        return self.device.drain_pending()
