"""Canonical experiment-description and batch-measurement types.

Historically a ``Cluster`` class here wired together everything one
experiment needs and ran it to completion.  That responsibility lives in the
service façade (:class:`repro.service.service.StorageService`); the
deprecated ``Cluster.run()`` shim has been retired — construct a
``StorageService(config, catalog=...)`` and call ``run()`` instead.

:class:`ClusterConfig` and :class:`ClusterResult` remain the canonical
experiment-description and batch-measurement types — the façade itself uses
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.cluster.client import ClientSpec, QueryResult
from repro.cluster.metrics import ExecutionBreakdown, mean
from repro.csd.device import DeviceConfig
from repro.csd.layout import ClientsPerGroupLayout, LayoutPolicy
from repro.engine.cost import CostModel
from repro.exceptions import ConfigurationError
from repro.fleet.spec import FleetSpec


@dataclass
class ClusterConfig:
    """Configuration of one multi-client experiment."""

    client_specs: Sequence[ClientSpec]
    layout_policy: LayoutPolicy = field(default_factory=ClientsPerGroupLayout)
    device_config: DeviceConfig = field(default_factory=DeviceConfig)
    cost_model: CostModel = field(default_factory=CostModel)
    #: When set, the cluster runs against a sharded multi-device fleet
    #: instead of the paper's single shared CSD.
    fleet_spec: Optional[FleetSpec] = None

    def __post_init__(self) -> None:
        if not self.client_specs:
            raise ConfigurationError("a cluster needs at least one client")
        names = [spec.client_id for spec in self.client_specs]
        if len(set(names)) != len(names):
            raise ConfigurationError("client identifiers must be unique")


@dataclass
class ClusterResult:
    """Everything measured during one cluster run."""

    config: ClusterConfig
    results_by_client: Dict[str, List[QueryResult]]
    breakdowns_by_client: Dict[str, List[ExecutionBreakdown]]
    device_switches: int
    device_objects_served: int
    total_simulated_time: float
    #: Admission-controller summary of the run (``None`` with admission
    #: disabled), so batch consumers — the experiment harness, notebooks —
    #: see shed/queued traffic without reaching into the service.
    admission: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------ #
    # Aggregates used by the figures
    # ------------------------------------------------------------------ #
    def client_ids(self) -> List[str]:
        """Identifiers of all clients in the experiment."""
        return list(self.results_by_client)

    def execution_times(self, client_id: Optional[str] = None) -> List[float]:
        """Per-query execution times for one client or for all clients."""
        if client_id is not None:
            return [result.execution_time for result in self.results_by_client[client_id]]
        times: List[float] = []
        for results in self.results_by_client.values():
            times.extend(result.execution_time for result in results)
        return times

    def average_execution_time(self) -> float:
        """Mean query execution time across all clients and repetitions."""
        return mean(self.execution_times())

    def cumulative_execution_time(self) -> float:
        """Sum of all query execution times (Figure 8 / Figure 12b metric)."""
        return sum(self.execution_times())

    def per_client_totals(self) -> Dict[str, float]:
        """Total execution time per client."""
        return {
            client_id: sum(result.execution_time for result in results)
            for client_id, results in self.results_by_client.items()
        }

    def total_get_requests(self) -> int:
        """Total number of GET requests issued across the cluster."""
        return sum(
            result.num_requests
            for results in self.results_by_client.values()
            for result in results
        )

    def average_breakdown(self) -> ExecutionBreakdown:
        """Average switch/transfer/processing breakdown across all queries."""
        breakdowns = [
            breakdown
            for per_client in self.breakdowns_by_client.values()
            for breakdown in per_client
        ]
        if not breakdowns:
            return ExecutionBreakdown(0.0, 0.0, 0.0, 0.0)
        count = len(breakdowns)
        return ExecutionBreakdown(
            processing=sum(b.processing for b in breakdowns) / count,
            switch_wait=sum(b.switch_wait for b in breakdowns) / count,
            transfer_wait=sum(b.transfer_wait for b in breakdowns) / count,
            other_wait=sum(b.other_wait for b in breakdowns) / count,
        )


