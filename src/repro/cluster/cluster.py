"""Cluster assembly and execution (legacy batch shim).

Historically a :class:`Cluster` wired together everything one experiment
needs and ran it to completion.  That responsibility now lives in the
service façade (:class:`repro.service.service.StorageService`); ``Cluster``
remains as a thin, deprecated shim that builds a service from the same
arguments, mirrors its backend attributes (``env``, ``device``, ``fleet``,
``scheduler``, ``layout``, …) and delegates :meth:`Cluster.run` to it, so
existing callers keep working unchanged.

:class:`ClusterConfig` and :class:`ClusterResult` are still the canonical
experiment-description and batch-measurement types — the façade itself uses
them.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.cluster.client import ClientSpec, QueryResult
from repro.cluster.metrics import ExecutionBreakdown, mean
from repro.csd.device import DeviceConfig
from repro.csd.layout import ClientsPerGroupLayout, LayoutPolicy
from repro.csd.scheduler import IOScheduler
from repro.engine.catalog import Catalog
from repro.engine.cost import CostModel
from repro.exceptions import ConfigurationError
from repro.fleet.spec import FleetSpec


@dataclass
class ClusterConfig:
    """Configuration of one multi-client experiment."""

    client_specs: Sequence[ClientSpec]
    layout_policy: LayoutPolicy = field(default_factory=ClientsPerGroupLayout)
    device_config: DeviceConfig = field(default_factory=DeviceConfig)
    cost_model: CostModel = field(default_factory=CostModel)
    #: When set, the cluster runs against a sharded multi-device fleet
    #: instead of the paper's single shared CSD.
    fleet_spec: Optional[FleetSpec] = None

    def __post_init__(self) -> None:
        if not self.client_specs:
            raise ConfigurationError("a cluster needs at least one client")
        names = [spec.client_id for spec in self.client_specs]
        if len(set(names)) != len(names):
            raise ConfigurationError("client identifiers must be unique")


@dataclass
class ClusterResult:
    """Everything measured during one cluster run."""

    config: ClusterConfig
    results_by_client: Dict[str, List[QueryResult]]
    breakdowns_by_client: Dict[str, List[ExecutionBreakdown]]
    device_switches: int
    device_objects_served: int
    total_simulated_time: float

    # ------------------------------------------------------------------ #
    # Aggregates used by the figures
    # ------------------------------------------------------------------ #
    def client_ids(self) -> List[str]:
        """Identifiers of all clients in the experiment."""
        return list(self.results_by_client)

    def execution_times(self, client_id: Optional[str] = None) -> List[float]:
        """Per-query execution times for one client or for all clients."""
        if client_id is not None:
            return [result.execution_time for result in self.results_by_client[client_id]]
        times: List[float] = []
        for results in self.results_by_client.values():
            times.extend(result.execution_time for result in results)
        return times

    def average_execution_time(self) -> float:
        """Mean query execution time across all clients and repetitions."""
        return mean(self.execution_times())

    def cumulative_execution_time(self) -> float:
        """Sum of all query execution times (Figure 8 / Figure 12b metric)."""
        return sum(self.execution_times())

    def per_client_totals(self) -> Dict[str, float]:
        """Total execution time per client."""
        return {
            client_id: sum(result.execution_time for result in results)
            for client_id, results in self.results_by_client.items()
        }

    def total_get_requests(self) -> int:
        """Total number of GET requests issued across the cluster."""
        return sum(
            result.num_requests
            for results in self.results_by_client.values()
            for result in results
        )

    def average_breakdown(self) -> ExecutionBreakdown:
        """Average switch/transfer/processing breakdown across all queries."""
        breakdowns = [
            breakdown
            for per_client in self.breakdowns_by_client.values()
            for breakdown in per_client
        ]
        if not breakdowns:
            return ExecutionBreakdown(0.0, 0.0, 0.0, 0.0)
        count = len(breakdowns)
        return ExecutionBreakdown(
            processing=sum(b.processing for b in breakdowns) / count,
            switch_wait=sum(b.switch_wait for b in breakdowns) / count,
            transfer_wait=sum(b.transfer_wait for b in breakdowns) / count,
            other_wait=sum(b.other_wait for b in breakdowns) / count,
        )


class Cluster:
    """Deprecated batch harness; a thin shim over the service façade.

    Use :class:`repro.service.service.StorageService` directly in new code::

        service = StorageService(config, catalog=catalog)
        result = service.run()
    """

    def __init__(
        self,
        catalog: Catalog,
        config: ClusterConfig,
        scheduler: Optional[IOScheduler] = None,
        scheduler_factory: Optional[Callable[[], IOScheduler]] = None,
        admission=None,
    ) -> None:
        # Deferred import: the service module imports this one for the
        # ClusterConfig / ClusterResult types.
        from repro.service.service import StorageService

        #: The façade instance this shim delegates to.
        self.service = StorageService(
            config,
            catalog=catalog,
            scheduler=scheduler,
            scheduler_factory=scheduler_factory,
            admission=admission,
        )
        self.catalog = catalog
        self.config = config
        # Mirror the service's backend surface so existing callers (tests,
        # invariant checks, notebooks) keep their attribute access.
        self.env = self.service.env
        self.object_store = self.service.object_store
        self.fleet = self.service.fleet
        self.device = self.service.device
        self.layout = self.service.layout
        self.scheduler = self.service.scheduler
        #: What clients actually talk to: the single device or the fleet router.
        self.backend = self.service.backend

    def device_stats(self):
        """Aggregate device counters (single device or whole fleet)."""
        return self.service.device_stats()

    def busy_intervals(self):
        """Busy intervals of the backend (merged across a fleet)."""
        return self.service.busy_intervals()

    def run(self) -> ClusterResult:
        """Run every client to completion and collect the measurements.

        .. deprecated:: 1.1
            Delegates to :meth:`StorageService.run`; submit through sessions
            on the façade instead.
        """
        warnings.warn(
            "Cluster.run() is deprecated; use repro.service.StorageService "
            "(open_session/submit/run) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.service.run()
