"""Cluster assembly and execution.

A :class:`Cluster` wires together everything one experiment needs — an object
store loaded with every tenant's segments, a disk-group layout, an I/O
scheduler, the shared CSD, and one database client per tenant — runs the
simulation to completion and exposes the measurements the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.cluster.client import ClientSpec, DatabaseClient, QueryResult
from repro.cluster.metrics import ExecutionBreakdown, attribute_waiting, mean
from repro.csd.device import ColdStorageDevice, DeviceConfig
from repro.csd.layout import ClientsPerGroupLayout, LayoutPolicy
from repro.csd.object_store import ObjectStore
from repro.csd.scheduler import IOScheduler, RankBasedScheduler
from repro.engine.catalog import Catalog
from repro.engine.cost import CostModel
from repro.exceptions import ConfigurationError
from repro.fleet.router import FleetRouter
from repro.fleet.spec import FleetSpec
from repro.sim import Environment


@dataclass
class ClusterConfig:
    """Configuration of one multi-client experiment."""

    client_specs: Sequence[ClientSpec]
    layout_policy: LayoutPolicy = field(default_factory=ClientsPerGroupLayout)
    device_config: DeviceConfig = field(default_factory=DeviceConfig)
    cost_model: CostModel = field(default_factory=CostModel)
    #: When set, the cluster runs against a sharded multi-device fleet
    #: instead of the paper's single shared CSD.
    fleet_spec: Optional[FleetSpec] = None

    def __post_init__(self) -> None:
        if not self.client_specs:
            raise ConfigurationError("a cluster needs at least one client")
        names = [spec.client_id for spec in self.client_specs]
        if len(set(names)) != len(names):
            raise ConfigurationError("client identifiers must be unique")


@dataclass
class ClusterResult:
    """Everything measured during one cluster run."""

    config: ClusterConfig
    results_by_client: Dict[str, List[QueryResult]]
    breakdowns_by_client: Dict[str, List[ExecutionBreakdown]]
    device_switches: int
    device_objects_served: int
    total_simulated_time: float

    # ------------------------------------------------------------------ #
    # Aggregates used by the figures
    # ------------------------------------------------------------------ #
    def client_ids(self) -> List[str]:
        """Identifiers of all clients in the experiment."""
        return list(self.results_by_client)

    def execution_times(self, client_id: Optional[str] = None) -> List[float]:
        """Per-query execution times for one client or for all clients."""
        if client_id is not None:
            return [result.execution_time for result in self.results_by_client[client_id]]
        times: List[float] = []
        for results in self.results_by_client.values():
            times.extend(result.execution_time for result in results)
        return times

    def average_execution_time(self) -> float:
        """Mean query execution time across all clients and repetitions."""
        return mean(self.execution_times())

    def cumulative_execution_time(self) -> float:
        """Sum of all query execution times (Figure 8 / Figure 12b metric)."""
        return sum(self.execution_times())

    def per_client_totals(self) -> Dict[str, float]:
        """Total execution time per client."""
        return {
            client_id: sum(result.execution_time for result in results)
            for client_id, results in self.results_by_client.items()
        }

    def total_get_requests(self) -> int:
        """Total number of GET requests issued across the cluster."""
        return sum(
            result.num_requests
            for results in self.results_by_client.values()
            for result in results
        )

    def average_breakdown(self) -> ExecutionBreakdown:
        """Average switch/transfer/processing breakdown across all queries."""
        breakdowns = [
            breakdown
            for per_client in self.breakdowns_by_client.values()
            for breakdown in per_client
        ]
        if not breakdowns:
            return ExecutionBreakdown(0.0, 0.0, 0.0, 0.0)
        count = len(breakdowns)
        return ExecutionBreakdown(
            processing=sum(b.processing for b in breakdowns) / count,
            switch_wait=sum(b.switch_wait for b in breakdowns) / count,
            transfer_wait=sum(b.transfer_wait for b in breakdowns) / count,
            other_wait=sum(b.other_wait for b in breakdowns) / count,
        )


class Cluster:
    """Builds and runs one multi-client experiment."""

    def __init__(
        self,
        catalog: Catalog,
        config: ClusterConfig,
        scheduler: Optional[IOScheduler] = None,
        scheduler_factory: Optional[Callable[[], IOScheduler]] = None,
    ) -> None:
        if scheduler is not None and scheduler_factory is not None:
            raise ConfigurationError("pass either scheduler or scheduler_factory, not both")
        self.catalog = catalog
        self.config = config
        self.env = Environment()
        self.object_store = ObjectStore()

        client_objects: Dict[str, List[str]] = {}
        for spec in config.client_specs:
            keys: List[str] = []
            for table in self._tables_used_by(spec):
                relation = catalog.relation(table)
                keys.extend(
                    self.object_store.put_segment(spec.client_id, segment.segment_id, segment)
                    for segment in relation.segments
                )
            client_objects[spec.client_id] = keys

        factory = scheduler_factory or RankBasedScheduler
        if config.fleet_spec is not None:
            if scheduler is not None:
                raise ConfigurationError(
                    "fleet mode needs one scheduler per device; pass "
                    "scheduler_factory instead of a shared scheduler instance"
                )
            # Sharded mode: N devices behind a router, each with its own
            # layout (built over its placement subset) and scheduler.
            self.fleet: Optional[FleetRouter] = FleetRouter(
                env=self.env,
                object_store=self.object_store,
                client_objects=client_objects,
                fleet_spec=config.fleet_spec,
                layout_policy=config.layout_policy,
                scheduler_factory=factory,
                device_config=config.device_config,
            )
            self.device = None
            self.layout = None
            self.scheduler = None
            backend = self.fleet
        else:
            self.fleet = None
            self.scheduler = scheduler or factory()
            self.layout = config.layout_policy.build(client_objects)
            self.device = ColdStorageDevice(
                env=self.env,
                object_store=self.object_store,
                layout=self.layout,
                scheduler=self.scheduler,
                config=config.device_config,
            )
            backend = self.device
        #: What clients actually talk to: the single device or the fleet router.
        self.backend = backend
        self.clients = [
            DatabaseClient(
                env=self.env,
                spec=spec,
                catalog=catalog,
                device=self.backend,
                cost_model=config.cost_model,
            )
            for spec in config.client_specs
        ]

    @staticmethod
    def _tables_used_by(spec: ClientSpec) -> List[str]:
        """Tables referenced by any query of one client (stable order)."""
        tables: List[str] = []
        for query in spec.queries:
            for table in query.tables:
                if table not in tables:
                    tables.append(table)
        return tables

    def device_stats(self):
        """Aggregate device counters (single device or whole fleet)."""
        if self.fleet is not None:
            return self.fleet.device_stats
        return self.device.stats

    def busy_intervals(self):
        """Busy intervals of the backend (merged across a fleet)."""
        return self.backend.busy_intervals

    def run(self) -> ClusterResult:
        """Run every client to completion and collect the measurements."""
        self.env.run(self.env.all_of([client.process for client in self.clients]))

        busy_intervals = self.busy_intervals()
        results_by_client = {client.client_id: list(client.results) for client in self.clients}
        breakdowns_by_client: Dict[str, List[ExecutionBreakdown]] = {}
        for client in self.clients:
            breakdowns = [
                attribute_waiting(
                    result.blocked_intervals,
                    busy_intervals,
                    processing_time=result.processing_time,
                )
                for result in client.results
            ]
            breakdowns_by_client[client.client_id] = breakdowns

        stats = self.device_stats()
        return ClusterResult(
            config=self.config,
            results_by_client=results_by_client,
            breakdowns_by_client=breakdowns_by_client,
            device_switches=stats.group_switches,
            device_objects_served=stats.objects_served,
            total_simulated_time=self.env.now,
        )
