"""Multi-client experiment harness.

The paper's testbed runs one database VM per compute server, all sharing a
single emulated CSD.  This package wires the same topology together over the
simulator: a set of :class:`~repro.cluster.client.DatabaseClient` processes
(each running either the Skipper executor or the vanilla pull-based executor
over its own tenant dataset), one shared
:class:`~repro.csd.device.ColdStorageDevice`, and the metrics needed to
reproduce the figures: average/cumulative execution time, the
switch/transfer/processing breakdown, stretch and the L2 norm of stretch.
"""

from repro.cluster.client import ClientSpec, DatabaseClient
from repro.cluster.cluster import ClusterConfig, ClusterResult
from repro.cluster.metrics import (
    ExecutionBreakdown,
    attribute_waiting,
    imbalance_coefficient,
    jain_fairness,
    l2_norm,
    max_stretch,
    merge_intervals,
    percentile,
    stretches,
)

__all__ = [
    "ClientSpec",
    "ClusterConfig",
    "ClusterResult",
    "DatabaseClient",
    "ExecutionBreakdown",
    "attribute_waiting",
    "imbalance_coefficient",
    "jain_fairness",
    "l2_norm",
    "max_stretch",
    "merge_intervals",
    "percentile",
    "stretches",
]
