"""Database client processes for multi-tenant experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.core.cache import EvictionPolicy, MaxProgressEviction
from repro.core.executor import SkipperExecutor, SkipperQueryResult
from repro.csd.backend import StorageBackend
from repro.engine.catalog import Catalog
from repro.engine.cost import CostModel
from repro.engine.query import Query
from repro.exceptions import ConfigurationError
from repro.sim import Environment
from repro.vanilla.executor import VanillaExecutor, VanillaQueryResult

QueryResult = Union[SkipperQueryResult, VanillaQueryResult]

#: Execution modes a client can run in.
MODE_SKIPPER = "skipper"
MODE_VANILLA = "vanilla"


@dataclass
class ClientSpec:
    """Static description of one database client in a cluster experiment."""

    client_id: str
    queries: Sequence[Query]
    mode: str = MODE_SKIPPER
    repetitions: int = 1
    cache_capacity: int = 30
    eviction_policy: Optional[EvictionPolicy] = None
    enable_pruning: bool = True
    start_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in (MODE_SKIPPER, MODE_VANILLA):
            raise ConfigurationError(f"unknown client mode: {self.mode!r}")
        if self.repetitions <= 0:
            raise ConfigurationError("repetitions must be positive")
        if not self.queries:
            raise ConfigurationError(f"client {self.client_id!r} has no queries to run")
        if self.mode == MODE_SKIPPER and self.cache_capacity <= 0:
            raise ConfigurationError(
                f"client {self.client_id!r}: cache_capacity must be positive, "
                f"got {self.cache_capacity}"
            )
        if not math.isfinite(self.start_delay) or self.start_delay < 0:
            raise ConfigurationError("start_delay must be finite and non-negative")


class DatabaseClient:
    """A simulated database instance running a sequence of queries."""

    def __init__(
        self,
        env: Environment,
        spec: ClientSpec,
        catalog: Catalog,
        device: StorageBackend,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.env = env
        self.spec = spec
        self.catalog = catalog
        self.device = device
        self.cost_model = cost_model or CostModel()
        self.results: List[QueryResult] = []
        self.process = env.process(self._run(), name=f"client:{spec.client_id}")

    @property
    def client_id(self) -> str:
        """Identifier of this client (also its tenant name on the CSD)."""
        return self.spec.client_id

    def _make_executor(self):
        if self.spec.mode == MODE_SKIPPER:
            return SkipperExecutor(
                env=self.env,
                client_id=self.spec.client_id,
                catalog=self.catalog,
                device=self.device,
                cache_capacity=self.spec.cache_capacity,
                eviction_policy=self.spec.eviction_policy or MaxProgressEviction(),
                cost_model=self.cost_model,
                enable_pruning=self.spec.enable_pruning,
            )
        return VanillaExecutor(
            env=self.env,
            client_id=self.spec.client_id,
            catalog=self.catalog,
            device=self.device,
            cost_model=self.cost_model,
        )

    def _run(self):
        if self.spec.start_delay > 0:
            yield self.env.timeout(self.spec.start_delay)
        for _repetition in range(self.spec.repetitions):
            for query in self.spec.queries:
                executor = self._make_executor()
                result = yield from executor.execute(query)
                self.results.append(result)
        return self.results

    # ------------------------------------------------------------------ #
    # Convenience accessors used by the metrics / harness layers
    # ------------------------------------------------------------------ #
    def execution_times(self) -> List[float]:
        """Execution time of every query run by this client."""
        return [result.execution_time for result in self.results]

    def total_execution_time(self) -> float:
        """Sum of all query execution times of this client."""
        return sum(self.execution_times())

    def average_execution_time(self) -> float:
        """Mean query execution time of this client (0.0 if none ran)."""
        times = self.execution_times()
        if not times:
            return 0.0
        return sum(times) / len(times)

    def total_requests(self) -> int:
        """Total number of GET requests issued by this client."""
        return sum(result.num_requests for result in self.results)
