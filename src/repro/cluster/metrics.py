"""Metrics used across the paper's evaluation.

* :func:`attribute_waiting` splits a client's blocked time into group-switch
  wait and data-transfer wait by intersecting the client's blocked intervals
  with the device's busy intervals (Figure 9 / Table 3).
* :func:`stretches`, :func:`l2_norm` and :func:`max_stretch` implement the
  scheduling-theory metrics of Section 5.2.5 (Figure 12): the stretch of a
  query is its observed execution time divided by its ideal (single-client)
  execution time, and the L2 norm aggregates stretches across clients.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.csd.device import BusyInterval
from repro.exceptions import ConfigurationError


@dataclass
class ExecutionBreakdown:
    """Decomposition of one query's execution time (seconds)."""

    processing: float
    switch_wait: float
    transfer_wait: float
    other_wait: float

    @property
    def total(self) -> float:
        """Total accounted execution time."""
        return self.processing + self.switch_wait + self.transfer_wait + self.other_wait

    def fractions(self) -> dict:
        """Each component as a fraction of the total (empty total → zeros)."""
        total = self.total
        if total <= 0:
            return {"processing": 0.0, "switch": 0.0, "transfer": 0.0, "other": 0.0}
        return {
            "processing": self.processing / total,
            "switch": self.switch_wait / total,
            "transfer": self.transfer_wait / total,
            "other": self.other_wait / total,
        }


def merge_intervals(intervals: Sequence[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Union of a collection of closed intervals as disjoint, sorted spans.

    Overlapping or touching intervals are coalesced so that downstream
    accounting never double-counts the same stretch of simulated time.
    """
    cleaned: List[Tuple[float, float]] = []
    for start, end in intervals:
        if end < start:
            raise ConfigurationError("blocked interval ends before it starts")
        if end > start:
            cleaned.append((start, end))
    cleaned.sort()
    merged: List[Tuple[float, float]] = []
    for start, end in cleaned:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


class MergedSpans:
    """Union of intervals supporting windowed overlap queries.

    The merged spans are disjoint and sorted, so both their starts and their
    ends are monotonically increasing; a query window ``[start, end]`` can
    bisect to the contiguous run of spans it intersects instead of scanning
    the whole union.  Skipped spans would have contributed exactly ``0.0`` to
    the running sum, and adding ``0.0`` is the floating-point identity, so
    the windowed sum is bit-identical to the full scan.
    """

    __slots__ = ("spans", "_starts", "_ends")

    def __init__(self, intervals: Sequence[Tuple[float, float]]) -> None:
        self.spans = merge_intervals(intervals)
        self._starts = [span[0] for span in self.spans]
        self._ends = [span[1] for span in self.spans]

    def overlap(self, start: float, end: float) -> float:
        """Total length of the union's intersection with ``[start, end]``."""
        low = bisect_right(self._ends, start)
        high = bisect_left(self._starts, end, low)
        total = 0.0
        spans = self.spans
        for index in range(low, high):
            span_start, span_end = spans[index]
            total += (span_end if span_end < end else end) - (
                span_start if span_start > start else start
            )
        return total


def busy_span_index(
    busy_intervals: Sequence[BusyInterval],
) -> Tuple[MergedSpans, MergedSpans]:
    """Precompute the (all-busy, transfer-only) span unions for a run.

    ``attribute_waiting`` re-derives both unions from the raw busy intervals
    on every call; a service reporting hundreds of query results against the
    same interval log should build this index once and pass it in.
    """
    relevant = [
        interval for interval in busy_intervals if interval.end > 0 and interval.duration > 0
    ]
    transfer_spans = MergedSpans(
        [(busy.start, busy.end) for busy in relevant if busy.kind != "switch"]
    )
    busy_spans = MergedSpans([(busy.start, busy.end) for busy in relevant])
    return busy_spans, transfer_spans


def attribute_waiting(
    blocked_intervals: Sequence[Tuple[float, float]],
    busy_intervals: Sequence[BusyInterval],
    processing_time: float = 0.0,
    *,
    span_index: Optional[Tuple[MergedSpans, MergedSpans]] = None,
) -> ExecutionBreakdown:
    """Attribute a client's blocked time to device switches vs. transfers.

    Any part of a blocked interval during which some device was transferring
    an object (for any tenant) counts as transfer wait; any part covered
    only by a group switch counts as switch wait; whatever is left (devices
    idle, queueing artefacts) is reported as ``other_wait``.

    Both the blocked intervals and the busy time of each kind are unioned
    first, so duplicated blocked intervals and *concurrently* busy devices
    (a fleet's merged interval stream, or overlapping concurrent transfers)
    are each counted once — every blocked second lands in exactly one
    bucket and the components always sum to the total blocked time.  For a
    serial single device, whose busy intervals never overlap, this is
    exactly the per-interval attribution the paper's Figure 9 uses.
    """
    switch_wait = 0.0
    transfer_wait = 0.0
    total_blocked = 0.0
    if span_index is None:
        span_index = busy_span_index(busy_intervals)
    busy_spans, transfer_spans = span_index
    for start, end in merge_intervals(blocked_intervals):
        total_blocked += end - start
        covered = busy_spans.overlap(start, end)
        transferring = transfer_spans.overlap(start, end)
        transfer_wait += transferring
        # Seconds covered by busy time but not by any transfer: a switch was
        # the only thing happening (switch-while-transferring counts as
        # transfer wait, the bucket closest to the client's experience).
        switch_wait += covered - transferring
    other = max(0.0, total_blocked - switch_wait - transfer_wait)
    return ExecutionBreakdown(
        processing=processing_time,
        switch_wait=switch_wait,
        transfer_wait=transfer_wait,
        other_wait=other,
    )


def attribute_waiting_batch(
    blocked_interval_lists: Sequence[Sequence[Tuple[float, float]]],
    busy_intervals: Sequence[BusyInterval],
    processing_times: Sequence[float],
    *,
    span_index: Optional[Tuple[MergedSpans, MergedSpans]] = None,
) -> List[ExecutionBreakdown]:
    """:func:`attribute_waiting` for many queries in one sorted sweep.

    All queries' merged blocked intervals are sorted by start once and walked
    against the span index with a single forward-only pointer per span union,
    instead of one bisect window per query call.  The result is bit-identical
    to calling :func:`attribute_waiting` per query: each query's intervals
    keep their relative order under the stable sort (they are disjoint and
    ascending), so every per-query float accumulates in exactly the same
    sequence, and the forward pointer lands where ``bisect_right`` would
    because the sweep's window starts are non-decreasing.
    """
    if span_index is None:
        span_index = busy_span_index(busy_intervals)
    busy_spans, transfer_spans = span_index
    merged_per_query = [
        merge_intervals(blocked) for blocked in blocked_interval_lists
    ]
    tagged = [
        (start, end, query)
        for query, merged in enumerate(merged_per_query)
        for start, end in merged
    ]
    tagged.sort(key=lambda item: item[0])

    count = len(merged_per_query)
    totals = [0.0] * count
    switches = [0.0] * count
    transfers = [0.0] * count
    b_spans, b_starts, b_ends = busy_spans.spans, busy_spans._starts, busy_spans._ends
    t_spans, t_starts, t_ends = (
        transfer_spans.spans,
        transfer_spans._starts,
        transfer_spans._ends,
    )
    b_size, t_size = len(b_spans), len(t_spans)
    b_low = 0
    t_low = 0
    for start, end, query in tagged:
        while b_low < b_size and b_ends[b_low] <= start:
            b_low += 1
        covered = 0.0
        for index in range(b_low, bisect_left(b_starts, end, b_low)):
            span_start, span_end = b_spans[index]
            covered += (span_end if span_end < end else end) - (
                span_start if span_start > start else start
            )
        while t_low < t_size and t_ends[t_low] <= start:
            t_low += 1
        transferring = 0.0
        for index in range(t_low, bisect_left(t_starts, end, t_low)):
            span_start, span_end = t_spans[index]
            transferring += (span_end if span_end < end else end) - (
                span_start if span_start > start else start
            )
        totals[query] += end - start
        transfers[query] += transferring
        switches[query] += covered - transferring
    return [
        ExecutionBreakdown(
            processing=processing_times[query],
            switch_wait=switches[query],
            transfer_wait=transfers[query],
            other_wait=max(0.0, totals[query] - switches[query] - transfers[query]),
        )
        for query in range(count)
    ]


def stretches(observed_times: Iterable[float], ideal_time: float) -> List[float]:
    """Per-query stretch values: observed execution time / ideal time."""
    if ideal_time <= 0:
        raise ConfigurationError("ideal execution time must be positive")
    return [observed / ideal_time for observed in observed_times]


def l2_norm(values: Iterable[float]) -> float:
    """The L2 norm (root of the sum of squares) of a collection of stretches."""
    return math.sqrt(sum(value * value for value in values))


def max_stretch(values: Iterable[float]) -> float:
    """The maximum stretch of a workload (worst-served query)."""
    values = list(values)
    if not values:
        raise ConfigurationError("max_stretch requires at least one value")
    return max(values)


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for an empty collection)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def percentile(values: Iterable[float], fraction: float) -> float:
    """Linear-interpolation percentile of ``values`` (``fraction`` in [0, 1]).

    Deterministic and dependency-free, matching numpy's default
    ("linear") method; used for the latency distributions in scenario
    reports.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError("percentile fraction must be between 0 and 1")
    ordered = sorted(values)
    if not ordered:
        raise ConfigurationError("percentile requires at least one value")
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return ordered[lower]
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


def imbalance_coefficient(values: Iterable[float]) -> float:
    """Coefficient of variation (population std / mean) of a load vector.

    0.0 means perfectly even load across devices; the fleet layer reports it
    both fleet-wide and per membership epoch, which is how a rebalance is
    shown to actually *balance* (the post-join coefficient drops).  An empty
    or all-zero vector is perfectly balanced by convention; negative loads
    are a sign of broken accounting and are rejected rather than silently
    reported as balance.
    """
    values = list(values)
    if not values:
        return 0.0
    if any(value < 0 for value in values):
        raise ConfigurationError("imbalance_coefficient requires non-negative values")
    mean_value = sum(values) / len(values)
    if mean_value == 0:
        return 0.0
    variance = sum((value - mean_value) ** 2 for value in values) / len(values)
    return variance**0.5 / mean_value


def jain_fairness(values: Iterable[float]) -> float:
    """Jain's fairness index: ``(Σx)² / (n · Σx²)``.

    1.0 means perfectly even allocation across clients; 1/n means a single
    client got everything.  An all-zero allocation is reported as perfectly
    fair (1.0).
    """
    values = list(values)
    if not values:
        raise ConfigurationError("jain_fairness requires at least one value")
    if any(value < 0 for value in values):
        raise ConfigurationError("jain_fairness requires non-negative values")
    square_sum = sum(value * value for value in values)
    if square_sum == 0:
        return 1.0
    total = sum(values)
    return (total * total) / (len(values) * square_sum)
