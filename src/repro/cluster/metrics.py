"""Metrics used across the paper's evaluation.

* :func:`attribute_waiting` splits a client's blocked time into group-switch
  wait and data-transfer wait by intersecting the client's blocked intervals
  with the device's busy intervals (Figure 9 / Table 3).
* :func:`stretches`, :func:`l2_norm` and :func:`max_stretch` implement the
  scheduling-theory metrics of Section 5.2.5 (Figure 12): the stretch of a
  query is its observed execution time divided by its ideal (single-client)
  execution time, and the L2 norm aggregates stretches across clients.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.csd.device import BusyInterval
from repro.exceptions import ConfigurationError


@dataclass
class ExecutionBreakdown:
    """Decomposition of one query's execution time (seconds)."""

    processing: float
    switch_wait: float
    transfer_wait: float
    other_wait: float

    @property
    def total(self) -> float:
        """Total accounted execution time."""
        return self.processing + self.switch_wait + self.transfer_wait + self.other_wait

    def fractions(self) -> dict:
        """Each component as a fraction of the total (empty total → zeros)."""
        total = self.total
        if total <= 0:
            return {"processing": 0.0, "switch": 0.0, "transfer": 0.0, "other": 0.0}
        return {
            "processing": self.processing / total,
            "switch": self.switch_wait / total,
            "transfer": self.transfer_wait / total,
            "other": self.other_wait / total,
        }


def _overlap(a_start: float, a_end: float, b_start: float, b_end: float) -> float:
    """Length of the intersection of two closed intervals."""
    return max(0.0, min(a_end, b_end) - max(a_start, b_start))


def attribute_waiting(
    blocked_intervals: Sequence[Tuple[float, float]],
    busy_intervals: Sequence[BusyInterval],
    processing_time: float = 0.0,
) -> ExecutionBreakdown:
    """Attribute a client's blocked time to device switches vs. transfers.

    Any part of a blocked interval during which the device was performing a
    group switch counts as switch wait; any part during which it was
    transferring an object (for any tenant) counts as transfer wait; whatever
    is left (device idle, queueing artefacts) is reported as ``other_wait``.
    """
    switch_wait = 0.0
    transfer_wait = 0.0
    total_blocked = 0.0
    relevant = [
        interval for interval in busy_intervals if interval.end > 0 and interval.duration > 0
    ]
    for start, end in blocked_intervals:
        if end < start:
            raise ConfigurationError("blocked interval ends before it starts")
        total_blocked += end - start
        for busy in relevant:
            overlap = _overlap(start, end, busy.start, busy.end)
            if overlap <= 0:
                continue
            if busy.kind == "switch":
                switch_wait += overlap
            else:
                transfer_wait += overlap
    other = max(0.0, total_blocked - switch_wait - transfer_wait)
    return ExecutionBreakdown(
        processing=processing_time,
        switch_wait=switch_wait,
        transfer_wait=transfer_wait,
        other_wait=other,
    )


def stretches(observed_times: Iterable[float], ideal_time: float) -> List[float]:
    """Per-query stretch values: observed execution time / ideal time."""
    if ideal_time <= 0:
        raise ConfigurationError("ideal execution time must be positive")
    return [observed / ideal_time for observed in observed_times]


def l2_norm(values: Iterable[float]) -> float:
    """The L2 norm (root of the sum of squares) of a collection of stretches."""
    return math.sqrt(sum(value * value for value in values))


def max_stretch(values: Iterable[float]) -> float:
    """The maximum stretch of a workload (worst-served query)."""
    values = list(values)
    if not values:
        raise ConfigurationError("max_stretch requires at least one value")
    return max(values)


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for an empty collection)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)
