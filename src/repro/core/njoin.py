"""Stateless n-ary join over the cached segments of one subplan.

The MJoin state manager decides *when* a subplan is runnable; this module
does the actual joining.  Hash tables are built lazily per (segment, join
key) and memoised on the cached entry, mirroring the paper's design where the
state manager builds hash tables as objects arrive and the join operator
merely probes them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.operators.base import OperatorStats, Row
from repro.engine.operators.hash_join import merge_rows
from repro.engine.planner import QueryPlan
from repro.engine.predicate import Predicate
from repro.engine.query import Query
from repro.engine.relation import Segment
from repro.exceptions import ExecutionError


class PreparedSegment:
    """A fetched segment after filtering, ready to be joined.

    ``hash_tables`` maps a tuple of key column names to a hash table from key
    values to row lists; tables are built on first use and reused across all
    subplans that touch the segment.  Single-column tables are keyed by the
    bare column value (no 1-tuple wrapper), so neither the build nor the
    probe loop allocates a tuple per row.
    """

    __slots__ = ("segment_id", "table_name", "rows", "hash_tables")

    def __init__(self, segment_id: str, table_name: str, rows: List[Row]) -> None:
        self.segment_id = segment_id
        self.table_name = table_name
        self.rows = rows
        self.hash_tables: Dict[Tuple[str, ...], Dict[object, List[Row]]] = {}

    @property
    def num_rows(self) -> int:
        """Number of (filtered) rows buffered for the segment."""
        return len(self.rows)

    def hash_table(self, key_columns: Tuple[str, ...]) -> Dict[object, List[Row]]:
        """Return (building if necessary) the hash table on ``key_columns``."""
        table = self.hash_tables.get(key_columns)
        if table is None:
            table = {}
            if len(key_columns) == 1:
                column = key_columns[0]
                for row in self.rows:
                    key: object = row[column]
                    bucket = table.get(key)
                    if bucket is None:
                        table[key] = [row]
                    else:
                        bucket.append(row)
            else:
                for row in self.rows:
                    key = tuple([row[column] for column in key_columns])
                    bucket = table.get(key)
                    if bucket is None:
                        table[key] = [row]
                    else:
                        bucket.append(row)
            self.hash_tables[key_columns] = table
        return table


def prepare_segment(
    segment: Segment, predicate: Optional[Predicate], segment_id: Optional[str] = None
) -> PreparedSegment:
    """Filter a raw segment into a :class:`PreparedSegment`.

    Columnar segments are filtered over their column arrays when the
    predicate supports bulk selection (only the matching rows are ever
    materialised into dicts); everything else falls back to per-row
    evaluation.  The prepared row list is never mutated downstream, so the
    unfiltered path shares the segment's row list instead of copying it.
    """
    if predicate is None:
        rows = segment.rows
    else:
        filtered = getattr(segment, "filtered_rows", None)
        rows = filtered(predicate) if filtered is not None else None
        if rows is None:
            rows = [row for row in segment.rows if predicate.evaluate(row)]
    return PreparedSegment(
        segment_id=segment_id or segment.segment_id,
        table_name=segment.table_name,
        rows=rows,
    )


class NAryJoin:
    """Joins one prepared segment per relation following a left-deep order."""

    def __init__(self, query: Query, plan: QueryPlan) -> None:
        self.query = query
        self.plan = plan
        if [step.table for step in plan.steps] and set(step.table for step in plan.steps) != set(
            query.tables
        ):
            raise ExecutionError("plan does not cover the query's tables")
        #: Table names in plan order, and per-probe-step (probe, build) key
        #: columns — both depend only on the plan, so deriving them once here
        #: keeps them out of the per-subplan execute loop.
        self._step_tables: Tuple[str, ...] = tuple(step.table for step in plan.steps)
        self._step_keys: List[Tuple[Tuple[str, ...], Tuple[str, ...]]] = [
            (
                tuple(
                    condition.column_for(condition.other(step.table))
                    for condition in step.conditions
                ),
                tuple(condition.column_for(step.table) for condition in step.conditions),
            )
            for step in plan.steps[1:]
        ]

    def execute(
        self, segments: Dict[str, PreparedSegment], stats: Optional[OperatorStats] = None
    ) -> List[Row]:
        """Join ``segments`` (table name → prepared segment) and return rows."""
        missing = [table for table in self._step_tables if table not in segments]
        if missing:
            raise ExecutionError(f"missing segments for tables: {missing}")
        return self.execute_ordered(
            [segments[table] for table in self._step_tables], stats
        )

    def execute_ordered(
        self,
        segments: Sequence[PreparedSegment],
        stats: Optional[OperatorStats] = None,
    ) -> List[Row]:
        """Join ``segments`` given one prepared segment per plan step, in order.

        The subplan tracker orders each subplan's segments by the plan's
        join order, so the MJoin arrival loop can hand them over positionally
        — no table-name dict per subplan.
        """
        stats = stats if stats is not None else OperatorStats()
        # The first table's row list is only read (each step rebinds
        # ``current`` to a fresh list), so no defensive copy is needed.
        current: List[Row] = segments[0].rows
        if not current:
            return []

        for prepared, (probe_columns, build_columns) in zip(segments[1:], self._step_keys):
            table_get = prepared.hash_table(build_columns).get
            # Every probe row increments the counter exactly once, so the
            # per-row increment can be hoisted out of the loop.
            stats.tuples_probed += len(current)
            next_rows: List[Row] = []
            append = next_rows.append
            if len(probe_columns) == 1:
                probe_column = probe_columns[0]
                for row in current:
                    matches = table_get(row[probe_column])
                    if matches:
                        for match in matches:
                            append(merge_rows(match, row))
            else:
                for row in current:
                    matches = table_get(tuple([row[column] for column in probe_columns]))
                    if matches:
                        for match in matches:
                            append(merge_rows(match, row))
            current = next_rows
            if not current:
                return []
        stats.tuples_output += len(current)
        return current
