"""Stateless n-ary join over the cached segments of one subplan.

The MJoin state manager decides *when* a subplan is runnable; this module
does the actual joining.  Hash tables are built lazily per (segment, join
key) and memoised on the cached entry, mirroring the paper's design where the
state manager builds hash tables as objects arrive and the join operator
merely probes them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.operators.base import OperatorStats, Row
from repro.engine.operators.hash_join import merge_rows
from repro.engine.planner import QueryPlan
from repro.engine.predicate import Predicate
from repro.engine.query import Query
from repro.engine.relation import Segment
from repro.exceptions import ExecutionError


class PreparedSegment:
    """A fetched segment after filtering, ready to be joined.

    ``hash_tables`` maps a tuple of key column names to a hash table from key
    values to row lists; tables are built on first use and reused across all
    subplans that touch the segment.
    """

    __slots__ = ("segment_id", "table_name", "rows", "hash_tables")

    def __init__(self, segment_id: str, table_name: str, rows: List[Row]) -> None:
        self.segment_id = segment_id
        self.table_name = table_name
        self.rows = rows
        self.hash_tables: Dict[Tuple[str, ...], Dict[Tuple[object, ...], List[Row]]] = {}

    @property
    def num_rows(self) -> int:
        """Number of (filtered) rows buffered for the segment."""
        return len(self.rows)

    def hash_table(self, key_columns: Tuple[str, ...]) -> Dict[Tuple[object, ...], List[Row]]:
        """Return (building if necessary) the hash table on ``key_columns``."""
        table = self.hash_tables.get(key_columns)
        if table is None:
            table = {}
            if len(key_columns) == 1:
                column = key_columns[0]
                for row in self.rows:
                    key = (row[column],)
                    bucket = table.get(key)
                    if bucket is None:
                        table[key] = [row]
                    else:
                        bucket.append(row)
            else:
                for row in self.rows:
                    key = tuple([row[column] for column in key_columns])
                    bucket = table.get(key)
                    if bucket is None:
                        table[key] = [row]
                    else:
                        bucket.append(row)
            self.hash_tables[key_columns] = table
        return table


def prepare_segment(
    segment: Segment, predicate: Optional[Predicate], segment_id: Optional[str] = None
) -> PreparedSegment:
    """Filter a raw segment into a :class:`PreparedSegment`."""
    if predicate is None:
        rows = list(segment.rows)
    else:
        rows = [row for row in segment.rows if predicate.evaluate(row)]
    return PreparedSegment(
        segment_id=segment_id or segment.segment_id,
        table_name=segment.table_name,
        rows=rows,
    )


class NAryJoin:
    """Joins one prepared segment per relation following a left-deep order."""

    def __init__(self, query: Query, plan: QueryPlan) -> None:
        self.query = query
        self.plan = plan
        if [step.table for step in plan.steps] and set(step.table for step in plan.steps) != set(
            query.tables
        ):
            raise ExecutionError("plan does not cover the query's tables")

    def execute(
        self, segments: Dict[str, PreparedSegment], stats: Optional[OperatorStats] = None
    ) -> List[Row]:
        """Join ``segments`` (table name → prepared segment) and return rows."""
        stats = stats if stats is not None else OperatorStats()
        missing = [step.table for step in self.plan.steps if step.table not in segments]
        if missing:
            raise ExecutionError(f"missing segments for tables: {missing}")

        first = self.plan.steps[0].table
        current: List[Row] = list(segments[first].rows)
        if not current:
            return []

        for step in self.plan.steps[1:]:
            probe_columns = tuple(
                condition.column_for(condition.other(step.table)) for condition in step.conditions
            )
            build_columns = tuple(
                condition.column_for(step.table) for condition in step.conditions
            )
            hash_table = segments[step.table].hash_table(build_columns)
            # Every probe row increments the counter exactly once, so the
            # per-row increment can be hoisted out of the loop.
            stats.tuples_probed += len(current)
            next_rows: List[Row] = []
            append = next_rows.append
            table_get = hash_table.get
            if len(probe_columns) == 1:
                probe_column = probe_columns[0]
                for row in current:
                    matches = table_get((row[probe_column],))
                    if matches:
                        for match in matches:
                            append(merge_rows(match, row))
            else:
                for row in current:
                    matches = table_get(tuple([row[column] for column in probe_columns]))
                    if matches:
                        for match in matches:
                            append(merge_rows(match, row))
            current = next_rows
            if not current:
                return []
        stats.tuples_output += len(current)
        return current
