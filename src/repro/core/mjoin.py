"""The cache-aware MJoin state manager (Algorithm 1 in the paper).

The state manager owns the query's subplan tracker, the bounded object cache
and the incremental aggregate.  It is deliberately free of any notion of
simulated time: the Skipper executor (or a unit test) feeds it object
arrivals one by one and receives back an :class:`ArrivalOutcome` describing
what happened — what was cached, what was evicted, which subplans ran and how
much work that took — so callers can charge simulated CPU seconds through the
cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.core.cache import ObjectCache
from repro.core.njoin import NAryJoin, PreparedSegment, prepare_segment
from repro.core.subplan import SubplanTracker, make_tracker
from repro.engine.catalog import Catalog
from repro.engine.operators.aggregate import AggregateState
from repro.engine.operators.base import OperatorStats, Row
from repro.engine.planner import Planner, QueryPlan
from repro.engine.query import Query
from repro.engine.relation import Segment
from repro.exceptions import CacheError, ExecutionError


@dataclass
class ArrivalOutcome:
    """What happened when one object arrived at the state manager."""

    segment_id: str
    cached: bool
    evicted: Optional[str] = None
    evicted_still_needed: bool = False
    executed_subplans: int = 0
    pruned_subplans: int = 0
    result_rows: int = 0
    stats: OperatorStats = field(default_factory=OperatorStats)


class MJoinStateManager:
    """Implements the MJoin state-manager loop over out-of-order arrivals."""

    def __init__(
        self,
        query: Query,
        catalog: Catalog,
        cache: ObjectCache,
        enable_pruning: bool = True,
        planner: Optional[Planner] = None,
    ) -> None:
        self.query = query
        self.catalog = catalog
        self.cache = cache
        self.enable_pruning = enable_pruning
        planner = planner or Planner(catalog)
        self.plan: QueryPlan = planner.plan(query)
        if cache.capacity < len(query.tables):
            raise CacheError(
                f"cache capacity {cache.capacity} is smaller than the number of joined "
                f"relations ({len(query.tables)}); no subplan could ever run"
            )
        self.tracker = make_tracker(query, catalog, table_order=self.plan.join_order)
        self.njoin = NAryJoin(query, self.plan)
        self.aggregate = AggregateState(query.group_by, query.aggregates)
        #: Objects found to contribute nothing (empty after filtering).
        self.empty_objects: Set[str] = set()
        #: Objects evicted while still needed; re-requested next cycle.
        self.reissue_queue: List[str] = []
        self.cycles_completed = 0
        self.total_arrivals = 0
        self.total_result_rows = 0
        self.stats = OperatorStats()

    # ------------------------------------------------------------------ #
    # Request planning
    # ------------------------------------------------------------------ #
    def initial_requests(self) -> List[str]:
        """All objects needed to evaluate the query (issued up front)."""
        requests: List[str] = []
        for table in self.plan.join_order:
            requests.extend(self.catalog.segment_ids(table))
        return requests

    def next_cycle_requests(self) -> List[str]:
        """Objects needed by pending subplans that are not currently cached.

        Called once all previously issued requests have been received; the
        returned objects form the next request cycle (the paper's re-issue
        queue).  Objects known to be empty are never re-requested.
        """
        self.cycles_completed += 1
        self.reissue_queue = []
        if not self.tracker.has_pending():
            return []
        cached = self.cache.segment_ids()
        needed = self.tracker.objects_needed()
        requests = sorted(
            segment_id
            for segment_id in needed
            if segment_id not in cached and segment_id not in self.empty_objects
        )
        return requests

    def is_complete(self) -> bool:
        """Whether every subplan has been executed or pruned."""
        return not self.tracker.has_pending()

    # ------------------------------------------------------------------ #
    # Arrival processing
    # ------------------------------------------------------------------ #
    def on_arrival(self, segment_id: str, segment: Segment) -> ArrivalOutcome:
        """Process one object pushed by the CSD."""
        self.total_arrivals += 1
        outcome = ArrivalOutcome(segment_id=segment_id, cached=False)
        outcome.stats.tuples_scanned += segment.num_rows

        if segment_id in self.cache or not self.tracker.object_in_pending(segment_id):
            # Either a duplicate delivery or every subplan involving the
            # object has already been executed/pruned while it was in flight.
            self.stats.merge(outcome.stats)
            return outcome

        table_name = self.catalog.table_of_segment(segment_id)
        prepared = prepare_segment(segment, self.query.filter_for(table_name), segment_id=segment_id)

        if self.enable_pruning and prepared.num_rows == 0:
            outcome.pruned_subplans = len(self.tracker.prune_object_ids(segment_id))
            self.empty_objects.add(segment_id)
            self.stats.merge(outcome.stats)
            return outcome

        evicted: Optional[str] = None
        if self.cache.is_full:
            evicted = self.cache.evict(segment_id, self.tracker)
            outcome.evicted = evicted
            outcome.evicted_still_needed = self.tracker.object_in_pending(evicted)
            if outcome.evicted_still_needed:
                self.reissue_queue.append(evicted)

        runnable = self.tracker.runnable_items(self.cache.ids_view(), segment_id)
        self.cache.add(segment_id, prepared, num_rows=prepared.num_rows)
        outcome.cached = True
        outcome.stats.tuples_built += prepared.num_rows

        # Execute every newly runnable subplan.  The per-subplan join below
        # recomputes intermediate results combination by combination, which
        # is convenient for correctness (the union over subplans is exactly
        # the query answer, with no duplicates) but would overcount CPU work:
        # the real MJoin uses symmetric hashing, where an arriving tuple
        # probes the hash tables of the other relations once, regardless of
        # how many segment combinations it completes.  The work counters in
        # ``outcome.stats`` therefore charge the incremental symmetric-hash
        # cost — one probe per buffered tuple of the new object per other
        # relation, plus the emitted result tuples — while the per-subplan
        # execution results are discarded from the cost accounting.
        subplan_stats = OperatorStats()
        if runnable:
            cache_payloads = self.cache.payloads
            execute = self.njoin.execute_ordered
            aggregate_add = self.aggregate.add_all
            result_rows = 0
            for _, combination in runnable:
                # ``combination`` is ordered by the plan's join order (the
                # tracker was built with it), so the prepared segments are
                # handed to the join positionally.  ``payloads`` touches the
                # cache entries exactly like one ``get`` per segment, so hit
                # counts and recency ticks are unchanged.
                rows = execute(cache_payloads(combination), subplan_stats)
                if rows:
                    aggregate_add(rows)
                    result_rows += len(rows)
            self.tracker.mark_executed_ids(
                [subplan_id for subplan_id, _ in runnable]
            )
            outcome.result_rows = result_rows
            self.total_result_rows += result_rows
        outcome.executed_subplans = len(runnable)
        if runnable:
            other_tables = len(self.plan.steps) - 1
            outcome.stats.tuples_probed += prepared.num_rows * max(1, other_tables)
            outcome.stats.tuples_output += outcome.result_rows
        self.stats.merge(outcome.stats)
        return outcome

    def _segments_for(self, segment_ids: Sequence[str]) -> Dict[str, PreparedSegment]:
        segments: Dict[str, PreparedSegment] = {}
        for segment_id in segment_ids:
            entry = self.cache.get(segment_id)
            prepared = entry.payload
            if not isinstance(prepared, PreparedSegment):  # pragma: no cover - defensive
                raise ExecutionError(f"cache holds unexpected payload for {segment_id!r}")
            segments[prepared.table_name] = prepared
        return segments

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def results(self) -> List[Row]:
        """Final query answer accumulated across all executed subplans."""
        rows = self.aggregate.results()
        if self.query.order_by:
            rows.sort(key=lambda row: tuple(row[column] for column in self.query.order_by))
        if self.query.limit is not None:
            rows = rows[: self.query.limit]
        return rows
