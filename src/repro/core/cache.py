"""Skipper's bounded object cache and eviction policies.

The MJoin state manager buffers fetched objects (relation segments) in a
cache whose capacity is expressed in objects — the paper's cache sizes in GB
map one-to-one because each object is a 1 GB segment.  When the cache is full
and a new object arrives, an :class:`EvictionPolicy` picks the victim.

Policies:

* :class:`MaxProgressEviction` — the paper's final design: evict the object
  participating in the fewest subplans that would become executable given
  the current cache contents and the new arrival; break ties by the number
  of pending subplans.
* :class:`MaxPendingSubplansEviction` — the paper's first attempt: evict the
  object participating in the fewest *pending* subplans.
* :class:`LRUEviction`, :class:`FIFOEviction` — classic baselines used in the
  ablation benchmarks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, KeysView, List, Optional, Set

from repro.core.subplan import SubplanTracker
from repro.exceptions import CacheError


@dataclass
class CachedObject:
    """A cached segment plus the bookkeeping the policies rely on."""

    segment_id: str
    payload: object
    inserted_at: int
    last_used: int
    #: Number of filtered rows buffered for this object (for diagnostics).
    num_rows: int = 0


class EvictionPolicy:
    """Strategy interface for choosing an eviction victim."""

    name = "base"

    def choose_victim(
        self,
        cache: ObjectCache,
        new_object: str,
        tracker: SubplanTracker,
    ) -> str:
        """Return the segment id of the object to evict."""
        raise NotImplementedError


class MaxProgressEviction(EvictionPolicy):
    """Evict the object enabling the least immediate progress (paper default)."""

    name = "max-progress"

    def choose_victim(self, cache: ObjectCache, new_object: str, tracker: SubplanTracker) -> str:
        # The key ends with the (unique) segment id, so ``min`` over any
        # iteration order returns the same victim a pre-sorted scan would.
        cached_ids = cache.ids_view()
        executable = tracker.executable_counts(cached_ids, new_object)
        pending = tracker.pending_counts(cached_ids)
        if any(executable.values()):
            return min(
                cached_ids,
                key=lambda segment_id: (
                    executable[segment_id],
                    pending[segment_id],
                    segment_id,
                ),
            )
        # Nothing becomes runnable whichever way we evict (the common case
        # while a large key population streams in): the first key component
        # is uniformly zero, so drop it.
        return min(
            cached_ids,
            key=lambda segment_id: (pending[segment_id], segment_id),
        )


class MaxPendingSubplansEviction(EvictionPolicy):
    """Evict the object participating in the fewest pending subplans."""

    name = "max-pending-subplans"

    def choose_victim(self, cache: ObjectCache, new_object: str, tracker: SubplanTracker) -> str:
        cached_ids = cache.ids_view()
        pending = tracker.pending_counts(cached_ids)
        return min(
            cached_ids,
            key=lambda segment_id: (pending[segment_id], segment_id),
        )


class LRUEviction(EvictionPolicy):
    """Evict the least recently used object."""

    name = "lru"

    def choose_victim(self, cache: ObjectCache, new_object: str, tracker: SubplanTracker) -> str:
        return min(
            cache.objects(),
            key=lambda cached: (cached.last_used, cached.segment_id),
        ).segment_id


class FIFOEviction(EvictionPolicy):
    """Evict the object that has been cached the longest."""

    name = "fifo"

    def choose_victim(self, cache: ObjectCache, new_object: str, tracker: SubplanTracker) -> str:
        return min(
            cache.objects(),
            key=lambda cached: (cached.inserted_at, cached.segment_id),
        ).segment_id


class ObjectCache:
    """Bounded cache of relation segments keyed by segment id."""

    def __init__(self, capacity: int, policy: Optional[EvictionPolicy] = None) -> None:
        if capacity <= 0:
            raise CacheError("cache capacity must be at least one object")
        self.capacity = capacity
        self.policy = policy or MaxProgressEviction()
        self._contents: Dict[str, CachedObject] = {}
        self._clock = itertools.count()
        #: Counters for diagnostics and the cache-size experiments.
        self.num_insertions = 0
        self.num_evictions = 0
        self.num_hits = 0
        #: Highest occupancy ever reached (the invariant checker verifies
        #: that this never exceeds ``capacity``).
        self.peak_occupancy = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._contents)

    def __contains__(self, segment_id: object) -> bool:
        return isinstance(segment_id, str) and segment_id in self._contents

    @property
    def is_full(self) -> bool:
        """Whether adding another object requires an eviction."""
        return len(self._contents) >= self.capacity

    def segment_ids(self) -> Set[str]:
        """Segment ids currently cached (a fresh, independent set)."""
        return set(self._contents)

    def ids_view(self) -> KeysView[str]:
        """Live view of the cached segment ids (no copy).

        Supports ``in`` and iteration like :meth:`segment_ids` but without
        materialising a set per call — the hot arrival/eviction paths ask
        for the cache contents two or three times per arriving object.
        """
        return self._contents.keys()

    def objects(self) -> List[CachedObject]:
        """Cached entries (deterministic order by segment id)."""
        return [self._contents[key] for key in sorted(self._contents)]

    def get(self, segment_id: str) -> CachedObject:
        """Return (and touch) the cached entry for ``segment_id``."""
        try:
            entry = self._contents[segment_id]
        except KeyError:
            raise CacheError(f"object {segment_id!r} is not cached") from None
        entry.last_used = next(self._clock)
        self.num_hits += 1
        return entry

    def payloads(self, segment_ids: Iterable[str]) -> List[Any]:
        """Payloads for ``segment_ids``, touching entries exactly like
        :meth:`get` — same recency ticks in the same order, same hit count —
        but in one call for a whole subplan's segment list.
        """
        contents = self._contents
        clock = self._clock
        result: List[Any] = []
        append = result.append
        for segment_id in segment_ids:
            try:
                entry = contents[segment_id]
            except KeyError:
                raise CacheError(f"object {segment_id!r} is not cached") from None
            entry.last_used = next(clock)
            append(entry.payload)
        self.num_hits += len(result)
        return result

    def peek(self, segment_id: str) -> Optional[CachedObject]:
        """Return the cached entry without touching it, or ``None``."""
        return self._contents.get(segment_id)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, segment_id: str, payload: object, num_rows: int = 0) -> None:
        """Insert ``payload`` under ``segment_id`` (caller must ensure space)."""
        if segment_id in self._contents:
            raise CacheError(f"object {segment_id!r} is already cached")
        if self.is_full:
            raise CacheError("cache is full; evict before adding")
        tick = next(self._clock)
        self._contents[segment_id] = CachedObject(
            segment_id=segment_id,
            payload=payload,
            inserted_at=tick,
            last_used=tick,
            num_rows=num_rows,
        )
        self.num_insertions += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._contents))

    def evict(self, new_object: str, tracker: SubplanTracker) -> str:
        """Choose and remove a victim to make room for ``new_object``."""
        if not self._contents:
            raise CacheError("cannot evict from an empty cache")
        victim = self.policy.choose_victim(self, new_object, tracker)
        if victim not in self._contents:
            raise CacheError(f"policy {self.policy.name!r} chose a non-cached victim {victim!r}")
        del self._contents[victim]
        self.num_evictions += 1
        return victim

    def remove(self, segment_id: str) -> None:
        """Drop ``segment_id`` from the cache (e.g. after pruning)."""
        if segment_id in self._contents:
            del self._contents[segment_id]
