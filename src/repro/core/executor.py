"""The Skipper query executor.

Drives the MJoin state manager over simulated time: it issues all object
requests for a query up front through the client proxy, processes objects in
whatever order the CSD pushes them back, charges CPU time for the work each
arrival triggers, and re-issues requests for evicted objects cycle by cycle
until every subplan has been executed or pruned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.cache import EvictionPolicy, MaxProgressEviction, ObjectCache
from repro.core.client_proxy import ClientProxy
from repro.core.mjoin import MJoinStateManager
from repro.csd.backend import StorageBackend
from repro.engine.catalog import Catalog
from repro.engine.cost import CostModel
from repro.engine.operators.base import OperatorStats, Row
from repro.engine.query import Query
from repro.exceptions import CacheError
from repro.obs import NULL_TRACER
from repro.sim import Environment


@dataclass
class SkipperQueryResult:
    """Outcome and metrics of one Skipper query execution."""

    query_name: str
    client_id: str
    rows: List[Row]
    start_time: float
    end_time: float
    processing_time: float
    num_requests: int
    num_cycles: int
    num_evictions: int
    subplans_total: int
    subplans_executed: int
    subplans_pruned: int
    stats: OperatorStats
    blocked_intervals: List[Tuple[float, float]] = field(default_factory=list)
    cache_hits: int = 0
    cache_insertions: int = 0
    cache_peak_occupancy: int = 0
    cache_capacity: int = 0

    @property
    def execution_time(self) -> float:
        """End-to-end simulated execution time of the query."""
        return self.end_time - self.start_time

    @property
    def waiting_time(self) -> float:
        """Total simulated time spent blocked on the CSD."""
        return sum(end - start for start, end in self.blocked_intervals)


class SkipperExecutor:
    """Cache-aware, CSD-driven executor for one database client."""

    #: Consecutive request cycles without a single executed or pruned subplan
    #: after which execution is aborted.  The paper's maximal-progress policy
    #: never hits this; naive policies (LRU/FIFO) can livelock at very small
    #: cache sizes because the same objects are evicted cycle after cycle.
    max_stalled_cycles = 3

    def __init__(
        self,
        env: Environment,
        client_id: str,
        catalog: Catalog,
        device: StorageBackend,
        cache_capacity: int,
        eviction_policy: Optional[EvictionPolicy] = None,
        cost_model: Optional[CostModel] = None,
        enable_pruning: bool = True,
        proxy: Optional[ClientProxy] = None,
    ) -> None:
        self.env = env
        self.client_id = client_id
        self.catalog = catalog
        self.device = device
        self.cache_capacity = cache_capacity
        self.eviction_policy = eviction_policy or MaxProgressEviction()
        self.cost_model = cost_model or CostModel()
        self.enable_pruning = enable_pruning
        self.proxy = proxy or ClientProxy(env, device, client_id)
        #: Installed by the session when the service traces (NULL otherwise).
        self.tracer = NULL_TRACER
        self.trace_parent = None

    def execute(self, query: Query):
        """Simulation-process generator executing ``query`` to completion.

        Use as ``result = yield from executor.execute(query)`` inside another
        process, or wrap with ``env.process(executor.execute(query))`` and
        read the process value after ``env.run()``.
        """
        cache = ObjectCache(self.cache_capacity, policy=self.eviction_policy)
        state = MJoinStateManager(
            query,
            self.catalog,
            cache,
            enable_pruning=self.enable_pruning,
        )
        query_id = self.proxy.new_query_id(query.name)
        start_time = self.env.now
        processing_time = 0.0
        blocked: List[Tuple[float, float]] = []
        num_requests = 0
        handled_after_last_cycle = 0
        stalled_cycles = 0

        tracer = self.tracer
        traced = tracer.enabled
        exec_span = None
        if traced:
            exec_span = tracer.start_span(
                "execute",
                kind="executor",
                track=self.client_id,
                parent=self.trace_parent,
                query_id=query_id,
                mode="skipper",
            )
            tracer.bind_query(query_id, exec_span)

        requests = state.initial_requests()
        while requests:
            self.proxy.request_objects(requests, query_id)
            num_requests += len(requests)
            overhead = self.cost_model.request_overhead(len(requests))
            if overhead > 0:
                processing_time += overhead
                overhead_start = self.env.now
                yield self.env.timeout(overhead)
                if traced:
                    tracer.record_span(
                        "request-overhead",
                        kind="compute",
                        track=self.client_id,
                        start=overhead_start,
                        end=self.env.now,
                        parent=exec_span,
                        requests=len(requests),
                    )

            for _ in range(len(requests)):
                wait_start = self.env.now
                segment_id, payload = yield self.proxy.receive()
                if self.env.now > wait_start:
                    blocked.append((wait_start, self.env.now))
                    if traced:
                        tracer.record_span(
                            "wait",
                            kind="wait",
                            track=self.client_id,
                            start=wait_start,
                            end=self.env.now,
                            parent=exec_span,
                            object_key=segment_id,
                        )
                outcome = state.on_arrival(segment_id, payload)
                cpu_seconds = self._cpu_time(outcome.stats)
                if cpu_seconds > 0:
                    processing_time += cpu_seconds
                    cpu_start = self.env.now
                    yield self.env.timeout(cpu_seconds)
                    if traced:
                        tracer.record_span(
                            "compute",
                            kind="compute",
                            track=self.client_id,
                            start=cpu_start,
                            end=self.env.now,
                            parent=exec_span,
                            object_key=segment_id,
                        )

            handled = state.tracker.num_executed + state.tracker.num_pruned
            if handled == handled_after_last_cycle:
                stalled_cycles += 1
            else:
                stalled_cycles = 0
            handled_after_last_cycle = handled
            if stalled_cycles >= self.max_stalled_cycles:
                raise CacheError(
                    f"client {self.client_id!r}: eviction policy "
                    f"{self.eviction_policy.name!r} made no progress for "
                    f"{stalled_cycles} consecutive request cycles with a cache of "
                    f"{self.cache_capacity} objects; use a larger cache or the "
                    "maximal-progress policy"
                )
            requests = state.next_cycle_requests()

        end_time = self.env.now
        if traced:
            tracer.record_span(
                "operators",
                kind="operator",
                track=self.client_id,
                start=end_time,
                end=end_time,
                parent=exec_span,
                tuples_scanned=state.stats.tuples_scanned,
                tuples_built=state.stats.tuples_built,
                tuples_probed=state.stats.tuples_probed,
                tuples_output=state.stats.tuples_output,
                subplans_executed=state.tracker.num_executed,
                subplans_pruned=state.tracker.num_pruned,
            )
            exec_span.attrs["num_requests"] = num_requests
            exec_span.attrs["num_cycles"] = state.cycles_completed
            tracer.end_span(exec_span, end_time)
        return SkipperQueryResult(
            query_name=query.name,
            client_id=self.client_id,
            rows=state.results(),
            start_time=start_time,
            end_time=end_time,
            processing_time=processing_time,
            num_requests=num_requests,
            num_cycles=state.cycles_completed,
            num_evictions=cache.num_evictions,
            subplans_total=state.tracker.total_subplans,
            subplans_executed=state.tracker.num_executed,
            subplans_pruned=state.tracker.num_pruned,
            stats=state.stats,
            blocked_intervals=blocked,
            cache_hits=cache.num_hits,
            cache_insertions=cache.num_insertions,
            cache_peak_occupancy=cache.peak_occupancy,
            cache_capacity=cache.capacity,
        )

    def _cpu_time(self, stats: OperatorStats) -> float:
        """Convert work counters into simulated CPU seconds."""
        return (
            self.cost_model.scan_time(stats.tuples_scanned)
            + self.cost_model.build_time(stats.tuples_built)
            + self.cost_model.probe_time(stats.tuples_probed)
            + self.cost_model.output_time(stats.tuples_output)
        )
