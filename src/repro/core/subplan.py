"""Subplan enumeration and tracking.

For a query joining relations R1 … Rn, each combination of one segment per
relation is a *subplan* (Table 2 in the paper).  Executing every subplan and
unioning the results is equivalent to executing the whole join, which is what
allows Skipper to make progress in whatever order the CSD returns objects.

:class:`SubplanTracker` keeps the pending / executed / pruned state of every
subplan, indexes subplans by the objects they touch, and answers the two
questions the cache-eviction policies need:

* how many *pending* subplans does an object participate in, and
* which pending subplans become *executable* given the cache contents plus a
  newly arrived object.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.engine.catalog import Catalog
from repro.engine.query import Query
from repro.exceptions import QueryError


class Subplan:
    """One segment per joined relation, identified by its segment ids."""

    __slots__ = ("subplan_id", "segments", "segment_set")

    def __init__(self, subplan_id: int, segments: Tuple[str, ...]) -> None:
        self.subplan_id = subplan_id
        #: Segment ids ordered by the query's table order.
        self.segments = segments
        self.segment_set: FrozenSet[str] = frozenset(segments)

    def involves(self, segment_id: str) -> bool:
        """Whether the subplan touches ``segment_id``."""
        return segment_id in self.segment_set

    def is_covered_by(self, available: Set[str]) -> bool:
        """Whether every segment of the subplan is in ``available``."""
        return self.segment_set <= available

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Subplan #{self.subplan_id} {self.segments}>"


class SubplanTracker:
    """Tracks the execution state of every subplan of one query."""

    def __init__(self, query: Query, catalog: Catalog, table_order: Optional[Sequence[str]] = None) -> None:
        self.query = query
        self.catalog = catalog
        self.table_order: Tuple[str, ...] = tuple(table_order or query.tables)
        if set(self.table_order) != set(query.tables):
            raise QueryError("table_order must be a permutation of the query's tables")

        per_table_segments: List[List[str]] = [
            catalog.segment_ids(table) for table in self.table_order
        ]
        self._subplans: List[Subplan] = []
        for subplan_id, combination in enumerate(itertools.product(*per_table_segments)):
            self._subplans.append(Subplan(subplan_id, tuple(combination)))

        self._pending: Set[int] = set(range(len(self._subplans)))
        self._executed: Set[int] = set()
        self._pruned: Set[int] = set()
        #: object (segment id) -> ids of *pending* subplans containing it.
        self._by_object: Dict[str, Set[int]] = {}
        for subplan in self._subplans:
            for segment_id in subplan.segments:
                self._by_object.setdefault(segment_id, set()).add(subplan.subplan_id)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def total_subplans(self) -> int:
        """Total number of subplans generated for the query."""
        return len(self._subplans)

    @property
    def num_pending(self) -> int:
        """Number of subplans still waiting to be executed."""
        return len(self._pending)

    @property
    def num_executed(self) -> int:
        """Number of subplans whose join has been executed."""
        return len(self._executed)

    @property
    def num_pruned(self) -> int:
        """Number of subplans discarded by empty-object pruning."""
        return len(self._pruned)

    def has_pending(self) -> bool:
        """Whether any subplan is still pending."""
        return bool(self._pending)

    def subplan(self, subplan_id: int) -> Subplan:
        """Return the subplan with the given id."""
        return self._subplans[subplan_id]

    def pending_subplans(self) -> List[Subplan]:
        """All pending subplans (ascending id order)."""
        return [self._subplans[subplan_id] for subplan_id in sorted(self._pending)]

    def is_pending(self, subplan: Subplan) -> bool:
        """Whether ``subplan`` is still pending."""
        return subplan.subplan_id in self._pending

    # ------------------------------------------------------------------ #
    # Object-centric queries used by the cache policies
    # ------------------------------------------------------------------ #
    def objects(self) -> List[str]:
        """All objects that appear in at least one subplan (pending or not)."""
        return sorted(self._by_object)

    def pending_count_for(self, segment_id: str) -> int:
        """Number of pending subplans that involve ``segment_id``."""
        return len(self._by_object.get(segment_id, ()))

    def object_in_pending(self, segment_id: str) -> bool:
        """Whether ``segment_id`` is needed by at least one pending subplan."""
        return bool(self._by_object.get(segment_id))

    def objects_needed(self) -> Set[str]:
        """Objects required by at least one pending subplan."""
        return {segment_id for segment_id, ids in self._by_object.items() if ids}

    def newly_runnable(self, cached: Set[str], new_object: str) -> List[Subplan]:
        """Pending subplans covered by ``cached ∪ {new_object}``.

        Because runnable subplans are executed as soon as they become
        runnable, any still-pending subplan covered by the cache must involve
        the newly arrived object, so only those are inspected.
        """
        available = set(cached)
        available.add(new_object)
        result = []
        for subplan_id in self._by_object.get(new_object, ()):
            subplan = self._subplans[subplan_id]
            if subplan.is_covered_by(available):
                result.append(subplan)
        return sorted(result, key=lambda subplan: subplan.subplan_id)

    def executable_counts(self, cached: Set[str], new_object: str) -> Dict[str, int]:
        """For every cached object, the number of pending subplans that would
        be executable (given ``cached ∪ {new_object}``) in which it takes part.

        This is exactly the quantity the paper's *maximal progress* eviction
        policy minimises when choosing a victim.
        """
        runnable = self.newly_runnable(cached, new_object)
        counts = {segment_id: 0 for segment_id in cached}  # repro: noqa[RPR001] reason=dict is only read associatively via .get; its order is never observed
        for subplan in runnable:
            for segment_id in subplan.segments:
                if segment_id in counts:
                    counts[segment_id] += 1
        return counts

    # ------------------------------------------------------------------ #
    # State transitions
    # ------------------------------------------------------------------ #
    def mark_executed(self, subplan: Subplan) -> None:
        """Move a pending subplan to the executed state."""
        if subplan.subplan_id not in self._pending:
            raise QueryError(f"subplan #{subplan.subplan_id} is not pending")
        self._pending.discard(subplan.subplan_id)
        self._executed.add(subplan.subplan_id)
        self._unindex(subplan)

    def prune_object(self, segment_id: str) -> List[Subplan]:
        """Discard every pending subplan involving ``segment_id``.

        Used when an object is known to contribute no result tuples (e.g. its
        filtered row set is empty): none of its subplans can produce output,
        so they are dropped without being executed.  Returns the pruned
        subplans.
        """
        pruned: List[Subplan] = []
        for subplan_id in sorted(self._by_object.get(segment_id, set())):
            subplan = self._subplans[subplan_id]
            self._pending.discard(subplan_id)
            self._pruned.add(subplan_id)
            pruned.append(subplan)
            self._unindex(subplan)
        return pruned

    def _unindex(self, subplan: Subplan) -> None:
        for segment_id in subplan.segments:
            ids = self._by_object.get(segment_id)
            if ids is not None:
                ids.discard(subplan.subplan_id)


def enumerate_subplans(
    segments_per_table: Dict[str, Iterable[str]]
) -> List[Tuple[str, ...]]:
    """Enumerate subplans for an explicit table → segments mapping.

    A convenience used by documentation examples and the Table 2 benchmark;
    the heavy lifting for real queries goes through :class:`SubplanTracker`.
    """
    tables = list(segments_per_table)
    lists = [list(segments_per_table[table]) for table in tables]
    return [tuple(combination) for combination in itertools.product(*lists)]
