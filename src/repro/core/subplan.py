"""Subplan enumeration and tracking.

For a query joining relations R1 … Rn, each combination of one segment per
relation is a *subplan* (Table 2 in the paper).  Executing every subplan and
unioning the results is equivalent to executing the whole join, which is what
allows Skipper to make progress in whatever order the CSD returns objects.

:class:`SubplanTracker` keeps the pending / executed / pruned state of every
subplan, indexes subplans by the objects they touch, and answers the two
questions the cache-eviction policies need:

* how many *pending* subplans does an object participate in, and
* which pending subplans become *executable* given the cache contents plus a
  newly arrived object.
"""

from __future__ import annotations

import itertools
from typing import AbstractSet, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.engine.catalog import Catalog
from repro.engine.query import Query
from repro.exceptions import QueryError


class Subplan:
    """One segment per joined relation, identified by its segment ids."""

    __slots__ = ("subplan_id", "segments", "_segment_set")

    def __init__(self, subplan_id: int, segments: Tuple[str, ...]) -> None:
        self.subplan_id = subplan_id
        #: Segment ids ordered by the query's table order.
        self.segments = segments
        self._segment_set: Optional[FrozenSet[str]] = None

    @property
    def segment_set(self) -> FrozenSet[str]:
        """The segments as a frozenset, built on first use.

        Most subplans of large single-table queries never need set
        semantics, so the frozenset (one allocation per subplan, across
        potentially millions of subplans) is deferred until something
        actually asks for it.
        """
        segment_set = self._segment_set
        if segment_set is None:
            segment_set = self._segment_set = frozenset(self.segments)
        return segment_set

    def involves(self, segment_id: str) -> bool:
        """Whether the subplan touches ``segment_id``."""
        return segment_id in self.segment_set

    def is_covered_by(self, available: Set[str]) -> bool:
        """Whether every segment of the subplan is in ``available``."""
        return self.segment_set <= available

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Subplan #{self.subplan_id} {self.segments}>"


class SubplanTracker:
    """Tracks the execution state of every subplan of one query."""

    def __init__(self, query: Query, catalog: Catalog, table_order: Optional[Sequence[str]] = None) -> None:
        self.query = query
        self.catalog = catalog
        self.table_order: Tuple[str, ...] = tuple(table_order or query.tables)
        if set(self.table_order) != set(query.tables):
            raise QueryError("table_order must be a permutation of the query's tables")

        per_table_segments: List[List[str]] = [
            catalog.segment_ids(table) for table in self.table_order
        ]
        # ``product`` already yields fresh tuples, so they are stored as-is.
        # :class:`Subplan` wrappers are materialised lazily (see
        # :meth:`subplan`): large single-table queries prune the vast
        # majority of their subplans without ever needing the objects.
        self._combos: List[Tuple[str, ...]] = list(
            itertools.product(*per_table_segments)
        )
        total = len(self._combos)
        self._subplans: List[Optional[Subplan]] = [None] * total

        self._pending: Set[int] = set(range(total))
        self._executed: Set[int] = set()
        self._pruned: Set[int] = set()
        #: object (segment id) -> ids of *pending* subplans containing it.
        #
        # Built directly from the regular structure of ``itertools.product``
        # instead of iterating every (subplan, segment) pair: the ids whose
        # combination holds segment ``j`` of the table at position ``p`` form
        # ``stride_p``-long runs repeating every ``stride_p * width_p`` ids,
        # so each set is filled with ``set.update(range(...))`` at C speed.
        self._by_object: Dict[str, Set[int]] = {}
        if total:
            stride = total
            for segments in per_table_segments:
                width = len(segments)
                stride //= width
                period = stride * width
                for j, segment_id in enumerate(segments):
                    ids = self._by_object.get(segment_id)
                    if ids is None:
                        ids = self._by_object[segment_id] = set()
                    for start in range(j * stride, total, period):
                        ids.update(range(start, start + stride))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def total_subplans(self) -> int:
        """Total number of subplans generated for the query."""
        return len(self._combos)

    @property
    def num_pending(self) -> int:
        """Number of subplans still waiting to be executed."""
        return len(self._pending)

    @property
    def num_executed(self) -> int:
        """Number of subplans whose join has been executed."""
        return len(self._executed)

    @property
    def num_pruned(self) -> int:
        """Number of subplans discarded by empty-object pruning."""
        return len(self._pruned)

    def has_pending(self) -> bool:
        """Whether any subplan is still pending."""
        return bool(self._pending)

    def subplan(self, subplan_id: int) -> Subplan:
        """Return the subplan with the given id (materialised on first use)."""
        subplan = self._subplans[subplan_id]
        if subplan is None:
            subplan = self._subplans[subplan_id] = Subplan(
                subplan_id, self._combos[subplan_id]
            )
        return subplan

    def pending_subplans(self) -> List[Subplan]:
        """All pending subplans (ascending id order)."""
        return [self.subplan(subplan_id) for subplan_id in sorted(self._pending)]

    def is_pending(self, subplan: Subplan) -> bool:
        """Whether ``subplan`` is still pending."""
        return subplan.subplan_id in self._pending

    # ------------------------------------------------------------------ #
    # Object-centric queries used by the cache policies
    # ------------------------------------------------------------------ #
    def objects(self) -> List[str]:
        """All objects that appear in at least one subplan (pending or not)."""
        return sorted(self._by_object)

    def pending_count_for(self, segment_id: str) -> int:
        """Number of pending subplans that involve ``segment_id``."""
        return len(self._by_object.get(segment_id, ()))

    def pending_counts(self, segment_ids: Iterable[str]) -> Dict[str, int]:
        """Pending-subplan count for each of ``segment_ids`` in one call.

        The eviction policies rank every cached object on each eviction;
        answering in bulk keeps that a single dict comprehension instead of
        a method call per cached object.
        """
        by_object = self._by_object
        return {
            segment_id: len(by_object.get(segment_id, ()))
            for segment_id in segment_ids
        }

    def object_in_pending(self, segment_id: str) -> bool:
        """Whether ``segment_id`` is needed by at least one pending subplan."""
        return bool(self._by_object.get(segment_id))

    def objects_needed(self) -> Set[str]:
        """Objects required by at least one pending subplan."""
        return {segment_id for segment_id, ids in self._by_object.items() if ids}

    def newly_runnable(self, cached: AbstractSet[str], new_object: str) -> List[Subplan]:
        """Pending subplans covered by ``cached ∪ {new_object}``.

        Because runnable subplans are executed as soon as they become
        runnable, any still-pending subplan covered by the cache must involve
        the newly arrived object, so only those are inspected.
        """
        return [self.subplan(subplan_id) for subplan_id in self._runnable_ids(cached, new_object)]

    def runnable_items(
        self, cached: AbstractSet[str], new_object: str
    ) -> List[Tuple[int, Tuple[str, ...]]]:
        """Like :meth:`newly_runnable` but as ``(id, segments)`` pairs.

        The MJoin arrival loop only needs each runnable subplan's id (to
        mark it executed) and its segment tuple (to fetch cache entries), so
        this variant skips the :class:`Subplan` wrapper allocation entirely.
        """
        combos = self._combos
        return [
            (subplan_id, combos[subplan_id])
            for subplan_id in self._runnable_ids(cached, new_object)
        ]

    def _runnable_ids(self, cached: AbstractSet[str], new_object: str) -> List[int]:
        """Ids of pending subplans covered by ``cached ∪ {new_object}``.

        Coverage is a single C-level ``set.issuperset`` test per candidate
        against one augmented copy of the cache contents — no per-segment
        Python loop, and no :class:`Subplan` is materialised for the
        (common) subplans that are not yet runnable.
        """
        candidates = self._by_object.get(new_object)
        if not candidates:
            return []
        available = set(cached)
        available.add(new_object)
        issuperset = available.issuperset
        combos = self._combos
        result = [
            subplan_id
            for subplan_id in candidates  # repro: noqa[RPR001] reason=candidate order never observed; the id list is sorted before being returned
            if issuperset(combos[subplan_id])
        ]
        result.sort()
        return result

    def executable_counts(self, cached: AbstractSet[str], new_object: str) -> Dict[str, int]:
        """For every cached object, the number of pending subplans that would
        be executable (given ``cached ∪ {new_object}``) in which it takes part.

        This is exactly the quantity the paper's *maximal progress* eviction
        policy minimises when choosing a victim.
        """
        runnable = self._runnable_ids(cached, new_object)
        counts = {segment_id: 0 for segment_id in cached}  # repro: noqa[RPR001] reason=dict is only read associatively via .get; its order is never observed
        combos = self._combos
        for subplan_id in runnable:
            for segment_id in combos[subplan_id]:
                if segment_id in counts:
                    counts[segment_id] += 1
        return counts

    # ------------------------------------------------------------------ #
    # State transitions
    # ------------------------------------------------------------------ #
    def mark_executed(self, subplan: Subplan) -> None:
        """Move a pending subplan to the executed state."""
        if subplan.subplan_id not in self._pending:
            raise QueryError(f"subplan #{subplan.subplan_id} is not pending")
        self._pending.discard(subplan.subplan_id)
        self._executed.add(subplan.subplan_id)
        self._unindex(subplan.subplan_id)

    def mark_executed_ids(self, subplan_ids: Iterable[int]) -> None:
        """Move a batch of pending subplans to the executed state.

        Equivalent to calling :meth:`mark_executed` per subplan; the MJoin
        arrival loop uses it to retire a whole runnable batch without a
        :class:`Subplan` wrapper or a method call per subplan.
        """
        pending_discard = self._pending.discard
        executed_add = self._executed.add
        unindex = self._unindex
        for subplan_id in subplan_ids:
            if subplan_id not in self._pending:
                raise QueryError(f"subplan #{subplan_id} is not pending")
            pending_discard(subplan_id)
            executed_add(subplan_id)
            unindex(subplan_id)

    def prune_object(self, segment_id: str) -> List[Subplan]:
        """Discard every pending subplan involving ``segment_id``.

        Used when an object is known to contribute no result tuples (e.g. its
        filtered row set is empty): none of its subplans can produce output,
        so they are dropped without being executed.  Returns the pruned
        subplans.
        """
        return [self.subplan(subplan_id) for subplan_id in self.prune_object_ids(segment_id)]

    def prune_object_ids(self, segment_id: str) -> List[int]:
        """Like :meth:`prune_object` but returns subplan *ids*.

        The hot callers (the MJoin state manager prunes the overwhelming
        majority of a large single-table query's subplans this way) only
        need the count, so no :class:`Subplan` objects are materialised.
        """
        pruned_ids = sorted(self._by_object.get(segment_id, ()))
        pending_discard = self._pending.discard
        pruned_add = self._pruned.add
        for subplan_id in pruned_ids:
            pending_discard(subplan_id)
            pruned_add(subplan_id)
            self._unindex(subplan_id)
        return pruned_ids

    def _unindex(self, subplan_id: int) -> None:
        # Every segment of every combination is an index key (the index is
        # built from the same per-table lists the combinations are), so no
        # existence check is needed.
        by_object = self._by_object
        for segment_id in self._combos[subplan_id]:
            by_object[segment_id].discard(subplan_id)


class SingleTableSubplanTracker(SubplanTracker):
    """Tracker specialised for single-table queries.

    With one joined relation every subplan is a single segment, so the
    generic per-object index — one set of subplan ids per segment — would be
    a million singleton sets for the largest catalogs, dominating tracker
    construction.  This specialisation stores the only thing that index can
    express: a segment → subplan-id mapping whose keys are removed as
    subplans leave the pending state.  All public queries answer from that
    mapping with the exact same results as the generic tracker.
    """

    def __init__(self, query: Query, catalog: Catalog, table_order: Optional[Sequence[str]] = None) -> None:
        self.query = query
        self.catalog = catalog
        self.table_order = tuple(table_order or query.tables)
        if set(self.table_order) != set(query.tables):
            raise QueryError("table_order must be a permutation of the query's tables")
        if len(self.table_order) != 1:
            raise QueryError("SingleTableSubplanTracker requires a single-table query")

        self._segments: List[str] = list(catalog.segment_ids(self.table_order[0]))
        total = len(self._segments)
        self._subplans: List[Optional[Subplan]] = [None] * total
        self._pending: Set[int] = set(range(total))
        self._executed: Set[int] = set()
        self._pruned: Set[int] = set()
        #: segment id -> its subplan id, for *pending* subplans only.
        self._pending_id_by_object: Dict[str, int] = {
            segment_id: subplan_id
            for subplan_id, segment_id in enumerate(self._segments)
        }

    @property
    def total_subplans(self) -> int:
        return len(self._segments)

    def subplan(self, subplan_id: int) -> Subplan:
        subplan = self._subplans[subplan_id]
        if subplan is None:
            subplan = self._subplans[subplan_id] = Subplan(
                subplan_id, (self._segments[subplan_id],)
            )
        return subplan

    def objects(self) -> List[str]:
        return sorted(self._segments)

    def pending_count_for(self, segment_id: str) -> int:
        return 1 if segment_id in self._pending_id_by_object else 0

    def pending_counts(self, segment_ids: Iterable[str]) -> Dict[str, int]:
        pending = self._pending_id_by_object
        return {
            segment_id: (1 if segment_id in pending else 0)
            for segment_id in segment_ids
        }

    def object_in_pending(self, segment_id: str) -> bool:
        return segment_id in self._pending_id_by_object

    def objects_needed(self) -> Set[str]:
        return set(self._pending_id_by_object)

    def runnable_items(
        self, cached: AbstractSet[str], new_object: str
    ) -> List[Tuple[int, Tuple[str, ...]]]:
        subplan_id = self._pending_id_by_object.get(new_object)
        return [] if subplan_id is None else [(subplan_id, (new_object,))]

    def _runnable_ids(self, cached: AbstractSet[str], new_object: str) -> List[int]:
        # A single-segment subplan is covered by its own arrival.
        subplan_id = self._pending_id_by_object.get(new_object)
        return [] if subplan_id is None else [subplan_id]

    def executable_counts(self, cached: AbstractSet[str], new_object: str) -> Dict[str, int]:
        counts = {segment_id: 0 for segment_id in cached}  # repro: noqa[RPR001] reason=dict is only read associatively via .get; its order is never observed
        if new_object in counts and new_object in self._pending_id_by_object:
            counts[new_object] = 1
        return counts

    def prune_object_ids(self, segment_id: str) -> List[int]:
        subplan_id = self._pending_id_by_object.pop(segment_id, None)
        if subplan_id is None:
            return []
        self._pending.discard(subplan_id)
        self._pruned.add(subplan_id)
        return [subplan_id]

    def _unindex(self, subplan_id: int) -> None:
        self._pending_id_by_object.pop(self._segments[subplan_id], None)


def make_tracker(
    query: Query, catalog: Catalog, table_order: Optional[Sequence[str]] = None
) -> SubplanTracker:
    """Build the cheapest tracker able to serve ``query``.

    Single-table queries get :class:`SingleTableSubplanTracker`; everything
    else the generic :class:`SubplanTracker`.  Both expose identical
    behaviour, so callers never need to know which one they hold.
    """
    order = tuple(table_order or query.tables)
    if len(order) == 1:
        return SingleTableSubplanTracker(query, catalog, order)
    return SubplanTracker(query, catalog, order)


def enumerate_subplans(
    segments_per_table: Dict[str, Iterable[str]]
) -> List[Tuple[str, ...]]:
    """Enumerate subplans for an explicit table → segments mapping.

    A convenience used by documentation examples and the Table 2 benchmark;
    the heavy lifting for real queries goes through :class:`SubplanTracker`.
    """
    tables = list(segments_per_table)
    lists = [list(segments_per_table[table]) for table in tables]
    return [tuple(combination) for combination in itertools.product(*lists)]
