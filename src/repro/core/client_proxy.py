"""The client proxy: mediator between MJoin and the cold storage backend.

In the paper this is a daemon collocated with each PostgreSQL instance: MJoin
hands it the list of objects it needs, the proxy issues tagged HTTP GET
requests against Swift and notifies MJoin as objects arrive.  Here the proxy
translates segment ids into namespaced object keys, tags every request with a
query identifier (so the CSD scheduler can be query-aware) and funnels
completions into a FIFO the executor consumes in arrival order.

The proxy is backend-agnostic: ``device`` may be a single
:class:`~repro.csd.device.ColdStorageDevice` or a sharded
:class:`~repro.fleet.router.FleetRouter` — anything satisfying
:class:`~repro.csd.backend.StorageBackend`.
"""

from __future__ import annotations

import itertools
from typing import List, Sequence, Tuple

from repro.csd.backend import StorageBackend
from repro.csd.request import GetRequest
from repro.exceptions import StorageError
from repro.sim import Environment, Store
from repro.sim.events import Event


class ClientProxy:
    """Per-client request broker in front of the shared storage backend."""

    def __init__(self, env: Environment, device: StorageBackend, client_id: str) -> None:
        self.env = env
        self.device = device
        self.client_id = client_id
        #: Arrived objects as ``(segment_id, payload)`` pairs in delivery order.
        self.arrivals: Store = Store(env, name=f"{client_id}-arrivals")
        self.requests_issued = 0
        self.requests_completed = 0
        self._query_counter = itertools.count()
        self._outstanding: List[GetRequest] = []
        #: Length of the ``tenant/`` prefix of this client's object keys.
        self._prefix_length = len(client_id) + 1

    def new_query_id(self, query_name: str) -> str:
        """Mint a query identifier used to tag all requests of one query."""
        return f"{self.client_id}:{query_name}:{next(self._query_counter)}"

    def request_objects(self, segment_ids: Sequence[str], query_id: str) -> List[GetRequest]:
        """Issue one GET per segment id, tagged with ``query_id``.

        Completions are pushed into :attr:`arrivals` in the order the device
        delivers them, which is generally different from the request order —
        that is the whole point of CSD-driven execution.
        """
        issued: List[GetRequest] = []
        # Hoisted locals and inlined helpers: this loop issues every object
        # of a query in one burst (a million iterations at the largest
        # scales), so attribute lookups, wrapper calls and per-request
        # closures are paid once instead of per request.  The key prefix is
        # validated once here, matching ``make_object_key`` exactly.
        client_id = self.client_id
        if not client_id or "/" in client_id:
            raise StorageError(f"invalid tenant name: {client_id!r}")
        env = self.env
        on_complete = self._on_complete
        submit = self.device.submit
        issued_append = issued.append
        for segment_id in segment_ids:
            object_key = f"{client_id}/{segment_id}"
            completion = Event(env, object_key)
            completion._callbacks.append(on_complete)
            request = GetRequest(object_key, client_id, query_id, completion)
            submit(request)
            issued_append(request)
        self._outstanding.extend(issued)
        self.requests_issued += len(issued)
        return issued

    def _on_complete(self, event: Event) -> None:
        """Deliver a completed GET: the segment id is the key minus the
        ``tenant/`` prefix (one shared callback instead of a closure per
        request)."""
        self.requests_completed += 1
        self.arrivals.put((event.name[self._prefix_length :], event.value))

    def receive(self):
        """Event firing with the next ``(segment_id, payload)`` delivery."""
        return self.arrivals.get()

    @property
    def outstanding(self) -> Tuple[GetRequest, ...]:
        """Requests issued so far (completed ones included, for diagnostics)."""
        return tuple(self._outstanding)
