"""The client proxy: mediator between MJoin and the cold storage backend.

In the paper this is a daemon collocated with each PostgreSQL instance: MJoin
hands it the list of objects it needs, the proxy issues tagged HTTP GET
requests against Swift and notifies MJoin as objects arrive.  Here the proxy
translates segment ids into namespaced object keys, tags every request with a
query identifier (so the CSD scheduler can be query-aware) and funnels
completions into a FIFO the executor consumes in arrival order.

The proxy is backend-agnostic: ``device`` may be a single
:class:`~repro.csd.device.ColdStorageDevice` or a sharded
:class:`~repro.fleet.router.FleetRouter` — anything satisfying
:class:`~repro.csd.backend.StorageBackend`.
"""

from __future__ import annotations

import itertools
from typing import List, Sequence, Tuple

from repro.csd.backend import StorageBackend
from repro.csd.object_store import make_object_key
from repro.csd.request import GetRequest
from repro.sim import Environment, Store


class ClientProxy:
    """Per-client request broker in front of the shared storage backend."""

    def __init__(self, env: Environment, device: StorageBackend, client_id: str) -> None:
        self.env = env
        self.device = device
        self.client_id = client_id
        #: Arrived objects as ``(segment_id, payload)`` pairs in delivery order.
        self.arrivals: Store = Store(env, name=f"{client_id}-arrivals")
        self.requests_issued = 0
        self.requests_completed = 0
        self._query_counter = itertools.count()
        self._outstanding: List[GetRequest] = []

    def new_query_id(self, query_name: str) -> str:
        """Mint a query identifier used to tag all requests of one query."""
        return f"{self.client_id}:{query_name}:{next(self._query_counter)}"

    def request_objects(self, segment_ids: Sequence[str], query_id: str) -> List[GetRequest]:
        """Issue one GET per segment id, tagged with ``query_id``.

        Completions are pushed into :attr:`arrivals` in the order the device
        delivers them, which is generally different from the request order —
        that is the whole point of CSD-driven execution.
        """
        issued: List[GetRequest] = []
        for segment_id in segment_ids:
            object_key = make_object_key(self.client_id, segment_id)
            completion = self.env.event(name=f"{self.client_id}:{segment_id}")
            completion.add_callback(self._make_arrival_callback(segment_id))
            request = GetRequest(
                object_key=object_key,
                client_id=self.client_id,
                query_id=query_id,
                completion=completion,
            )
            self.device.submit(request)
            issued.append(request)
            self._outstanding.append(request)
        self.requests_issued += len(issued)
        return issued

    def _make_arrival_callback(self, segment_id: str):
        def _on_complete(event) -> None:
            self.requests_completed += 1
            self.arrivals.put((segment_id, event.value))

        return _on_complete

    def receive(self):
        """Event firing with the next ``(segment_id, payload)`` delivery."""
        return self.arrivals.get()

    @property
    def outstanding(self) -> Tuple[GetRequest, ...]:
        """Requests issued so far (completed ones included, for diagnostics)."""
        return tuple(self._outstanding)
