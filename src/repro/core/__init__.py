"""Skipper: the paper's CSD-driven query execution framework.

This package contains the paper's primary contribution:

* :mod:`repro.core.subplan` — subplan enumeration and tracking.  A *subplan*
  is one segment of every joined relation; executing all subplans of a query
  is equivalent to executing the query (Table 2 in the paper).
* :mod:`repro.core.cache` — the bounded object cache and its eviction
  policies, including the paper's *maximal progress* policy and the
  *maximal pending subplans* policy it improves upon, plus LRU/FIFO
  baselines used for ablations.
* :mod:`repro.core.njoin` — the stateless n-ary join operator that probes the
  cached segments of one subplan and emits result tuples.
* :mod:`repro.core.mjoin` — the cache-aware MJoin *state manager*
  (Algorithm 1): it reacts to out-of-order object arrivals, triggers
  evictions and re-issues, executes runnable subplans and folds their output
  into an incremental aggregate.
* :mod:`repro.core.client_proxy` — the daemon that mediates between MJoin and
  the CSD, batching object requests and tagging them with query identifiers.
* :mod:`repro.core.executor` — the simulation-facing Skipper executor that
  drives the state manager over simulated time and produces per-query
  metrics.
"""

from repro.core.subplan import Subplan, SubplanTracker
from repro.core.cache import (
    CachedObject,
    EvictionPolicy,
    FIFOEviction,
    LRUEviction,
    MaxPendingSubplansEviction,
    MaxProgressEviction,
    ObjectCache,
)
from repro.core.njoin import NAryJoin
from repro.core.mjoin import ArrivalOutcome, MJoinStateManager
from repro.core.client_proxy import ClientProxy
from repro.core.executor import SkipperExecutor, SkipperQueryResult

__all__ = [
    "ArrivalOutcome",
    "CachedObject",
    "ClientProxy",
    "EvictionPolicy",
    "FIFOEviction",
    "LRUEviction",
    "MJoinStateManager",
    "MaxPendingSubplansEviction",
    "MaxProgressEviction",
    "NAryJoin",
    "ObjectCache",
    "SkipperExecutor",
    "SkipperQueryResult",
    "Subplan",
    "SubplanTracker",
]
