"""Acquisition-cost model for tiered database storage."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.exceptions import ConfigurationError
from repro.tiering.configurations import (
    CSD_PRICE_POINTS,
    TieringConfiguration,
    csd_configuration,
    device_prices,
    standard_configurations,
)
from repro.tiering.devices import DeviceClass, DeviceSpec

#: The paper's reference database size (100 TB expressed in GB).
PAPER_DATABASE_GB = 100 * 1024


@dataclass
class TieringCostModel:
    """Computes acquisition cost of a database under a tiering strategy."""

    database_gb: float = PAPER_DATABASE_GB
    csd_cost_per_gb: float = 0.1

    def __post_init__(self) -> None:
        if self.database_gb <= 0:
            raise ConfigurationError("database size must be positive")
        if self.csd_cost_per_gb < 0:
            raise ConfigurationError("CSD cost must be non-negative")

    def _prices(self) -> Dict[DeviceClass, DeviceSpec]:
        return device_prices(self.csd_cost_per_gb)

    # ------------------------------------------------------------------ #
    # Core computations
    # ------------------------------------------------------------------ #
    def configuration_cost(self, configuration: TieringConfiguration) -> float:
        """Total acquisition cost (in dollars) of one tiering configuration."""
        prices = self._prices()
        total = 0.0
        for device_class, fraction in configuration.fractions.items():
            total += prices[device_class].cost_for(self.database_gb * fraction)
        return total

    def cost_per_gb(self, configuration: TieringConfiguration) -> float:
        """Blended $/GB of one configuration."""
        return self.configuration_cost(configuration) / self.database_gb

    def standard_costs(self) -> Dict[str, float]:
        """Costs of the Table 1 / Figure 2 strategies (name → dollars)."""
        return {
            name: self.configuration_cost(configuration)
            for name, configuration in standard_configurations().items()
        }

    def csd_savings(self, base: str) -> Dict[str, float]:
        """Figure 3 comparison for one base strategy ('3-tier' or '4-tier').

        Returns the traditional cost, the CSD-based cost at this model's CSD
        price, and the ratio between the two.
        """
        traditional = self.configuration_cost(standard_configurations()[base])
        with_csd = self.configuration_cost(csd_configuration(base))
        if with_csd <= 0:
            raise ConfigurationError("CSD configuration cost must be positive")
        return {
            "traditional_cost": traditional,
            "csd_cost": with_csd,
            "savings_factor": traditional / with_csd,
        }

    # ------------------------------------------------------------------ #
    # Figure-level helpers
    # ------------------------------------------------------------------ #
    def figure2_rows(self) -> Dict[str, float]:
        """Figure 2: cost (in thousands of dollars) per storage strategy."""
        return {name: cost / 1000.0 for name, cost in self.standard_costs().items()}

    @classmethod
    def figure3_rows(
        cls,
        database_gb: float = PAPER_DATABASE_GB,
        price_points: Optional[Mapping[float, None] | tuple] = None,
    ) -> Dict[str, Dict[float, Dict[str, float]]]:
        """Figure 3: savings of the CSD tier at each price point.

        Returns ``{base: {csd_price: {traditional_cost, csd_cost, savings_factor}}}``
        with costs in thousands of dollars.
        """
        points = tuple(price_points) if price_points is not None else CSD_PRICE_POINTS
        result: Dict[str, Dict[float, Dict[str, float]]] = {}
        for base in ("3-tier", "4-tier"):
            per_price: Dict[float, Dict[str, float]] = {}
            for price in points:
                model = cls(database_gb=database_gb, csd_cost_per_gb=price)
                savings = model.csd_savings(base)
                per_price[price] = {
                    "traditional_cost": savings["traditional_cost"] / 1000.0,
                    "csd_cost": savings["csd_cost"] / 1000.0,
                    "savings_factor": savings["savings_factor"],
                }
            result[base] = per_price
        return result
