"""Tiering configurations: how data is spread across device classes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from repro.exceptions import ConfigurationError
from repro.tiering.devices import DeviceClass, DeviceSpec, STANDARD_DEVICES, csd_spec


@dataclass(frozen=True)
class TieringConfiguration:
    """A named storage strategy: fraction of the database per device class.

    Fractions must sum to 1.  The fractions of the 2/3/4-tier strategies are
    those reported by the analyst study the paper cites (Table 1).
    """

    name: str
    fractions: Mapping[DeviceClass, float]

    def __post_init__(self) -> None:
        total = sum(self.fractions.values())
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(
                f"tiering configuration {self.name!r}: fractions sum to {total}, expected 1.0"
            )
        for device_class, fraction in self.fractions.items():
            if fraction < 0:
                raise ConfigurationError(
                    f"tiering configuration {self.name!r}: negative fraction for {device_class}"
                )

    def fraction(self, device_class: DeviceClass) -> float:
        """Fraction of the database stored on ``device_class`` (0 if absent)."""
        return self.fractions.get(device_class, 0.0)

    def device_classes(self) -> List[DeviceClass]:
        """Device classes with a non-zero fraction."""
        return [cls for cls, fraction in self.fractions.items() if fraction > 0]


#: CSD $/GB price points examined in Figure 3.
CSD_PRICE_POINTS = (1.0, 0.2, 0.1)


def standard_configurations() -> Dict[str, TieringConfiguration]:
    """The strategies of Table 1 / Figure 2 (single-device plus 2/3/4-tier)."""
    return {
        "all-ssd": TieringConfiguration("all-ssd", {DeviceClass.SSD: 1.0}),
        "all-scsi": TieringConfiguration("all-scsi", {DeviceClass.SCSI_15K: 1.0}),
        "all-sata": TieringConfiguration("all-sata", {DeviceClass.SATA_7K: 1.0}),
        "all-tape": TieringConfiguration("all-tape", {DeviceClass.TAPE: 1.0}),
        "2-tier": TieringConfiguration(
            "2-tier", {DeviceClass.SCSI_15K: 0.35, DeviceClass.SATA_7K: 0.65}
        ),
        "3-tier": TieringConfiguration(
            "3-tier",
            {DeviceClass.SCSI_15K: 0.15, DeviceClass.SATA_7K: 0.325, DeviceClass.TAPE: 0.525},
        ),
        "4-tier": TieringConfiguration(
            "4-tier",
            {
                DeviceClass.SSD: 0.02,
                DeviceClass.SCSI_15K: 0.13,
                DeviceClass.SATA_7K: 0.325,
                DeviceClass.TAPE: 0.525,
            },
        ),
    }


def csd_configuration(base: str) -> TieringConfiguration:
    """The CSD-based cold-storage-tier variant of a 3-tier or 4-tier strategy.

    The cold storage tier absorbs both the capacity (SATA) and archival
    (tape) tiers, so their combined fraction moves to the CSD while the
    performance tier(s) keep their original share (Section 3.1).
    """
    standards = standard_configurations()
    if base not in ("3-tier", "4-tier"):
        raise ConfigurationError("CSD configurations are defined for '3-tier' and '4-tier'")
    original = standards[base]
    cold_fraction = original.fraction(DeviceClass.SATA_7K) + original.fraction(DeviceClass.TAPE)
    fractions: Dict[DeviceClass, float] = {
        cls: fraction
        for cls, fraction in original.fractions.items()
        if cls not in (DeviceClass.SATA_7K, DeviceClass.TAPE)
    }
    fractions[DeviceClass.CSD] = cold_fraction
    return TieringConfiguration(f"csd-{base}", fractions)


def device_prices(csd_cost_per_gb: float = 0.1) -> Dict[DeviceClass, DeviceSpec]:
    """Device specs with the CSD priced at ``csd_cost_per_gb``."""
    prices = dict(STANDARD_DEVICES)
    prices[DeviceClass.CSD] = csd_spec(csd_cost_per_gb)
    return prices
