"""Storage-tiering cost analysis (Sections 2.1 and 3.1 of the paper).

The paper motivates the cold storage tier with an acquisition-cost analysis
of a 100 TB database under different tiering strategies (Table 1, Figure 2)
and shows the savings of replacing the capacity + archival tiers with a
CSD-based cold storage tier at several CSD price points (Figure 3).  This
package reproduces those numbers exactly from the published $/GB figures.
"""

from repro.tiering.devices import DeviceClass, DeviceSpec, STANDARD_DEVICES
from repro.tiering.configurations import (
    CSD_PRICE_POINTS,
    TieringConfiguration,
    csd_configuration,
    standard_configurations,
)
from repro.tiering.cost_model import TieringCostModel

__all__ = [
    "CSD_PRICE_POINTS",
    "DeviceClass",
    "DeviceSpec",
    "STANDARD_DEVICES",
    "TieringConfiguration",
    "TieringCostModel",
    "csd_configuration",
    "standard_configurations",
]
