"""Storage device classes and their published cost/performance figures."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.exceptions import ConfigurationError


class DeviceClass(Enum):
    """The device classes appearing in the paper's tiering analysis."""

    SSD = "ssd"
    SCSI_15K = "15k-hdd"
    SATA_7K = "7.2k-hdd"
    TAPE = "tape"
    CSD = "csd"


@dataclass(frozen=True)
class DeviceSpec:
    """Cost and latency characteristics of one device class.

    ``cost_per_gb`` values for SSD / 15k HDD / SATA / tape come from the
    analyst study the paper cites (Table 1); access latencies are order-of-
    magnitude figures used for documentation and sanity checks rather than
    simulation (the CSD's behaviour is modelled in :mod:`repro.csd`).
    """

    device_class: DeviceClass
    cost_per_gb: float
    typical_access_latency_seconds: float
    description: str = ""

    def __post_init__(self) -> None:
        if self.cost_per_gb < 0:
            raise ConfigurationError("cost_per_gb must be non-negative")
        if self.typical_access_latency_seconds < 0:
            raise ConfigurationError("access latency must be non-negative")

    def cost_for(self, gigabytes: float) -> float:
        """Acquisition cost of storing ``gigabytes`` on this device class."""
        if gigabytes < 0:
            raise ConfigurationError("capacity must be non-negative")
        return self.cost_per_gb * gigabytes


#: Published per-GB acquisition costs (Table 1) plus representative latencies.
STANDARD_DEVICES = {
    DeviceClass.SSD: DeviceSpec(
        DeviceClass.SSD, cost_per_gb=75.0, typical_access_latency_seconds=1e-4,
        description="Performance tier flash",
    ),
    DeviceClass.SCSI_15K: DeviceSpec(
        DeviceClass.SCSI_15K, cost_per_gb=13.5, typical_access_latency_seconds=5e-3,
        description="Performance tier 15k-RPM SCSI HDD",
    ),
    DeviceClass.SATA_7K: DeviceSpec(
        DeviceClass.SATA_7K, cost_per_gb=4.5, typical_access_latency_seconds=1.2e-2,
        description="Capacity tier 7.2k-RPM SATA HDD",
    ),
    DeviceClass.TAPE: DeviceSpec(
        DeviceClass.TAPE, cost_per_gb=0.2, typical_access_latency_seconds=120.0,
        description="Archival tier robotic tape library",
    ),
    DeviceClass.CSD: DeviceSpec(
        DeviceClass.CSD, cost_per_gb=0.1, typical_access_latency_seconds=10.0,
        description="Cold storage device (MAID rack of SMR disks)",
    ),
}


def csd_spec(cost_per_gb: float) -> DeviceSpec:
    """A CSD spec at an arbitrary price point (the paper uses 1 / 0.2 / 0.1 $/GB)."""
    return DeviceSpec(
        DeviceClass.CSD,
        cost_per_gb=cost_per_gb,
        typical_access_latency_seconds=10.0,
        description=f"Cold storage device at ${cost_per_gb}/GB",
    )
