"""Pull-based query execution over the CSD (vanilla PostgreSQL model)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.client_proxy import ClientProxy
from repro.csd.backend import StorageBackend
from repro.engine.catalog import Catalog
from repro.engine.cost import CostModel
from repro.engine.operators.base import OperatorStats, Row
from repro.engine.planner import Planner
from repro.engine.query import Query
from repro.engine.relation import Relation, Segment
from repro.exceptions import ExecutionError
from repro.obs import NULL_TRACER
from repro.sim import Environment


@dataclass
class VanillaQueryResult:
    """Outcome and metrics of one pull-based query execution."""

    query_name: str
    client_id: str
    rows: List[Row]
    start_time: float
    end_time: float
    processing_time: float
    num_requests: int
    stats: OperatorStats
    blocked_intervals: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def execution_time(self) -> float:
        """End-to-end simulated execution time of the query."""
        return self.end_time - self.start_time

    @property
    def waiting_time(self) -> float:
        """Total simulated time spent blocked on the CSD."""
        return sum(end - start for start, end in self.blocked_intervals)


class VanillaExecutor:
    """Pull-based executor: one outstanding segment request at a time.

    The executor requests segments in the order dictated by the left-deep
    plan (all segments of the topmost build table first, …, the streamed
    fact table last), charges a per-segment scan cost as each segment
    arrives, and charges the remaining join/aggregation CPU once all inputs
    are local — the access pattern of a classical engine, which is what the
    paper's Figures 4, 5 and 7 measure.
    """

    def __init__(
        self,
        env: Environment,
        client_id: str,
        catalog: Catalog,
        device: StorageBackend,
        cost_model: Optional[CostModel] = None,
        proxy: Optional[ClientProxy] = None,
    ) -> None:
        self.env = env
        self.client_id = client_id
        self.catalog = catalog
        self.device = device
        self.cost_model = cost_model or CostModel()
        self.proxy = proxy or ClientProxy(env, device, client_id)
        self.planner = Planner(catalog)
        #: Installed by the session when the service traces (NULL otherwise).
        self.tracer = NULL_TRACER
        self.trace_parent = None

    def execute(self, query: Query):
        """Simulation-process generator executing ``query`` to completion."""
        plan = self.planner.plan(query)
        access_order = plan.segment_access_order(self.catalog)
        query_id = self.proxy.new_query_id(query.name)

        start_time = self.env.now
        processing_time = 0.0
        blocked: List[Tuple[float, float]] = []
        fetched: Dict[str, List[Segment]] = {table: [] for table in query.tables}

        tracer = self.tracer
        traced = tracer.enabled
        exec_span = None
        if traced:
            exec_span = tracer.start_span(
                "execute",
                kind="executor",
                track=self.client_id,
                parent=self.trace_parent,
                query_id=query_id,
                mode="vanilla",
            )
            tracer.bind_query(query_id, exec_span)

        for segment_id in access_order:
            overhead = self.cost_model.request_overhead(1)
            if overhead > 0:
                processing_time += overhead
                overhead_start = self.env.now
                yield self.env.timeout(overhead)
                if traced:
                    tracer.record_span(
                        "request-overhead",
                        kind="compute",
                        track=self.client_id,
                        start=overhead_start,
                        end=self.env.now,
                        parent=exec_span,
                        requests=1,
                    )
            self.proxy.request_objects([segment_id], query_id)
            wait_start = self.env.now
            arrived_id, payload = yield self.proxy.receive()
            if self.env.now > wait_start:
                blocked.append((wait_start, self.env.now))
                if traced:
                    tracer.record_span(
                        "wait",
                        kind="wait",
                        track=self.client_id,
                        start=wait_start,
                        end=self.env.now,
                        parent=exec_span,
                        object_key=segment_id,
                    )
            if arrived_id != segment_id:
                raise ExecutionError(
                    f"pull-based executor expected {segment_id!r} but received {arrived_id!r}"
                )
            table = self.catalog.table_of_segment(segment_id)
            fetched[table].append(payload)
            scan_seconds = self.cost_model.scan_time(payload.num_rows)
            if scan_seconds > 0:
                processing_time += scan_seconds
                scan_start = self.env.now
                yield self.env.timeout(scan_seconds)
                if traced:
                    tracer.record_span(
                        "compute",
                        kind="compute",
                        track=self.client_id,
                        start=scan_start,
                        end=self.env.now,
                        parent=exec_span,
                        object_key=segment_id,
                    )

        rows, stats, root = self._process_locally(query, plan, fetched)
        remaining_cpu = self._remaining_cpu_time(stats)
        if remaining_cpu > 0:
            processing_time += remaining_cpu
            cpu_start = self.env.now
            yield self.env.timeout(remaining_cpu)
            if traced:
                tracer.record_span(
                    "compute",
                    kind="compute",
                    track=self.client_id,
                    start=cpu_start,
                    end=self.env.now,
                    parent=exec_span,
                    phase="join-aggregate",
                )

        end_time = self.env.now
        if traced:
            self._record_operator_spans(tracer, root, exec_span, end_time)
            exec_span.attrs["num_requests"] = len(access_order)
            tracer.end_span(exec_span, end_time)
        return VanillaQueryResult(
            query_name=query.name,
            client_id=self.client_id,
            rows=rows,
            start_time=start_time,
            end_time=end_time,
            processing_time=processing_time,
            num_requests=len(access_order),
            stats=stats,
            blocked_intervals=blocked,
        )

    # ------------------------------------------------------------------ #
    # Local processing over the fetched segments
    # ------------------------------------------------------------------ #
    def _process_locally(
        self, query: Query, plan, fetched: Dict[str, List[Segment]]
    ) -> Tuple[List[Row], OperatorStats, object]:
        relations: Dict[str, Relation] = {}
        for table, segments in fetched.items():
            schema = self.catalog.schema(table)
            ordered = sorted(segments, key=lambda segment: segment.index)
            rebuilt = [
                Segment(table, position, segment.rows) for position, segment in enumerate(ordered)
            ]
            relations[table] = Relation(schema, rebuilt)
        root = self.planner.build_operator_tree(plan, relation_provider=relations.__getitem__)
        rows = root.rows()
        return rows, root.collect_stats(), root

    def _record_operator_spans(self, tracer, operator, parent, at: float) -> None:
        """Instant span per physical operator, preserving the tree shape."""
        span = tracer.record_span(
            f"operator:{type(operator).__name__}",
            kind="operator",
            track=self.client_id,
            start=at,
            end=at,
            parent=parent,
            tuples_scanned=operator.stats.tuples_scanned,
            tuples_built=operator.stats.tuples_built,
            tuples_probed=operator.stats.tuples_probed,
            tuples_output=operator.stats.tuples_output,
        )
        for child in operator.children():
            self._record_operator_spans(tracer, child, span, at)

    def _remaining_cpu_time(self, stats: OperatorStats) -> float:
        """Join/aggregation CPU not already charged during the fetch phase.

        Scans were charged segment by segment as data arrived, so only the
        build/probe/output components of the final plan are charged here.
        """
        return (
            self.cost_model.build_time(stats.tuples_built)
            + self.cost_model.probe_time(stats.tuples_probed)
            + self.cost_model.output_time(stats.tuples_output)
        )
