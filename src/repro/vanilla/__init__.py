"""The vanilla pull-based database client (the paper's PostgreSQL baseline).

A traditional engine follows the optimize-then-execute model: the planner
fixes a join order and execution *pulls* base-table segments one at a time in
exactly that order, blocking on each request.  On a shared CSD this is the
pathological access pattern — two consecutive requests of a client are
separated by every other tenant's request, so nearly every object access pays
a group switch.
"""

from repro.vanilla.executor import VanillaExecutor, VanillaQueryResult

__all__ = ["VanillaExecutor", "VanillaQueryResult"]
