"""Tenant arrival patterns.

A scenario describes *when* each tenant starts issuing queries relative to
the start of the simulation.  Patterns are declarative and deterministic:
given the number of tenants and a seeded :class:`random.Random`, a pattern
produces the same start delays every time, which is what makes scenario
reports reproducible byte for byte.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Type

from repro.exceptions import ScenarioError


class ArrivalPattern:
    """Base class: map ``num_tenants`` to a list of start delays (seconds)."""

    #: Registry key used in serialized scenario specs.
    kind = "base"

    def delays(self, num_tenants: int, rng: random.Random) -> List[float]:
        """Start delay of each tenant, in tenant order."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, object]:
        """Serializable description of this pattern (kind + parameters)."""
        payload: Dict[str, object] = {"kind": self.kind}
        payload.update(
            {key: value for key, value in vars(self).items() if not key.startswith("_")}
        )
        return payload

    @staticmethod
    def _check_positive(name: str, value: float) -> None:
        if not math.isfinite(value) or value <= 0:
            raise ScenarioError(f"{name} must be finite and positive, got {value!r}")

    @staticmethod
    def _check_non_negative(name: str, value: float) -> None:
        if not math.isfinite(value) or value < 0:
            raise ScenarioError(f"{name} must be finite and non-negative, got {value!r}")


class SimultaneousArrival(ArrivalPattern):
    """Every tenant starts at time zero (the shape of the paper's figures)."""

    kind = "simultaneous"

    def delays(self, num_tenants: int, rng: random.Random) -> List[float]:
        return [0.0] * num_tenants


class UniformArrival(ArrivalPattern):
    """Tenants start at fixed intervals: 0, gap, 2*gap, ..."""

    kind = "uniform"

    def __init__(self, gap_seconds: float) -> None:
        self._check_non_negative("gap_seconds", gap_seconds)
        self.gap_seconds = gap_seconds

    def delays(self, num_tenants: int, rng: random.Random) -> List[float]:
        return [index * self.gap_seconds for index in range(num_tenants)]


class BurstyArrival(ArrivalPattern):
    """Tenants arrive in bursts: ``burst_size`` tenants near-simultaneously,
    then a long quiet gap before the next burst.

    Within a burst each tenant gets a small random jitter so request streams
    interleave at the device rather than arriving in lockstep.
    """

    kind = "bursty"

    def __init__(
        self,
        burst_size: int,
        burst_gap_seconds: float,
        jitter_seconds: float = 1.0,
    ) -> None:
        if burst_size <= 0:
            raise ScenarioError(f"burst_size must be positive, got {burst_size!r}")
        self._check_positive("burst_gap_seconds", burst_gap_seconds)
        self._check_non_negative("jitter_seconds", jitter_seconds)
        self.burst_size = burst_size
        self.burst_gap_seconds = burst_gap_seconds
        self.jitter_seconds = jitter_seconds

    def delays(self, num_tenants: int, rng: random.Random) -> List[float]:
        result: List[float] = []
        for index in range(num_tenants):
            burst = index // self.burst_size
            jitter = rng.uniform(0.0, self.jitter_seconds) if self.jitter_seconds else 0.0
            result.append(burst * self.burst_gap_seconds + jitter)
        return result


class PoissonArrival(ArrivalPattern):
    """Tenants arrive as a Poisson process with the given mean inter-arrival
    gap (exponential gaps, cumulative start times)."""

    kind = "poisson"

    def __init__(self, mean_gap_seconds: float) -> None:
        self._check_positive("mean_gap_seconds", mean_gap_seconds)
        self.mean_gap_seconds = mean_gap_seconds

    def delays(self, num_tenants: int, rng: random.Random) -> List[float]:
        result: List[float] = []
        clock = 0.0
        for _ in range(num_tenants):
            result.append(clock)
            clock += rng.expovariate(1.0 / self.mean_gap_seconds)
        return result


#: Pattern registry used when (de)serializing scenario specs.
ARRIVAL_KINDS: Dict[str, Type[ArrivalPattern]] = {
    pattern.kind: pattern
    for pattern in (SimultaneousArrival, UniformArrival, BurstyArrival, PoissonArrival)
}


def arrival_from_dict(payload: Dict[str, object]) -> ArrivalPattern:
    """Rebuild an arrival pattern from its :meth:`ArrivalPattern.to_dict`."""
    data = dict(payload)
    kind = data.pop("kind", None)
    try:
        factory = ARRIVAL_KINDS[kind]  # type: ignore[index]
    except KeyError:
        raise ScenarioError(
            f"unknown arrival pattern {kind!r}; expected one of {sorted(ARRIVAL_KINDS)}"
        ) from None
    return factory(**data)  # type: ignore[arg-type]
