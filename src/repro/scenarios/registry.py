"""The named-scenario registry.

Each entry is a zero-argument builder returning a fresh
:class:`~repro.scenarios.spec.ScenarioSpec`.  Scenarios cover workload
shapes well beyond the paper's figures — bursty arrivals, skewed tenants,
degraded devices, mixed fleets — and every one of them is pinned by a
golden-metrics file under ``tests/golden/``.

To add a scenario: decorate a builder with :func:`register`, run
``python -m repro.scenarios --regen-golden <name>`` and commit the new
golden file together with the builder.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.exceptions import ScenarioError
from repro.fleet.spec import (
    DeviceFailure,
    DeviceJoin,
    DeviceLeave,
    DeviceProfile,
    FleetSpec,
    MigrationThrottle,
    RebalancePolicy,
    SetReplication,
)
from repro.scenarios.arrivals import BurstyArrival, PoissonArrival, UniformArrival
from repro.scenarios.spec import ScenarioSpec, TenantSpec, uniform_tenants
from repro.service.admission import AdmissionConfig

ScenarioBuilder = Callable[[], ScenarioSpec]

_REGISTRY: Dict[str, ScenarioBuilder] = {}


def register(builder: ScenarioBuilder) -> ScenarioBuilder:
    """Register a scenario builder under the name of the spec it returns."""
    spec = builder()
    if spec.name in _REGISTRY:
        raise ScenarioError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = builder
    return builder


def scenario_names() -> List[str]:
    """Sorted names of all registered scenarios."""
    return sorted(_REGISTRY)


def get_scenario(name: str) -> ScenarioSpec:
    """Build a fresh spec for the scenario registered under ``name``."""
    try:
        builder = _REGISTRY[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {name!r}; available: {', '.join(scenario_names())}"
        ) from None
    return builder()


def all_scenarios() -> List[ScenarioSpec]:
    """Fresh specs for every registered scenario, in name order."""
    return [get_scenario(name) for name in scenario_names()]


# --------------------------------------------------------------------------- #
# Built-in scenarios
# --------------------------------------------------------------------------- #
@register
def uniform_fleet() -> ScenarioSpec:
    return ScenarioSpec(
        name="uniform",
        description="Four identical Skipper tenants starting together — the "
        "shape of the paper's headline figures.",
        tenants=uniform_tenants(4, "tpch:q12", cache_capacity=8),
        seed=42,
    )


@register
def bursty_arrivals() -> ScenarioSpec:
    return ScenarioSpec(
        name="bursty",
        description="Six Skipper tenants arriving in three bursts of two with "
        "seeded jitter; stresses admission-order effects in the scheduler.",
        tenants=uniform_tenants(6, "tpch:q12", cache_capacity=8),
        arrival=BurstyArrival(burst_size=2, burst_gap_seconds=120.0, jitter_seconds=5.0),
        seed=42,
    )


@register
def hot_tenant_skew() -> ScenarioSpec:
    hot = TenantSpec(
        tenant_id="hot", queries=("tpch:q12",), repetitions=5, cache_capacity=8
    )
    cold = tuple(
        TenantSpec(tenant_id=f"cold{index}", queries=("tpch:q12",), cache_capacity=8)
        for index in range(3)
    )
    return ScenarioSpec(
        name="hot-tenant-skew",
        description="One tenant issues 5x the load of the other three while "
        "sharing a disk group with one of them; fairness under skew.",
        tenants=(hot,) + cold,
        layout="skewed",
        layout_param=(2, 1, 1),
        seed=42,
    )


@register
def straggler_device() -> ScenarioSpec:
    return ScenarioSpec(
        name="straggler-device",
        description="A degraded CSD: 4x the group-switch latency and 2x the "
        "per-object transfer time of the paper's device.",
        tenants=uniform_tenants(3, "tpch:q12", cache_capacity=8),
        switch_seconds=40.0,
        transfer_seconds=19.2,
        seed=42,
    )


@register
def cache_starved() -> ScenarioSpec:
    return ScenarioSpec(
        name="cache-starved",
        description="Two Skipper tenants running the six-table Q5 with a "
        "cache of exactly one object per joined relation; exercises eviction "
        "and re-issue cycles.",
        tenants=uniform_tenants(2, "tpch:q5", cache_capacity=6),
        seed=42,
    )


@register
def mixed_fleet() -> ScenarioSpec:
    skippers = uniform_tenants(2, "tpch:q12", cache_capacity=8, prefix="skipper")
    vanillas = uniform_tenants(2, "tpch:q12", mode="vanilla", prefix="vanilla")
    return ScenarioSpec(
        name="mixed-fleet",
        description="Two Skipper and two vanilla tenants share the CSD; the "
        "query-aware scheduler must cope with untagged pull-based traffic.",
        tenants=skippers + vanillas,
        seed=42,
    )


@register
def large_fanout() -> ScenarioSpec:
    return ScenarioSpec(
        name="large-fanout",
        description="Eight Skipper tenants striped round-robin over four disk "
        "groups — every group holds every tenant's data.",
        tenants=uniform_tenants(8, "tpch:q12", cache_capacity=8),
        layout="round-robin",
        layout_param=(4,),
        seed=42,
    )


@register
def single_tenant_saturation() -> ScenarioSpec:
    return ScenarioSpec(
        name="single-tenant-saturation",
        description="One tenant saturates the device with three different "
        "TPC-H queries repeated three times each.",
        tenants=(
            TenantSpec(
                tenant_id="solo",
                queries=("tpch:q1", "tpch:q6", "tpch:q12"),
                repetitions=3,
                cache_capacity=8,
            ),
        ),
        seed=42,
    )


@register
def fairness_adversarial() -> ScenarioSpec:
    return ScenarioSpec(
        name="fairness-adversarial",
        description="The paper's fairness-adversarial setup: five staggered "
        "tenants on a 2/2/1 skewed layout where efficiency-first policies "
        "starve the lone tenant.",
        tenants=uniform_tenants(5, "tpch:q12", repetitions=3, cache_capacity=8),
        arrival=UniformArrival(gap_seconds=10.0),
        layout="skewed",
        layout_param=(2, 2, 1),
        scheduler="rank-based",
        scheduler_param=1.0,
        seed=42,
    )


@register
def dataset_scaleout() -> ScenarioSpec:
    return ScenarioSpec(
        name="dataset-scaleout",
        description="Three Skipper tenants on the larger 'small' dataset "
        "(3x the objects of 'tiny') with a proportionally larger cache.",
        tenants=uniform_tenants(3, "tpch:q12", cache_capacity=16),
        scale="small",
        seed=42,
    )


@register
def fleet_uniform() -> ScenarioSpec:
    return ScenarioSpec(
        name="fleet-uniform",
        description="Four Skipper tenants sharded over a four-device fleet "
        "with consistent hashing and 2-way replication; the baseline "
        "scale-out shape.",
        tenants=uniform_tenants(4, "tpch:q12", cache_capacity=8),
        fleet=FleetSpec(devices=4, replication=2, placement="consistent-hash"),
        seed=42,
    )


@register
def fleet_hot_shard() -> ScenarioSpec:
    hot = TenantSpec(
        tenant_id="hot", queries=("tpch:q12",), repetitions=4, cache_capacity=8
    )
    cold = tuple(
        TenantSpec(tenant_id=f"cold{index}", queries=("tpch:q12",), cache_capacity=8)
        for index in range(3)
    )
    return ScenarioSpec(
        name="fleet-hot-shard",
        description="One tenant issues 4x the load of the other three on a "
        "three-device fleet; primary-first routing concentrates the hot "
        "tenant's traffic, surfacing a non-zero shard-imbalance coefficient.",
        tenants=(hot,) + cold,
        fleet=FleetSpec(
            devices=3,
            replication=2,
            placement="consistent-hash",
            replica_policy="primary-first",
        ),
        seed=42,
    )


@register
def fleet_device_loss() -> ScenarioSpec:
    return ScenarioSpec(
        name="fleet-device-loss",
        description="A three-device fleet with 2-way replication loses one "
        "device mid-run; its queued requests fail over to surviving "
        "replicas with zero lost objects.",
        tenants=uniform_tenants(4, "tpch:q12", cache_capacity=8),
        fleet=FleetSpec(
            devices=3,
            replication=2,
            placement="consistent-hash",
            replica_policy="least-loaded",
            failures=(DeviceFailure(device=0, at_seconds=40.0),),
            # Pins the pure failover path: no read-repair, the fleet stays
            # under-replicated (fleet-repair-after-loss pins the repair).
            repair=False,
        ),
        seed=42,
    )


@register
def fleet_scaleout() -> ScenarioSpec:
    return ScenarioSpec(
        name="fleet-scaleout",
        description="Six tenants at the paper's SF-50 scale sharded over "
        "four devices with 2-way replication — the heavy end of the "
        "regression net (also what makes --jobs visibly faster).",
        tenants=uniform_tenants(6, "tpch:q12", repetitions=2, cache_capacity=16),
        scale="sf50",
        fleet=FleetSpec(devices=4, replication=2),
        seed=42,
    )


@register
def fleet_replicated_read() -> ScenarioSpec:
    return ScenarioSpec(
        name="fleet-replicated-read",
        description="Six SF-50 tenants on a six-device fleet with 3-way "
        "replication and least-loaded routing: reads spread across all "
        "replicas of every shard.",
        tenants=uniform_tenants(6, "tpch:q12", repetitions=2, cache_capacity=16),
        scale="sf50",
        fleet=FleetSpec(devices=6, replication=3, replica_policy="least-loaded"),
        seed=42,
    )


@register
def fleet_loss_at_scale() -> ScenarioSpec:
    return ScenarioSpec(
        name="fleet-loss-at-scale",
        description="Device loss under real load: six SF-50 tenants on four "
        "devices (R=2), one device dies at t=300s and dozens of queued "
        "requests fail over with zero lost objects.",
        tenants=uniform_tenants(6, "tpch:q12", repetitions=2, cache_capacity=16),
        scale="sf50",
        fleet=FleetSpec(
            devices=4,
            replication=2,
            replica_policy="least-loaded",
            failures=(DeviceFailure(device=1, at_seconds=300.0),),
            # Failover-only baseline at scale; repair is pinned separately.
            repair=False,
        ),
        seed=42,
    )


@register
def fleet_elastic_join() -> ScenarioSpec:
    return ScenarioSpec(
        name="fleet-elastic-join",
        description="A fourth device joins a loaded three-device fleet "
        "mid-run: the placement epoch advances, only the keys whose replica "
        "set changed migrate onto the joiner, and least-loaded routing "
        "starts exploiting the extra capacity immediately (the tenants' "
        "second round of queries lands on the enlarged fleet).",
        tenants=uniform_tenants(4, "tpch:q12", cache_capacity=8, repetitions=2),
        fleet=FleetSpec(
            devices=3,
            replication=2,
            replica_policy="least-loaded",
            events=(DeviceJoin(device=3, at_seconds=60.0),),
        ),
        seed=42,
    )


@register
def fleet_elastic_drain() -> ScenarioSpec:
    return ScenarioSpec(
        name="fleet-elastic-drain",
        description="A device leaves a four-device fleet gracefully: its "
        "queued requests are handed off to the new owners of its keys, its "
        "replicas are re-homed with migration I/O charged to source and "
        "destination, and zero objects are lost.  Uses the placement-aware "
        "tenant-colocated layout: migrated keys join their tenant's "
        "existing disk group on the destination device.",
        tenants=uniform_tenants(4, "tpch:q12", cache_capacity=8),
        layout="tenant-colocated",
        fleet=FleetSpec(
            devices=4,
            replication=2,
            replica_policy="least-loaded",
            events=(DeviceLeave(device=0, at_seconds=50.0),),
        ),
        seed=42,
    )


@register
def fleet_heterogeneous() -> ScenarioSpec:
    return ScenarioSpec(
        name="fleet-heterogeneous",
        description="A mixed fast/slow fleet: one device has 4x the "
        "group-switch latency and 2x the transfer time, one is a fast "
        "next-generation device; least-loaded routing steers traffic "
        "around the straggler.",
        tenants=uniform_tenants(4, "tpch:q12", cache_capacity=8),
        fleet=FleetSpec(
            devices=3,
            replication=2,
            replica_policy="least-loaded",
            profiles=(
                DeviceProfile(device=1, switch_seconds=40.0, transfer_seconds=19.2),
                DeviceProfile(device=2, switch_seconds=5.0, transfer_seconds=4.8),
            ),
        ),
        seed=42,
    )


@register
def fleet_rebalance_under_load() -> ScenarioSpec:
    return ScenarioSpec(
        name="fleet-rebalance-under-load",
        description="Bursty arrivals during a join: eight tenants arrive in "
        "bursts of two while a fourth device joins mid-run.  The golden pins "
        "zero lost objects, a minimal migration (<= 2K/N keys) and a "
        "post-join imbalance coefficient strictly below the pre-join epoch's.",
        tenants=uniform_tenants(8, "tpch:q12", cache_capacity=8),
        arrival=BurstyArrival(burst_size=2, burst_gap_seconds=90.0, jitter_seconds=4.0),
        fleet=FleetSpec(
            devices=3,
            replication=1,
            events=(DeviceJoin(device=3, at_seconds=100.0),),
        ),
        seed=42,
    )


@register
def fleet_replication_upgrade() -> ScenarioSpec:
    return ScenarioSpec(
        name="fleet-replication-upgrade",
        description="Write-path replication under load: a four-device fleet "
        "starts at R=1 and raises the factor to 2 mid-run.  The "
        "SetReplication epoch diffs the placement at the old vs new R and "
        "re-replicates every key onto its new owner as charged migration "
        "I/O; the replication-repair invariant pins that every key ends "
        "with exactly 2 live replicas.",
        tenants=uniform_tenants(4, "tpch:q12", cache_capacity=8, repetitions=2),
        fleet=FleetSpec(
            devices=4,
            replication=1,
            replica_policy="least-loaded",
            events=(SetReplication(replication=2, at_seconds=80.0),),
        ),
        seed=42,
    )


@register
def fleet_repair_after_loss() -> ScenarioSpec:
    return ScenarioSpec(
        name="fleet-repair-after-loss",
        description="Read-repair after fail-stop loss: one device of a "
        "three-device R=2 fleet dies mid-run and the repair pass re-creates "
        "its replicas on the survivors from live sources (charged migration "
        "I/O), instead of leaving the fleet silently under-replicated.",
        tenants=uniform_tenants(4, "tpch:q12", cache_capacity=8),
        fleet=FleetSpec(
            devices=3,
            replication=2,
            replica_policy="least-loaded",
            failures=(DeviceFailure(device=0, at_seconds=40.0),),
        ),
        seed=42,
    )


@register
def fleet_throttled_rebalance() -> ScenarioSpec:
    return ScenarioSpec(
        name="fleet-throttled-rebalance",
        description="The fleet-rebalance-under-load join, rate-limited: a "
        "per-device token bucket paces migration I/O so it interleaves "
        "with the bursty foreground traffic instead of running at strict "
        "priority.  Pins strictly lower foreground interference seconds "
        "than the unthrottled twin for the same join.",
        tenants=uniform_tenants(8, "tpch:q12", cache_capacity=8),
        arrival=BurstyArrival(burst_size=2, burst_gap_seconds=90.0, jitter_seconds=4.0),
        fleet=FleetSpec(
            devices=3,
            replication=1,
            events=(DeviceJoin(device=3, at_seconds=100.0),),
            throttle=MigrationThrottle(objects_per_second=0.1),
        ),
        seed=42,
    )


#: Mixed-speed device profiles shared by the load-aware scenario pair: one
#: straggler at 2x transfer / 4x switch cost, one next-gen device at half
#: the base transfer time (same shape as ``fleet-heterogeneous``).
_MIXED_SPEED_PROFILES = (
    DeviceProfile(device=1, switch_seconds=40.0, transfer_seconds=19.2),
    DeviceProfile(device=2, switch_seconds=5.0, transfer_seconds=4.8),
)


@register
def fleet_load_aware_baseline() -> ScenarioSpec:
    return ScenarioSpec(
        name="fleet-load-aware-baseline",
        description="Control arm for the load-aware pair: the mixed "
        "fast/slow fleet on a hash-uniform ring with least-loaded routing. "
        "Its golden pins the p99 latency and imbalance coefficient that "
        "'fleet-load-aware' must strictly beat on the same traffic and seed.",
        tenants=uniform_tenants(6, "tpch:q12", cache_capacity=8),
        fleet=FleetSpec(
            devices=3,
            replication=2,
            replica_policy="least-loaded",
            profiles=_MIXED_SPEED_PROFILES,
        ),
        seed=42,
    )


@register
def fleet_load_aware() -> ScenarioSpec:
    return ScenarioSpec(
        name="fleet-load-aware",
        description="Treatment arm: the same mixed fast/slow fleet and "
        "traffic as 'fleet-load-aware-baseline', but the ring is weighted "
        "by device speed factors (profile weighting) and replicas are "
        "chosen by latency EWMA x queue depth; the slow device gets a "
        "smaller arc share and less traffic, cutting p99 and imbalance.",
        tenants=uniform_tenants(6, "tpch:q12", cache_capacity=8),
        fleet=FleetSpec(
            devices=3,
            replication=2,
            replica_policy="ewma-latency",
            weighting="profile",
            profiles=_MIXED_SPEED_PROFILES,
        ),
        seed=42,
    )


@register
def fleet_adaptive_rebalance() -> ScenarioSpec:
    return ScenarioSpec(
        name="fleet-adaptive-rebalance",
        description="Feedback-driven rebalancing: the mixed fast/slow fleet "
        "starts on a hash-uniform ring; a periodic controller measures the "
        "busy-time imbalance, and past the threshold emits a reweight epoch "
        "whose migration plan shifts arc share toward the observed-faster "
        "devices through the throttled-migration machinery.",
        tenants=uniform_tenants(6, "tpch:q12", repetitions=2, cache_capacity=8),
        fleet=FleetSpec(
            devices=3,
            replication=2,
            replica_policy="ewma-latency",
            profiles=_MIXED_SPEED_PROFILES,
            rebalance=RebalancePolicy(
                interval_seconds=150.0,
                imbalance_threshold=0.2,
                min_weight_delta=0.05,
            ),
        ),
        seed=42,
    )


@register
def admission_burst() -> ScenarioSpec:
    return ScenarioSpec(
        name="admission-burst",
        description="Nine tenants arrive in three tight bursts against an "
        "admission controller with a global in-flight cap of 2 and a "
        "3-deep queue; the overflow beyond queue capacity is shed with "
        "typed rejections.",
        tenants=uniform_tenants(9, "tpch:q12", cache_capacity=8),
        arrival=BurstyArrival(burst_size=3, burst_gap_seconds=30.0, jitter_seconds=2.0),
        admission=AdmissionConfig(max_in_flight=2, max_queue_depth=3),
        seed=42,
    )


@register
def session_fanout() -> ScenarioSpec:
    return ScenarioSpec(
        name="session-fanout",
        description="Eight sessions each submit two queries through a global "
        "in-flight cap of 3 (per-tenant cap 1) with a queue deep enough "
        "that nothing is shed: every query eventually runs, pinning the "
        "admission queue-delay percentiles and fairness.",
        tenants=uniform_tenants(8, "tpch:q12", repetitions=2, cache_capacity=8),
        admission=AdmissionConfig(
            max_in_flight=3, max_in_flight_per_tenant=1, max_queue_depth=64
        ),
        seed=42,
    )


@register
def multi_workload_mix() -> ScenarioSpec:
    return ScenarioSpec(
        name="multi-workload-mix",
        description="Four heterogeneous tenants (TPC-H, SSB, MR-bench, NREF) "
        "arriving as a Poisson process — the paper's mixed workload plus "
        "randomised arrivals.",
        tenants=(
            TenantSpec(tenant_id="tpch", queries=("tpch:q12",), cache_capacity=8),
            TenantSpec(tenant_id="ssb", queries=("ssb:q1_1",), cache_capacity=8),
            TenantSpec(
                tenant_id="mrbench", queries=("mrbench:join_task",), cache_capacity=8
            ),
            TenantSpec(
                tenant_id="nref", queries=("nref:sequence_count",), cache_capacity=8
            ),
        ),
        arrival=PoissonArrival(mean_gap_seconds=30.0),
        seed=42,
    )
