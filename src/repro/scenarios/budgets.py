"""Per-scenario performance budgets.

Every registered scenario has a committed simulated-time budget in
``tests/golden/budgets.json``.  A budget regression — a scenario suddenly
taking longer in *simulated* time — means the system got slower in a way the
golden metrics would also catch, but the budget file states the allowance
explicitly and fails with a dedicated, readable error.  ``--check`` enforces
budgets; ``--regen-budgets`` re-bases them after an intentional change.

The file format::

    {
      "schema_version": 1,
      "default_tolerance": 0.1,
      "budgets": {
        "uniform": {"simulated_time": 460.8},
        "bursty":  {"simulated_time": 702.3, "tolerance": 0.05}
      }
    }

A run fails its budget when ``simulated_time > budget * (1 + tolerance)``.
Budgets are an upper bound only: getting faster never fails (regenerate to
ratchet the budget down when an optimisation lands).

Entries may also carry a ``wall_time_budget`` (real seconds, written by
``--regen-budgets`` with generous headroom because wall time is
machine-dependent).  Unlike simulated-time budgets it is only enforced when
``--check`` runs with ``--enforce-wall-time`` — default off, wired into CI
as a non-blocking step until its timing proves stable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from repro.exceptions import BudgetExceededError
from repro.scenarios.golden import default_golden_dir

BUDGETS_SCHEMA_VERSION = 1

#: Headroom allowed above the committed simulated time.  The simulator is
#: deterministic, so any growth is a real behaviour change; the tolerance
#: only leaves room for small intentional drifts between re-baselines.
DEFAULT_TOLERANCE = 0.1

#: Multiplier applied to a measured wall time when re-basing
#: ``wall_time_budget``, plus a floor in seconds: wall time varies with the
#: machine and interpreter, so the committed ceiling is deliberately loose —
#: it exists to catch order-of-magnitude blowups, not percent-level drift.
WALL_TIME_HEADROOM = 5.0
WALL_TIME_FLOOR_SECONDS = 2.0


def budgets_path(golden_dir: Optional[Path] = None) -> Path:
    """Location of the committed budgets file."""
    return (golden_dir or default_golden_dir()) / "budgets.json"


def load_budgets(golden_dir: Optional[Path] = None) -> Dict[str, Any]:
    """Load the committed budgets document."""
    path = budgets_path(golden_dir)
    if not path.exists():
        raise BudgetExceededError(
            f"no budgets file at {path}; run "
            "'python -m repro.scenarios --regen-budgets' and commit it"
        )
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise BudgetExceededError(
            f"budgets file {path} is not valid JSON ({error}); re-base with "
            "'python -m repro.scenarios --regen-budgets'"
        ) from None
    if not isinstance(document, dict) or not isinstance(document.get("budgets"), dict):
        raise BudgetExceededError(
            f"budgets file {path} is malformed (expected a 'budgets' object); "
            "re-base with 'python -m repro.scenarios --regen-budgets'"
        )
    return document


def write_budgets(
    simulated_times: Mapping[str, float],
    golden_dir: Optional[Path] = None,
    default_tolerance: float = DEFAULT_TOLERANCE,
    wall_times: Optional[Mapping[str, float]] = None,
) -> Path:
    """Serialize budgets for ``simulated_times`` (scenario -> seconds).

    ``wall_times`` (scenario -> measured real seconds) additionally writes a
    ``wall_time_budget`` per entry, padded by :data:`WALL_TIME_HEADROOM`.
    Every wall-time name must also appear in ``simulated_times``: a
    wall-time-only entry would be missing its mandatory ``simulated_time``
    and poison the file for ``check_budget``.
    """
    orphans = sorted(set(wall_times or {}) - set(simulated_times))
    if orphans:
        raise BudgetExceededError(
            f"wall_times contains scenarios without a simulated time: {orphans}; "
            "every budget entry needs a simulated_time to be checkable"
        )
    budgets: Dict[str, Dict[str, float]] = {
        name: {"simulated_time": round(seconds, 9)}
        for name, seconds in sorted(simulated_times.items())
    }
    for name, wall in sorted((wall_times or {}).items()):
        budgets[name]["wall_time_budget"] = round(
            max(WALL_TIME_FLOOR_SECONDS, wall * WALL_TIME_HEADROOM), 2
        )
    document = {
        "schema_version": BUDGETS_SCHEMA_VERSION,
        "default_tolerance": default_tolerance,
        "budgets": budgets,
    }
    path = budgets_path(golden_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def check_budget(
    name: str, simulated_time: float, document: Mapping[str, Any]
) -> None:
    """Raise :class:`BudgetExceededError` if ``name`` blew its budget."""
    entry = document.get("budgets", {}).get(name)
    if entry is None:
        raise BudgetExceededError(
            f"scenario {name!r} has no committed perf budget; run "
            f"'python -m repro.scenarios --regen-budgets' and commit the diff"
        )
    if not isinstance(entry, Mapping) or "simulated_time" not in entry:
        raise BudgetExceededError(
            f"budget entry for scenario {name!r} is missing its "
            "'simulated_time' key; re-base with "
            "'python -m repro.scenarios --regen-budgets'"
        )
    try:
        budget = float(entry["simulated_time"])
        tolerance = float(
            entry.get("tolerance", document.get("default_tolerance", DEFAULT_TOLERANCE))
        )
    except (TypeError, ValueError) as error:
        raise BudgetExceededError(
            f"budget entry for scenario {name!r} is malformed ({error!r}); "
            "re-base with 'python -m repro.scenarios --regen-budgets'"
        ) from None
    allowed = budget * (1.0 + tolerance)
    if simulated_time > allowed:
        raise BudgetExceededError(
            f"scenario {name!r} ran for {simulated_time:.3f}s simulated, above "
            f"its budget of {budget:.3f}s (+{tolerance:.0%} tolerance = "
            f"{allowed:.3f}s). If the slowdown is intentional, re-base with "
            f"'python -m repro.scenarios --regen-budgets'"
        )


def check_wall_time(
    name: str, wall_seconds: float, document: Mapping[str, Any]
) -> None:
    """Enforce the (optional) wall-time ceiling for scenario ``name``.

    Scenarios without a committed ``wall_time_budget`` pass silently — the
    ceiling is opt-in per entry, and the check itself only runs under
    ``--check --enforce-wall-time``.
    """
    entry = document.get("budgets", {}).get(name)
    if entry is None or "wall_time_budget" not in entry:
        return
    try:
        budget = float(entry["wall_time_budget"])
    except (TypeError, ValueError) as error:
        raise BudgetExceededError(
            f"wall_time_budget for scenario {name!r} is malformed ({error!r}); "
            "re-base with 'python -m repro.scenarios --regen-budgets'"
        ) from None
    if wall_seconds > budget:
        raise BudgetExceededError(
            f"scenario {name!r} took {wall_seconds:.2f}s of wall time, above "
            f"its ceiling of {budget:.2f}s. If the slowdown is real and "
            "intentional, re-base with 'python -m repro.scenarios "
            "--regen-budgets'; if this machine is just slow, rerun without "
            "--enforce-wall-time"
        )
