"""Cross-cutting invariants checked after every scenario run.

The scenario engine is a regression net for the whole reproduction, so every
run — regardless of which scenario — is validated against properties that
must hold for *any* configuration:

* **Conservation** — every GET issued by a client is served exactly once:
  the device's served-object counter, its per-client counters, its transfer
  busy-intervals and the clients' request counters all agree.
* **Bounded starvation** — under the rank-based policy with fairness
  constant K > 0, no query's waiting counter (group switches since it was
  last serviced) ever exceeds a bound derived from the group/query counts;
  efficiency-first policies offer no such guarantee.
* **Monotone clock** — device busy intervals are well-formed, finish in
  non-decreasing completion order and never extend past the end of the
  simulation; every query finishes no earlier than it starts.
* **Cache bounds** — no Skipper client's cache ever held more objects than
  its configured capacity.

A violated invariant raises :class:`~repro.exceptions.InvariantViolation`;
the list of checks that ran is recorded in the scenario report so golden
files document what was validated.
"""

from __future__ import annotations

import math
from typing import List

from repro.cluster.cluster import Cluster, ClusterResult
from repro.core.executor import SkipperQueryResult
from repro.csd.scheduler import RankBasedScheduler
from repro.exceptions import InvariantViolation


def starvation_bound(num_groups: int, num_queries: int, fairness_constant: float) -> int:
    """Max group switches a query may wait under the rank-based policy.

    A group with a waiting query gains at least K rank per switch it is
    passed over, while any competing group's rank is reset when serviced and
    can never exceed ``num_queries`` plus its own accumulated waiting.  The
    waiting counters of at most ``num_groups`` groups can leapfrog each other
    before the starving group's rank dominates, giving the (conservative)
    bound ``num_groups * (1 + ceil(num_queries / K))``.
    """
    if fairness_constant <= 0:
        raise InvariantViolation("starvation bound undefined for K <= 0")
    return num_groups * (1 + math.ceil(num_queries / fairness_constant))


def check_conservation(cluster: Cluster, result: ClusterResult) -> None:
    """Objects-served conservation across device, scheduler and clients."""
    issued = sum(
        query_result.num_requests
        for results in result.results_by_client.values()
        for query_result in results
    )
    served = cluster.device.stats.objects_served
    received = cluster.device.stats.requests_received
    transfers = sum(
        1 for interval in cluster.device.busy_intervals if interval.kind == "transfer"
    )
    per_client_total = sum(cluster.device.stats.objects_per_client.values())
    if not issued == served == received == transfers == per_client_total:
        raise InvariantViolation(
            "objects-served conservation broken: "
            f"issued={issued} served={served} received={received} "
            f"transfers={transfers} per_client_total={per_client_total}"
        )
    if cluster.scheduler.has_pending():
        raise InvariantViolation("scheduler still has pending requests after the run")
    for interval in cluster.device.busy_intervals:
        if interval.kind != "transfer":
            continue
        expected_group = cluster.layout.group_of(interval.object_key)
        if interval.group_id != expected_group:
            raise InvariantViolation(
                f"object {interval.object_key!r} was served from group "
                f"{interval.group_id} but the layout places it on {expected_group}"
            )


def check_no_starvation(cluster: Cluster, result: ClusterResult) -> bool:
    """Bounded waiting under the rank-based policy (skipped otherwise)."""
    scheduler = cluster.scheduler
    if not isinstance(scheduler, RankBasedScheduler) or scheduler.fairness_constant <= 0:
        return False
    num_groups = max(1, cluster.layout.num_groups)
    num_queries = max(
        1,
        sum(
            len(spec.queries) * spec.repetitions
            for spec in result.config.client_specs
        ),
    )
    bound = starvation_bound(num_groups, num_queries, scheduler.fairness_constant)
    if scheduler.max_waiting_seen > bound:
        raise InvariantViolation(
            f"rank-based scheduler (K={scheduler.fairness_constant}) let a query "
            f"wait {scheduler.max_waiting_seen} switches, above the starvation "
            f"bound {bound} for {num_groups} groups / {num_queries} queries"
        )
    return True


def check_monotone_clock(cluster: Cluster, result: ClusterResult) -> None:
    """Busy intervals and query timestamps respect the simulated clock."""
    previous_end = 0.0
    for interval in cluster.device.busy_intervals:
        if interval.end < interval.start:
            raise InvariantViolation(
                f"busy interval ends before it starts: {interval!r}"
            )
        if interval.end < previous_end:
            raise InvariantViolation(
                "device busy intervals completed out of order: "
                f"{interval.end} after {previous_end}"
            )
        previous_end = interval.end
    if previous_end > result.total_simulated_time:
        raise InvariantViolation(
            f"device was busy until {previous_end}, after the simulation "
            f"ended at {result.total_simulated_time}"
        )
    for client_id, query_results in result.results_by_client.items():
        previous_query_end = 0.0
        for query_result in query_results:
            if query_result.end_time < query_result.start_time:
                raise InvariantViolation(
                    f"client {client_id!r}: query {query_result.query_name!r} "
                    "ended before it started"
                )
            if query_result.start_time < previous_query_end:
                raise InvariantViolation(
                    f"client {client_id!r}: queries overlap in time "
                    "(clients run queries sequentially)"
                )
            previous_query_end = query_result.end_time
            for start, end in query_result.blocked_intervals:
                if end < start or start < query_result.start_time or end > query_result.end_time:
                    raise InvariantViolation(
                        f"client {client_id!r}: blocked interval ({start}, {end}) "
                        "outside the query's execution window"
                    )


def check_cache_bounds(result: ClusterResult) -> bool:
    """No Skipper cache ever exceeded its configured capacity."""
    saw_skipper = False
    for client_id, query_results in result.results_by_client.items():
        for query_result in query_results:
            if not isinstance(query_result, SkipperQueryResult):
                continue
            saw_skipper = True
            if query_result.cache_peak_occupancy > query_result.cache_capacity:
                raise InvariantViolation(
                    f"client {client_id!r}: cache held "
                    f"{query_result.cache_peak_occupancy} objects, above its "
                    f"capacity of {query_result.cache_capacity}"
                )
    return saw_skipper


def check_invariants(cluster: Cluster, result: ClusterResult) -> List[str]:
    """Run every applicable invariant; return the names of those checked."""
    checked = ["conservation", "monotone-clock"]
    check_conservation(cluster, result)
    check_monotone_clock(cluster, result)
    if check_no_starvation(cluster, result):
        checked.append("no-starvation")
    if check_cache_bounds(result):
        checked.append("cache-bounds")
    return checked
