"""Cross-cutting invariants checked after every scenario run.

The scenario engine is a regression net for the whole reproduction, so every
run — regardless of which scenario — is validated against properties that
must hold for *any* configuration:

* **Conservation** — every GET issued by a client is served exactly once:
  the device's served-object counter, its per-client counters, its transfer
  busy-intervals and the clients' request counters all agree.
* **Bounded starvation** — under the rank-based policy with fairness
  constant K > 0, no query's waiting counter (group switches since it was
  last serviced) ever exceeds a bound derived from the group/query counts;
  efficiency-first policies offer no such guarantee.
* **Monotone clock** — device busy intervals are well-formed, finish in
  non-decreasing completion order and never extend past the end of the
  simulation; every query finishes no earlier than it starts.
* **Cache bounds** — no Skipper client's cache ever held more objects than
  its configured capacity.
* **Fleet placement** (fleet runs) — every object is placed on exactly R
  distinct devices and every serving device actually holds a replica.
* **Fleet failover** (fleet runs with failures) — dead devices start no work
  after their failure instant and no request is left queued anywhere: with
  R >= 2, zero objects are lost.
* **Fleet rebalance** (fleet runs with membership events) — epochs advance
  strictly monotonically, every migration plan stays within the
  bounded-migration envelope (≈2·R·K/N keys, far below a naive full
  reshuffle; an R change may legitimately sweep all K keys), departed
  devices perform only migration reads after leaving, joiners perform no
  work before joining, and zero objects are lost across the rebalance.
* **Replication repair** (fleet runs that repaired, re-replicated or
  trimmed) — after a read-repair pass or a ``SetReplication`` change every
  surviving key returns to ``min(R, serving)`` live replicas, trims never
  drop a key's last replica, and no device's outstanding counter ends
  non-zero.

A violated invariant raises :class:`~repro.exceptions.InvariantViolation`;
the list of checks that ran is recorded in the scenario report so golden
files document what was validated.
"""

from __future__ import annotations

import math
from typing import List

from repro.cluster.cluster import ClusterResult
from repro.core.executor import SkipperQueryResult
from repro.csd.scheduler import RankBasedScheduler
from repro.exceptions import InvariantViolation
from repro.service.service import StorageService

#: The invariant checks only touch the service's backend surface
#: (``fleet`` / ``device`` / ``scheduler`` / ``layout``).
ClusterLike = StorageService


def starvation_bound(num_groups: int, num_queries: int, fairness_constant: float) -> int:
    """Max group switches a query may wait under the rank-based policy.

    A group with a waiting query gains at least K rank per switch it is
    passed over, while any competing group's rank is reset when serviced and
    can never exceed ``num_queries`` plus its own accumulated waiting.  The
    waiting counters of at most ``num_groups`` groups can leapfrog each other
    before the starving group's rank dominates, giving the (conservative)
    bound ``num_groups * (1 + ceil(num_queries / K))``.
    """
    if fairness_constant <= 0:
        raise InvariantViolation("starvation bound undefined for K <= 0")
    return num_groups * (1 + math.ceil(num_queries / fairness_constant))


def _issued_requests(result: ClusterResult) -> int:
    return sum(
        query_result.num_requests
        for results in result.results_by_client.values()
        for query_result in results
    )


def check_conservation(cluster: ClusterLike, result: ClusterResult) -> None:
    """Objects-served conservation across device(s), scheduler(s) and clients."""
    issued = _issued_requests(result)
    if cluster.fleet is not None:
        _check_fleet_conservation(cluster, issued)
        return
    served = cluster.device.stats.objects_served
    received = cluster.device.stats.requests_received
    transfers = sum(
        1 for interval in cluster.device.busy_intervals if interval.kind == "transfer"
    )
    per_client_total = sum(cluster.device.stats.objects_per_client.values())
    if len({issued, served, received, transfers, per_client_total}) != 1:
        raise InvariantViolation(
            "objects-served conservation broken: "
            f"issued={issued} served={served} received={received} "
            f"transfers={transfers} per_client_total={per_client_total}"
        )
    if cluster.scheduler.has_pending():
        raise InvariantViolation("scheduler still has pending requests after the run")
    for interval in cluster.device.busy_intervals:
        if interval.kind != "transfer":
            continue
        expected_group = cluster.layout.group_of(interval.object_key)
        if interval.group_id != expected_group:
            raise InvariantViolation(
                f"object {interval.object_key!r} was served from group "
                f"{interval.group_id} but the layout places it on {expected_group}"
            )


def _check_fleet_conservation(cluster: ClusterLike, issued: int) -> None:
    """Fleet variant: conservation must hold across all devices combined.

    Failed-over and handed-off requests are registered by two devices (the
    one that lost them and the replica that eventually serves them), so the
    received counter exceeds the issued counter by exactly the router's
    failed-over plus handed-off counts.
    """
    fleet = cluster.fleet
    stats = fleet.device_stats
    served = stats.objects_served
    transfers = sum(
        1 for interval in fleet.busy_intervals if interval.kind == "transfer"
    )
    per_client_total = sum(stats.objects_per_client.values())
    if len({issued, served, transfers, per_client_total}) != 1:
        raise InvariantViolation(
            "fleet objects-served conservation broken: "
            f"issued={issued} served={served} transfers={transfers} "
            f"per_client_total={per_client_total}"
        )
    expected_received = issued + fleet.stats.failed_over + fleet.stats.handed_off
    if stats.requests_received != expected_received:
        raise InvariantViolation(
            f"fleet received {stats.requests_received} requests, expected "
            f"issued + failed_over + handed_off = {expected_received}"
        )
    if fleet.stats.requests_routed != expected_received:
        raise InvariantViolation(
            f"router routed {fleet.stats.requests_routed} requests, expected "
            f"issued + failed_over + handed_off = {expected_received}"
        )
    for member in fleet.members:
        if member.device is None:
            continue
        if member.device.scheduler.has_pending():
            raise InvariantViolation(
                f"device {member.device_id!r} still has pending requests "
                "after the run"
            )
        for interval in member.device.busy_intervals:
            if interval.kind != "transfer":
                continue
            expected_group = member.device.layout.group_of(interval.object_key)
            if interval.group_id != expected_group:
                raise InvariantViolation(
                    f"device {member.device_id!r}: object "
                    f"{interval.object_key!r} served from group "
                    f"{interval.group_id}, layout places it on {expected_group}"
                )


def check_no_starvation(cluster: ClusterLike, result: ClusterResult) -> bool:
    """Bounded waiting under the rank-based policy (skipped otherwise)."""
    num_queries = max(
        1,
        sum(
            len(spec.queries) * spec.repetitions
            for spec in result.config.client_specs
        ),
    )
    if cluster.fleet is not None:
        # Each device schedules independently; the bound is checked per
        # device with that device's group count (every query could in
        # principle have data on every device, so the query count is shared).
        schedulers = [
            (f"device {member.device_id!r}: ", member.device.scheduler, member.device.layout)
            for member in cluster.fleet.members
            if member.device is not None
        ]
    else:
        schedulers = [("", cluster.scheduler, cluster.layout)]
    checked_any = False
    for label, scheduler, layout in schedulers:
        if not isinstance(scheduler, RankBasedScheduler) or scheduler.fairness_constant <= 0:
            continue
        checked_any = True
        num_groups = max(1, layout.num_groups)
        bound = starvation_bound(num_groups, num_queries, scheduler.fairness_constant)
        if scheduler.max_waiting_seen > bound:
            raise InvariantViolation(
                f"{label}rank-based scheduler (K={scheduler.fairness_constant}) "
                f"let a query wait {scheduler.max_waiting_seen} switches, above "
                f"the starvation bound {bound} for {num_groups} groups / "
                f"{num_queries} queries"
            )
    return checked_any


def check_monotone_clock(cluster: ClusterLike, result: ClusterResult) -> None:
    """Busy intervals and query timestamps respect the simulated clock.

    In fleet mode every device's own interval stream must be monotone (the
    merged stream is sorted by construction, so checking it would be
    vacuous).
    """
    if cluster.fleet is not None:
        streams = [
            (member.device_id, member.device.busy_intervals)
            for member in cluster.fleet.members
            if member.device is not None
        ]
    else:
        streams = [("device", cluster.device.busy_intervals)]
    for label, intervals in streams:
        previous_end = 0.0
        for interval in intervals:
            if interval.end < interval.start:
                raise InvariantViolation(
                    f"{label}: busy interval ends before it starts: {interval!r}"
                )
            if interval.end < previous_end:
                raise InvariantViolation(
                    f"{label}: busy intervals completed out of order: "
                    f"{interval.end} after {previous_end}"
                )
            previous_end = interval.end
        if previous_end > result.total_simulated_time:
            raise InvariantViolation(
                f"{label}: busy until {previous_end}, after the simulation "
                f"ended at {result.total_simulated_time}"
            )
    for client_id, query_results in result.results_by_client.items():
        previous_query_end = 0.0
        for query_result in query_results:
            if query_result.end_time < query_result.start_time:
                raise InvariantViolation(
                    f"client {client_id!r}: query {query_result.query_name!r} "
                    "ended before it started"
                )
            if query_result.start_time < previous_query_end:
                raise InvariantViolation(
                    f"client {client_id!r}: queries overlap in time "
                    "(clients run queries sequentially)"
                )
            previous_query_end = query_result.end_time
            for start, end in query_result.blocked_intervals:
                if end < start or start < query_result.start_time or end > query_result.end_time:
                    raise InvariantViolation(
                        f"client {client_id!r}: blocked interval ({start}, {end}) "
                        "outside the query's execution window"
                    )


def check_cache_bounds(result: ClusterResult) -> bool:
    """No Skipper cache ever exceeded its configured capacity."""
    saw_skipper = False
    for client_id, query_results in result.results_by_client.items():
        for query_result in query_results:
            if not isinstance(query_result, SkipperQueryResult):
                continue
            saw_skipper = True
            if query_result.cache_peak_occupancy > query_result.cache_capacity:
                raise InvariantViolation(
                    f"client {client_id!r}: cache held "
                    f"{query_result.cache_peak_occupancy} objects, above its "
                    f"capacity of {query_result.cache_capacity}"
                )
    return saw_skipper


def check_fleet_placement(cluster: ClusterLike) -> None:
    """Every object sits on exactly R distinct devices that truly hold it.

    R here is the replication factor the current placement was computed at:
    ``SetReplication`` events move it away from the spec's initial value, and
    a repair pass after device loss can only sustain ``min(R, serving)``.
    """
    fleet = cluster.fleet
    replication = fleet.placement_replication
    members_by_id = {member.device_id: member for member in fleet.members}
    for object_key, replicas in fleet.placement.items():
        if len(replicas) != replication or len(set(replicas)) != len(replicas):
            raise InvariantViolation(
                f"object {object_key!r} is placed on {list(replicas)}, "
                f"expected exactly {replication} distinct devices"
            )
        for device_id in replicas:
            member = members_by_id.get(device_id)
            if member is None or member.device is None:
                raise InvariantViolation(
                    f"object {object_key!r} placed on unknown or empty "
                    f"device {device_id!r}"
                )
            if not member.device.layout.has_object(object_key):
                raise InvariantViolation(
                    f"device {device_id!r} does not hold a replica of "
                    f"{object_key!r} despite the placement saying so"
                )


def check_fleet_failover(cluster: ClusterLike) -> bool:
    """Dead devices stop at their failure instant and nothing is lost."""
    fleet = cluster.fleet
    failed = [member for member in fleet.members if member.failed_at is not None]
    if not failed:
        return False
    for member in failed:
        if member.device is None:
            continue
        for interval in member.device.busy_intervals:
            if interval.start > member.failed_at:
                raise InvariantViolation(
                    f"dead device {member.device_id!r} started work at "
                    f"{interval.start}, after failing at {member.failed_at}"
                )
    lost = fleet.pending_total()
    if lost:
        raise InvariantViolation(
            f"{lost} request(s) left queued in the fleet after the run "
            "(lost objects on failover)"
        )
    return True


def check_fleet_rebalance(cluster: ClusterLike) -> bool:
    """Elastic-membership invariants (skipped for static fleets).

    * **Epoch monotonicity** — the epoch log advances by exactly one per
      membership change, at non-decreasing simulated times, and the final
      epoch equals the number of changes.
    * **Bounded migration** — every join/leave plan moves at most
      ``min(K, ceil(2·R·K/N))`` distinct keys (N the smaller fleet size):
      the minimal-plan guarantee of consistent hashing, far below the naive
      full reshuffle of all K keys.
    * **Migrated data lands** — every migrated key is present in its
      destination device's (append-only) layout.
    * **Graceful exits** — a departed device performs only migration reads
      after leaving; a joiner performs no work before joining.
    * **Zero lost objects** — nothing is left queued anywhere post-run.
    """
    fleet = cluster.fleet
    membership = fleet.membership
    if not fleet.spec.events and not fleet.migration_plans:
        # Static membership (possibly with fail-stop losses and repair
        # disabled): nothing was rebalanced, so the epoch/migration
        # invariants would be vacuous.
        return False
    previous_time = 0.0
    for position, record in enumerate(membership.epoch_log, start=1):
        if record.epoch != position:
            raise InvariantViolation(
                f"epoch log out of order: change #{position} opened epoch "
                f"{record.epoch}"
            )
        if record.at_seconds < previous_time:
            raise InvariantViolation(
                f"epoch {record.epoch} opened at {record.at_seconds}, before "
                f"epoch {record.epoch - 1}'s change at {previous_time}"
            )
        previous_time = record.at_seconds
    if membership.epoch != len(membership.epoch_log):
        raise InvariantViolation(
            f"membership epoch {membership.epoch} does not match the "
            f"{len(membership.epoch_log)} recorded changes"
        )
    members_by_id = {member.device_id: member for member in fleet.members}
    for plan in fleet.migration_plans:
        bound = plan.migration_bound()
        if plan.keys_moved > bound:
            raise InvariantViolation(
                f"epoch {plan.epoch} ({plan.kind} of {plan.device_id!r}) moved "
                f"{plan.keys_moved} keys, above the bounded-migration envelope "
                f"{bound} (K={plan.total_keys}, R={plan.replication}, "
                f"{plan.devices_before}->{plan.devices_after} devices)"
            )
        for move in plan.moves:
            dest = members_by_id.get(move.dest)
            if dest is None or dest.device is None or not dest.device.layout.has_object(
                move.object_key
            ):
                raise InvariantViolation(
                    f"epoch {plan.epoch}: migrated key {move.object_key!r} "
                    f"never landed in destination {move.dest!r}'s layout"
                )
    for member in fleet.members:
        if member.device is None:
            continue
        if member.left_at is not None:
            for interval in member.device.busy_intervals:
                if interval.start > member.left_at and interval.kind != "migration":
                    raise InvariantViolation(
                        f"departed device {member.device_id!r} performed "
                        f"{interval.kind} work at {interval.start}, after "
                        f"leaving at {member.left_at}"
                    )
        if member.joined_at > 0:
            for interval in member.device.busy_intervals:
                if interval.start < member.joined_at:
                    raise InvariantViolation(
                        f"device {member.device_id!r} performed work at "
                        f"{interval.start}, before joining at {member.joined_at}"
                    )
    lost = fleet.pending_total()
    if lost:
        raise InvariantViolation(
            f"{lost} request(s) left queued in the fleet after the run "
            "(lost objects across the rebalance)"
        )
    return True


def check_replication_repair(cluster: ClusterLike) -> bool:
    """Replication-lifecycle invariants (skipped when nothing rebalanced).

    * **Full replication restored** — after a read-repair pass or a
      ``SetReplication`` change, every surviving key holds exactly
      ``min(R, serving devices)`` *live* replicas, each physically present
      in its device's layout: repair actually heals the loss, R-up actually
      replicates, and R-down never over-trims.
    * **Trims keep a live replica** — no plan's trim ever left a key with
      zero *live* replicas (each :class:`~repro.fleet.migration.KeyTrim`
      records the live survivor count at plan time, so a placement diffed
      against a stale roster of dead devices would be caught here).
    * **Outstanding counters stay sane** — no device ends the run with a
      negative or non-zero outstanding count (the router raises mid-run if
      one ever goes negative).
    """
    fleet = cluster.fleet
    plans = fleet.migration_plans
    trims = [trim for plan in plans for trim in plan.trims]
    healed = any(
        plan.kind in ("repair", "set-replication") for plan in plans
    ) or (fleet.spec.repair and any(m.failed_at is not None for m in fleet.members))
    # An *unrepaired* loss after the last placement recompute legitimately
    # leaves the end state degraded (repair disabled), so full replication
    # cannot be demanded of it — earlier plans notwithstanding.  A recompute
    # at or after the failure re-places over the survivors and clears the
    # taint (at equal timestamps the failure process fires first).
    failure_times = [m.failed_at for m in fleet.members if m.failed_at is not None]
    unrepaired_loss = (
        bool(failure_times)
        and not fleet.spec.repair
        and (not plans or max(failure_times) > max(p.at_seconds for p in plans))
    )
    healed = healed and not unrepaired_loss
    if not healed and not trims:
        return False
    for trim in trims:
        if trim.survivors < 1:
            raise InvariantViolation(
                f"trim of {trim.object_key!r} off {trim.device!r} dropped "
                "the key's last replica"
            )
    members_by_id = {member.device_id: member for member in fleet.members}
    for member in fleet.members:
        if member.outstanding != 0:
            raise InvariantViolation(
                f"device {member.device_id!r} ended the run with "
                f"{member.outstanding} outstanding request(s)"
            )
    if healed:
        target = fleet.effective_replication
        for object_key, replicas in fleet.placement.items():
            live = [
                device_id
                for device_id in replicas
                if members_by_id[device_id].alive
            ]
            if len(live) != target:
                raise InvariantViolation(
                    f"object {object_key!r} holds {len(live)} live replica(s) "
                    f"after repair/replication changes, expected {target}"
                )
            for device_id in live:
                member = members_by_id[device_id]
                if member.device is None or not member.device.layout.has_object(
                    object_key
                ):
                    raise InvariantViolation(
                        f"live replica of {object_key!r} on {device_id!r} is "
                        "not physically present in the device's layout"
                    )
    return True


def check_invariants(cluster: ClusterLike, result: ClusterResult) -> List[str]:
    """Run every applicable invariant; return the names of those checked."""
    checked = ["conservation", "monotone-clock"]
    check_conservation(cluster, result)
    check_monotone_clock(cluster, result)
    if check_no_starvation(cluster, result):
        checked.append("no-starvation")
    if check_cache_bounds(result):
        checked.append("cache-bounds")
    if cluster.fleet is not None:
        check_fleet_placement(cluster)
        checked.append("fleet-placement")
        if check_fleet_failover(cluster):
            checked.append("fleet-failover")
        if check_fleet_rebalance(cluster):
            checked.append("fleet-rebalance")
        if check_replication_repair(cluster):
            checked.append("replication-repair")
    return checked
