"""Parallel scenario execution.

Scenarios are embarrassingly parallel: every run builds its own catalog,
environment and cluster from a pure spec, so executing them in worker
processes is safe and — because the simulation is exactly deterministic —
produces reports byte-identical to a serial run.  This is what lets CI run
the whole registry with ``--jobs N`` and still diff against the same
committed goldens.

The only cross-scenario state in the interpreter is the global request-id
counter, and no serialized metric depends on absolute request ids (only on
their relative order inside one run), so process boundaries cannot change
any report.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Sequence

from repro.exceptions import ReproError, ScenarioError


@dataclass(frozen=True)
class ScenarioOutcome:
    """Result of running one scenario: its report JSON or an error.

    ``wall_seconds`` is real elapsed time, not simulated time; it is
    reported by ``--check`` for timing visibility but never diffed (wall
    time is machine-dependent, unlike every serialized metric).
    """

    name: str
    report_json: Optional[str]
    error: Optional[str]
    simulated_time: Optional[float]
    wall_seconds: Optional[float] = None
    #: Canonical trace JSON, when the run was traced (``trace=True``).
    trace_json: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def run_one(name: str, trace: bool = False) -> ScenarioOutcome:
    """Run a single named scenario (top level, so worker processes can pickle it)."""
    # Imported lazily so spawned workers pay the import cost once, not the
    # parent at module-import time.
    from repro.scenarios.registry import get_scenario
    from repro.scenarios.runner import ScenarioRunner

    started = time.perf_counter()
    trace_json: Optional[str] = None
    try:
        if trace:
            report, trace_json = ScenarioRunner().run_traced(get_scenario(name))
        else:
            report = ScenarioRunner().run(get_scenario(name))
    except ReproError as error:
        return ScenarioOutcome(
            name=name,
            report_json=None,
            error=str(error),
            simulated_time=None,
            wall_seconds=time.perf_counter() - started,
        )
    return ScenarioOutcome(
        name=name,
        report_json=report.to_json(),
        error=None,
        simulated_time=report.total_simulated_time,
        wall_seconds=time.perf_counter() - started,
        trace_json=trace_json,
    )


def run_scenarios(
    names: Sequence[str], jobs: int = 1, trace: bool = False
) -> List[ScenarioOutcome]:
    """Run ``names`` serially (``jobs<=1``) or in worker processes.

    Outcomes are returned in the order of ``names`` regardless of which
    worker finished first, so downstream output is deterministic.
    """
    if jobs < 1:
        raise ScenarioError(f"--jobs must be >= 1, got {jobs}")
    if jobs == 1 or len(names) <= 1:
        return [run_one(name, trace=trace) for name in names]
    with ProcessPoolExecutor(max_workers=min(jobs, len(names))) as pool:
        return list(pool.map(partial(run_one, trace=trace), names))


def reports_by_name(outcomes: Sequence[ScenarioOutcome]) -> Dict[str, str]:
    """Map scenario name to report JSON for the successful outcomes."""
    return {
        outcome.name: outcome.report_json
        for outcome in outcomes
        if outcome.report_json is not None
    }
