"""Execute a :class:`ScenarioSpec` through the service façade.

The runner is the only place that turns declarative scenario data into live
objects: it builds the catalogs for every workload the scenario references,
resolves layout/scheduler names, derives each tenant's start delay from the
arrival pattern, runs a
:class:`~repro.service.service.StorageService` to completion, validates the
run with the invariant checker and condenses the measurements into a
canonical :class:`~repro.scenarios.report.ScenarioReport`.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Dict, List, Sequence, Tuple

from repro.cluster.client import ClientSpec
from repro.cluster.cluster import ClusterConfig, ClusterResult
from repro.cluster.metrics import jain_fairness, mean, percentile
from repro.core.executor import SkipperQueryResult
from repro.csd.device import DeviceConfig
from repro.csd.layout import (
    AllInOneLayout,
    ClientsPerGroupLayout,
    IncrementalLayout,
    LayoutPolicy,
    RoundRobinObjectLayout,
    SkewedLayout,
    TenantColocatedLayout,
)
from repro.csd.scheduler import (
    IOScheduler,
    MaxQueriesScheduler,
    ObjectFCFSScheduler,
    QueryFCFSScheduler,
    RankBasedScheduler,
    SlackFCFSScheduler,
)
from repro.engine.catalog import Catalog
from repro.engine.query import Query
from repro.exceptions import ScenarioError
from repro.scenarios.invariants import check_invariants
from repro.scenarios.report import ClientReport, ScenarioReport
from repro.scenarios.spec import KNOWN_WORKLOADS, ScenarioSpec, split_query_ref
from repro.service.service import StorageService
from repro.workloads import mrbench, nref, ssb, tpch

#: Workload modules by scenario-spec prefix.  Each exposes ``build_catalog``
#: (merging into an existing catalog) and ``query(name)``.
WORKLOAD_MODULES = {"tpch": tpch, "ssb": ssb, "mrbench": mrbench, "nref": nref}


def build_layout(spec: ScenarioSpec) -> LayoutPolicy:
    """Resolve the spec's layout name + parameter into a policy object."""
    param = spec.layout_param
    if spec.layout == "all-in-one":
        return AllInOneLayout()
    if spec.layout == "incremental":
        return IncrementalLayout()
    if spec.layout == "tenant-colocated":
        return TenantColocatedLayout()
    if spec.layout == "clients-per-group":
        return ClientsPerGroupLayout(param[0] if param else 1)
    if spec.layout == "round-robin":
        if not param:
            raise ScenarioError(
                f"scenario {spec.name!r}: round-robin layout needs layout_param "
                "(number of groups)"
            )
        return RoundRobinObjectLayout(param[0])
    if spec.layout == "skewed":
        if not param:
            raise ScenarioError(
                f"scenario {spec.name!r}: skewed layout needs layout_param "
                "(clients per group)"
            )
        return SkewedLayout(list(param))
    raise ScenarioError(f"scenario {spec.name!r}: unknown layout {spec.layout!r}")


def build_scheduler(spec: ScenarioSpec) -> IOScheduler:
    """Resolve the spec's scheduler name + parameter into a policy object."""
    param = spec.scheduler_param
    if spec.scheduler == "object-fcfs":
        return ObjectFCFSScheduler()
    if spec.scheduler == "query-fcfs":
        return QueryFCFSScheduler()
    if spec.scheduler == "max-queries":
        return MaxQueriesScheduler()
    if spec.scheduler == "slack-fcfs":
        return SlackFCFSScheduler(int(param)) if param is not None else SlackFCFSScheduler()
    if spec.scheduler == "rank-based":
        if param is not None:
            return RankBasedScheduler(fairness_constant=param)
        return RankBasedScheduler()
    raise ScenarioError(f"scenario {spec.name!r}: unknown scheduler {spec.scheduler!r}")


def build_catalog(spec: ScenarioSpec) -> Catalog:
    """Build one catalog holding every workload the scenario references.

    Each workload gets a distinct derived seed (as the paper's mixed-workload
    experiment does), offset by the workload's fixed position in
    :data:`~repro.scenarios.spec.KNOWN_WORKLOADS` — not by its position in
    this scenario — so adding or reordering tenants never perturbs the data
    of the workloads already present.
    """
    catalog: Catalog = Catalog()
    for workload in spec.workloads():
        module = WORKLOAD_MODULES[workload]
        offset = KNOWN_WORKLOADS.index(workload)
        module.build_catalog(spec.scale, seed=spec.seed + offset, catalog=catalog)
    return catalog


def resolve_query(reference: str) -> Query:
    """Turn ``"workload:query"`` into a :class:`~repro.engine.query.Query`."""
    workload, query_name = split_query_ref(reference)
    return WORKLOAD_MODULES[workload].query(query_name)


def build_cluster_config(spec: ScenarioSpec) -> ClusterConfig:
    """Materialise the spec's tenants, arrivals and device knobs into a config."""
    rng = random.Random(spec.seed)
    delays = spec.arrival.delays(len(spec.tenants), rng)
    client_specs = [
        ClientSpec(
            client_id=tenant.tenant_id,
            queries=[resolve_query(reference) for reference in tenant.queries],
            mode=tenant.mode,
            repetitions=tenant.repetitions,
            cache_capacity=tenant.cache_capacity,
            enable_pruning=tenant.enable_pruning,
            start_delay=delay,
        )
        for tenant, delay in zip(spec.tenants, delays)
    ]
    return ClusterConfig(
        client_specs=client_specs,
        layout_policy=build_layout(spec),
        device_config=DeviceConfig(
            group_switch_seconds=spec.switch_seconds,
            transfer_seconds_per_object=spec.transfer_seconds,
            concurrent_transfers=spec.concurrent_transfers,
        ),
        fleet_spec=spec.fleet,
    )


class ScenarioRunner:
    """Runs scenario specs deterministically and emits canonical reports."""

    def __init__(self, check: bool = True) -> None:
        #: Whether to run the invariant checker after each scenario.
        self.check = check

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def build_service(self, spec: ScenarioSpec) -> StorageService:
        """Materialise the spec into a ready-to-run storage service."""
        return StorageService(spec)

    def run(self, spec: ScenarioSpec) -> ScenarioReport:
        """Run ``spec`` to completion, validate it and report the metrics."""
        service = self.build_service(spec)
        result = service.run()
        checked: List[str] = []
        if self.check:
            checked = check_invariants(service, result)
        return self._build_report(spec, service, result, checked)

    def run_traced(self, spec: ScenarioSpec) -> Tuple[ScenarioReport, str]:
        """Run ``spec`` with tracing on; returns the report + trace JSON.

        A spec with ``trace=False`` is transparently re-materialised with
        tracing enabled, so CLI callers can trace any registered scenario.
        """
        from repro.obs.export import build_trace, trace_to_json

        if not spec.trace:
            spec = replace(spec, trace=True)
        service = self.build_service(spec)
        result = service.run()
        checked: List[str] = []
        if self.check:
            checked = check_invariants(service, result)
        report = self._build_report(spec, service, result, checked)
        document = build_trace(service, scenario=spec.name)
        return report, trace_to_json(document)

    # ------------------------------------------------------------------ #
    # Report assembly
    # ------------------------------------------------------------------ #
    def _build_report(
        self,
        spec: ScenarioSpec,
        service: StorageService,
        result: ClusterResult,
        checked: Sequence[str],
    ) -> ScenarioReport:
        clients: Dict[str, ClientReport] = {}
        delay_by_client = {
            client_spec.client_id: client_spec.start_delay
            for client_spec in result.config.client_specs
        }
        mode_by_client = {
            client_spec.client_id: client_spec.mode
            for client_spec in result.config.client_specs
        }
        for client_id, query_results in result.results_by_client.items():
            times = [query_result.execution_time for query_result in query_results]
            # A tenant whose every query was shed by admission control ran
            # nothing; its latency distribution degenerates to zeros.
            clients[client_id] = ClientReport(
                mode=mode_by_client[client_id],
                start_delay=delay_by_client[client_id],
                queries_run=len(query_results),
                requests=sum(query_result.num_requests for query_result in query_results),
                total_time=sum(times),
                mean_time=mean(times),
                min_time=min(times) if times else 0.0,
                max_time=max(times) if times else 0.0,
                p50_time=percentile(times, 0.50) if times else 0.0,
                p95_time=percentile(times, 0.95) if times else 0.0,
            )

        breakdown = result.average_breakdown()
        per_client_means = [report.mean_time for report in clients.values()]
        if service.fleet is not None:
            scheduler_switches = service.fleet.scheduler_switches()
            max_waiting = service.fleet.max_waiting_seen()
            fleet_metrics = service.fleet.metrics(result.total_simulated_time)
            rebalance_metrics = service.fleet.rebalance_metrics(
                result.total_simulated_time
            )
            replication_metrics = service.fleet.replication_metrics()
            routing_metrics = service.fleet.routing_metrics()
        else:
            scheduler_switches = service.scheduler.num_switches
            max_waiting = service.scheduler.max_waiting_seen
            fleet_metrics = None
            rebalance_metrics = None
            replication_metrics = None
            routing_metrics = None
        admission_metrics = (
            service.admission.summary() if service.admission is not None else None
        )
        return ScenarioReport(
            scenario=spec.name,
            seed=spec.seed,
            spec=spec.to_dict(),
            clients=clients,
            device_switches=result.device_switches,
            scheduler_switches=scheduler_switches,
            max_waiting_seen=max_waiting,
            objects_served=result.device_objects_served,
            total_simulated_time=result.total_simulated_time,
            cumulative_time=result.cumulative_execution_time(),
            mean_time=result.average_execution_time(),
            fairness_jain=jain_fairness(per_client_means),
            breakdown={
                "processing": breakdown.processing,
                "switch_wait": breakdown.switch_wait,
                "transfer_wait": breakdown.transfer_wait,
                "other_wait": breakdown.other_wait,
            },
            cache=self._cache_stats(result),
            invariants_checked=list(checked),
            fleet=fleet_metrics,
            admission=admission_metrics,
            rebalance=rebalance_metrics,
            replication=replication_metrics,
            routing=routing_metrics,
        )

    @staticmethod
    def _cache_stats(result: ClusterResult) -> Dict[str, float]:
        hits = 0
        insertions = 0
        peak = 0
        for query_results in result.results_by_client.values():
            for query_result in query_results:
                if not isinstance(query_result, SkipperQueryResult):
                    continue
                hits += query_result.cache_hits
                insertions += query_result.cache_insertions
                peak = max(peak, query_result.cache_peak_occupancy)
        lookups = hits + insertions
        return {
            "hits": float(hits),
            "insertions": float(insertions),
            "peak_occupancy": float(peak),
            "hit_rate": hits / lookups if lookups else 0.0,
        }
