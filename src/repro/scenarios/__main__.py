"""``python -m repro.scenarios`` — run scenarios and manage golden metrics.

Examples::

    python -m repro.scenarios --list
    python -m repro.scenarios --run bursty
    python -m repro.scenarios --run-all --jobs 4
    python -m repro.scenarios --check --jobs 4
    python -m repro.scenarios --regen-golden
    python -m repro.scenarios --regen-golden uniform mixed-fleet
    python -m repro.scenarios --regen-budgets
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.exceptions import ReproError
from repro.scenarios.budgets import (
    check_budget,
    check_wall_time,
    load_budgets,
    write_budgets,
)
from repro.scenarios.golden import assert_dict_matches_golden, write_golden
from repro.scenarios.parallel import ScenarioOutcome, run_scenarios
from repro.scenarios.registry import get_scenario, scenario_names
from repro.scenarios.runner import ScenarioRunner


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Run declarative multi-tenant scenarios and manage their "
        "golden-metrics files and perf budgets.",
    )
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--list", action="store_true", help="list registered scenarios")
    group.add_argument(
        "--run", metavar="NAME", help="run one scenario and print its canonical report"
    )
    group.add_argument(
        "--run-all",
        action="store_true",
        help="run every scenario and print a per-scenario digest of its "
        "report (byte-identical for any --jobs value)",
    )
    group.add_argument(
        "--check",
        action="store_true",
        help="run every scenario, diff it against its committed golden and "
        "enforce its perf budget",
    )
    group.add_argument(
        "--regen-golden",
        nargs="*",
        metavar="NAME",
        default=None,
        help="regenerate golden files (all scenarios when no names are given)",
    )
    group.add_argument(
        "--regen-budgets",
        action="store_true",
        help="run every scenario and re-base tests/golden/budgets.json",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for --run-all / --check / --regen-budgets "
        "(default: 1, serial)",
    )
    parser.add_argument(
        "--golden-dir",
        type=Path,
        default=None,
        help="override the golden directory (default: tests/golden)",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="FILE",
        help="with --run: record an end-to-end trace of the run and write it "
        "to FILE (analyse with python -m repro.trace FILE)",
    )
    parser.add_argument(
        "--enforce-wall-time",
        action="store_true",
        help="with --check: fail scenarios exceeding their committed "
        "wall_time_budget (default off; wall time is machine-dependent)",
    )
    return parser


def _render_scenario_table(golden_dir: Optional[Path] = None) -> str:
    """The ``--list`` view: one row per scenario with its headline shape.

    Budgets come from the committed ``tests/golden/budgets.json``; scenarios
    without a committed budget yet (freshly registered) show ``-``.
    """
    from repro.harness.tables import format_table

    try:
        budgets = load_budgets(golden_dir=golden_dir)["budgets"]
    except ReproError:
        budgets = {}
    rows = []
    for name in scenario_names():
        spec = get_scenario(name)
        queries = sum(len(tenant.queries) * tenant.repetitions for tenant in spec.tenants)
        if spec.fleet is not None:
            devices = f"{spec.fleet.devices} x R{spec.fleet.replication}"
            events = _render_membership(spec.fleet)
            hetero = "mixed" if spec.fleet.heterogeneous else "-"
            routing = _render_routing(spec.fleet)
        else:
            devices = "1"
            events = "-"
            hetero = "-"
            routing = "-"
        if spec.admission is not None:
            caps = (
                spec.admission.max_in_flight,
                spec.admission.max_in_flight_per_tenant,
            )
            admission = "/".join("-" if cap is None else str(cap) for cap in caps)
            admission += f" q{spec.admission.max_queue_depth}"
        else:
            admission = "off"
        budget = budgets.get(name, {}).get("simulated_time")
        rows.append(
            [
                name,
                len(spec.tenants),
                queries,
                spec.scale,
                devices,
                events,
                hetero,
                routing,
                admission,
                f"{budget:.1f}" if budget is not None else "-",
            ]
        )
    return format_table(
        [
            "scenario",
            "tenants",
            "queries",
            "scale",
            "devices",
            "membership",
            "hetero",
            "routing",
            "admission",
            "sim budget (s)",
        ],
        rows,
        title=f"{len(rows)} registered scenarios",
    )


def _render_membership(fleet) -> str:
    """Compact membership-event summary for the ``--list`` table.

    Joins render as ``+csdN@Ts``, graceful leaves as ``-csdN@Ts``,
    fail-stop losses as ``xcsdN@Ts`` and replication changes as ``R=r@Ts``;
    a static fleet shows ``-``.
    """
    from repro.fleet.spec import DeviceJoin, SetReplication

    parts = []
    for event in fleet.events:
        if isinstance(event, SetReplication):
            parts.append(f"R={event.replication}@{event.at_seconds:g}s")
            continue
        sign = "+" if isinstance(event, DeviceJoin) else "-"
        parts.append(f"{sign}csd{event.device}@{event.at_seconds:g}s")
    for failure in fleet.failures:
        parts.append(f"xcsd{failure.device}@{failure.at_seconds:g}s")
    return " ".join(parts) if parts else "-"


def _render_routing(fleet) -> str:
    """Placement/routing-policy summary for the ``--list`` table.

    Shows ``<placement>/<replica policy>``, with ``+w`` appended when the
    ring is capacity-weighted (profile weighting) and ``+rb`` when the
    feedback rebalancer is configured.
    """
    placement = "hash" if fleet.placement == "consistent-hash" else fleet.placement
    summary = f"{placement}/{fleet.replica_policy}"
    if fleet.weighting != "uniform":
        summary += "+w"
    if fleet.rebalance is not None:
        summary += "+rb"
    return summary


def _digest(report_json: str) -> str:
    return hashlib.sha256(report_json.encode()).hexdigest()


def _print_failure(outcome: ScenarioOutcome) -> None:
    print(f"FAIL {outcome.name}\n{outcome.error}", file=sys.stderr)


def main(argv: Optional[Sequence[str]] = None) -> int:
    arguments = build_parser().parse_args(argv)
    runner = ScenarioRunner()

    if arguments.list:
        print(_render_scenario_table(golden_dir=arguments.golden_dir))
        return 0

    if arguments.run is not None:
        if arguments.trace is not None:
            report, trace_json = runner.run_traced(get_scenario(arguments.run))
            arguments.trace.write_text(trace_json)
            print(f"wrote {arguments.trace}", file=sys.stderr)
        else:
            report = runner.run(get_scenario(arguments.run))
        print(report.to_json(), end="")
        return 0

    if arguments.trace is not None:
        print("error: --trace requires --run", file=sys.stderr)
        return 2

    if arguments.run_all:
        failures = 0
        for outcome in run_scenarios(scenario_names(), jobs=arguments.jobs):
            if not outcome.ok:
                failures += 1
                _print_failure(outcome)
                continue
            print(
                f"ok   {outcome.name:28s} sim={outcome.simulated_time:12.3f}  "
                f"sha256={_digest(outcome.report_json)}"
            )
        return 1 if failures else 0

    if arguments.check:
        try:
            budgets = load_budgets(golden_dir=arguments.golden_dir)
        except ReproError as error:
            print(f"FAIL budgets\n{error}", file=sys.stderr)
            budgets = None
        failures = 1 if budgets is None else 0
        total_wall = 0.0
        for outcome in run_scenarios(scenario_names(), jobs=arguments.jobs):
            # Keep checking the remaining scenarios whatever one of them
            # raises (invariant violation, golden drift, blown budget, ...),
            # so CI shows the full per-scenario picture, not the first error.
            total_wall += outcome.wall_seconds or 0.0
            if not outcome.ok:
                failures += 1
                _print_failure(outcome)
                continue
            try:
                assert_dict_matches_golden(
                    outcome.name,
                    json.loads(outcome.report_json),
                    golden_dir=arguments.golden_dir,
                )
                if budgets is not None:
                    check_budget(outcome.name, outcome.simulated_time, budgets)
                    if arguments.enforce_wall_time:
                        check_wall_time(
                            outcome.name, outcome.wall_seconds or 0.0, budgets
                        )
            except ReproError as error:
                failures += 1
                print(f"FAIL {outcome.name}\n{error}", file=sys.stderr)
            else:
                # Wall time is reported (not budgeted): simulated-time budgets
                # are deterministic, wall time is the machine-dependent cost.
                print(
                    f"ok   {outcome.name:28s} sim={outcome.simulated_time:10.3f}s  "
                    f"wall={outcome.wall_seconds:6.2f}s"
                )
        print(f"checked {len(scenario_names())} scenarios in {total_wall:.2f}s wall time")
        return 1 if failures else 0

    if arguments.regen_budgets:
        simulated_times = {}
        wall_times = {}
        for outcome in run_scenarios(scenario_names(), jobs=arguments.jobs):
            if not outcome.ok:
                _print_failure(outcome)
                return 1
            simulated_times[outcome.name] = outcome.simulated_time
            wall_times[outcome.name] = outcome.wall_seconds or 0.0
        path = write_budgets(
            simulated_times, golden_dir=arguments.golden_dir, wall_times=wall_times
        )
        print(f"wrote {path}")
        return 0

    names = arguments.regen_golden or scenario_names()
    for name in names:
        report = runner.run(get_scenario(name))
        path = write_golden(report, golden_dir=arguments.golden_dir)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        sys.exit(2)
