"""``python -m repro.scenarios`` — run scenarios and manage golden metrics.

Examples::

    python -m repro.scenarios --list
    python -m repro.scenarios --run bursty
    python -m repro.scenarios --check
    python -m repro.scenarios --regen-golden
    python -m repro.scenarios --regen-golden uniform mixed-fleet
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.exceptions import ReproError
from repro.scenarios.golden import assert_matches_golden, write_golden
from repro.scenarios.registry import get_scenario, scenario_names
from repro.scenarios.runner import ScenarioRunner


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Run declarative multi-tenant scenarios and manage their "
        "golden-metrics files.",
    )
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--list", action="store_true", help="list registered scenarios")
    group.add_argument(
        "--run", metavar="NAME", help="run one scenario and print its canonical report"
    )
    group.add_argument(
        "--check",
        action="store_true",
        help="run every scenario and diff it against its committed golden",
    )
    group.add_argument(
        "--regen-golden",
        nargs="*",
        metavar="NAME",
        default=None,
        help="regenerate golden files (all scenarios when no names are given)",
    )
    parser.add_argument(
        "--golden-dir",
        type=Path,
        default=None,
        help="override the golden directory (default: tests/golden)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    arguments = build_parser().parse_args(argv)
    runner = ScenarioRunner()

    if arguments.list:
        for name in scenario_names():
            spec = get_scenario(name)
            print(f"{name:28s} {spec.description}")
        return 0

    if arguments.run is not None:
        report = runner.run(get_scenario(arguments.run))
        print(report.to_json(), end="")
        return 0

    if arguments.check:
        failures = 0
        for name in scenario_names():
            # Keep checking the remaining scenarios whatever one of them
            # raises (invariant violation, cache livelock, ...), so CI shows
            # the full per-scenario picture instead of the first error.
            try:
                report = runner.run(get_scenario(name))
                assert_matches_golden(report, golden_dir=arguments.golden_dir)
            except ReproError as error:
                failures += 1
                print(f"FAIL {name}\n{error}", file=sys.stderr)
            else:
                print(f"ok   {name}")
        return 1 if failures else 0

    names = arguments.regen_golden or scenario_names()
    for name in names:
        report = runner.run(get_scenario(name))
        path = write_golden(report, golden_dir=arguments.golden_dir)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        sys.exit(2)
