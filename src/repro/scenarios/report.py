"""Canonical scenario reports.

A :class:`ScenarioReport` condenses one scenario run into the metrics the
regression harness tracks: per-client latency distributions, device switch
counts, cache behaviour and a fairness index.  Serialization is canonical —
keys sorted, floats rounded to a fixed precision — so that two runs of the
same spec produce byte-identical JSON, which is what the golden-metrics
harness diffs against.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.exceptions import ConfigurationError

#: Decimal places kept in serialized floats.  The simulation is exactly
#: deterministic, so this only canonicalises repr noise, not real variance.
FLOAT_PRECISION = 9

#: Version of the serialized report layout.  Bump whenever keys are added,
#: removed or change meaning, and regenerate every golden in the same commit.
#: Version 2 added ``schema_version`` itself, the ``fleet`` section and the
#: ``fleet`` field of the embedded spec.  Version 3 added the ``admission``
#: section (service-façade admission control) and the ``admission`` field of
#: the embedded spec.  Version 4 added the ``rebalance`` section (membership
#: epochs, migration plans, per-epoch imbalance) plus the ``events`` /
#: ``profiles`` fields of the embedded fleet spec; all other metrics are
#: unchanged.  Version 5 added the ``replication`` health section
#: (under-replicated key counts per epoch, repair/re-replication I/O,
#: throttle deferrals and observed rates), the ``repair`` / ``throttle``
#: fields of the embedded fleet spec, the ``replication`` field of epoch
#: records and the ``keys_trimmed`` / ``replicas_trimmed`` fields of
#: migration plans; admission ``fairness_jain`` is now computed only over
#: tenants that actually queued.  Version 6 added the ``routing`` section
#: (replica-choice split, per-device capacity weights / vnode counts /
#: latency EWMAs, the fleet-wide request-latency distribution and the
#: feedback rebalancer's tick log) and the ``weighting`` / ``ewma_alpha`` /
#: ``rebalance`` fields of the embedded fleet spec.
SCHEMA_VERSION = 6


def canonical(value: Any) -> Any:
    """Recursively round floats and normalise containers for serialization.

    Non-finite floats are rejected: ``json.dumps`` would emit bare ``NaN`` /
    ``Infinity`` tokens, which are not JSON and would poison the goldens
    silently.  A NaN anywhere in a report is a metrics bug — fail loudly.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ConfigurationError(
                f"cannot serialize non-finite float {value!r} in a canonical "
                "report; a NaN or infinity here means a metric was computed "
                "from an empty or corrupt sample set"
            )
        rounded = round(value, FLOAT_PRECISION)
        return rounded + 0.0  # normalise -0.0 to 0.0
    if isinstance(value, dict):
        return {str(key): canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    return value


@dataclass
class ClientReport:
    """Latency distribution and request counts of one tenant."""

    mode: str
    start_delay: float
    queries_run: int
    requests: int
    total_time: float
    mean_time: float
    min_time: float
    max_time: float
    p50_time: float
    p95_time: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "start_delay": self.start_delay,
            "queries_run": self.queries_run,
            "requests": self.requests,
            "total_time": self.total_time,
            "mean_time": self.mean_time,
            "min_time": self.min_time,
            "max_time": self.max_time,
            "p50_time": self.p50_time,
            "p95_time": self.p95_time,
        }


@dataclass
class ScenarioReport:
    """Everything one scenario run is measured by."""

    scenario: str
    seed: int
    spec: Dict[str, Any]
    clients: Dict[str, ClientReport]
    device_switches: int
    scheduler_switches: int
    max_waiting_seen: int
    objects_served: int
    total_simulated_time: float
    cumulative_time: float
    mean_time: float
    fairness_jain: float
    breakdown: Dict[str, float]
    cache: Dict[str, float]
    invariants_checked: List[str] = field(default_factory=list)
    #: Fleet-level metrics (per-device utilization, imbalance, failover
    #: counters); ``None`` for single-device scenarios.
    fleet: Optional[Dict[str, Any]] = None
    #: Admission-control metrics (rejected/queued counts, queue-delay
    #: percentiles, per-tenant fairness); ``None`` with admission disabled.
    admission: Optional[Dict[str, Any]] = None
    #: Elastic-fleet metrics (membership epochs, migration plans, interference,
    #: per-epoch imbalance); ``None`` for single-device scenarios.
    rebalance: Optional[Dict[str, Any]] = None
    #: Replication health (under-replicated keys per epoch, repair and
    #: re-replication I/O, throttle behaviour); ``None`` for single-device
    #: scenarios.
    replication: Optional[Dict[str, Any]] = None
    #: Adaptive-routing metrics (replica-choice split, per-device weights
    #: and latency EWMAs, request-latency percentiles, rebalancer tick log);
    #: ``None`` for single-device scenarios.
    routing: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        """Canonical nested-dict form (deterministic for a given run)."""
        return canonical(
            {
                "schema_version": SCHEMA_VERSION,
                "scenario": self.scenario,
                "seed": self.seed,
                "spec": self.spec,
                "clients": {
                    client_id: report.to_dict()
                    for client_id, report in sorted(self.clients.items())
                },
                "cluster": {
                    "device_switches": self.device_switches,
                    "scheduler_switches": self.scheduler_switches,
                    "max_waiting_seen": self.max_waiting_seen,
                    "objects_served": self.objects_served,
                    "total_simulated_time": self.total_simulated_time,
                    "cumulative_time": self.cumulative_time,
                    "mean_time": self.mean_time,
                    "fairness_jain": self.fairness_jain,
                },
                "breakdown": self.breakdown,
                "cache": self.cache,
                "fleet": self.fleet,
                "admission": self.admission,
                "rebalance": self.rebalance,
                "replication": self.replication,
                "routing": self.routing,
                "invariants_checked": sorted(self.invariants_checked),
            }
        )

    def to_json(self) -> str:
        """Byte-identical JSON for identical runs (sorted keys, fixed format)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"
