"""Golden-metrics harness.

Every registered scenario has a committed golden file under
``tests/golden/<name>.json`` holding the canonical report of a blessed run.
The pytest layer re-runs each scenario and diffs the live report against the
golden with numeric tolerances, turning the whole paper reproduction into a
regression-tested scenario suite.

Regenerate goldens after an intentional behaviour change with::

    python -m repro.scenarios --regen-golden

and commit the diff together with the change that caused it.
"""

from __future__ import annotations

import difflib
import json
import math
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.exceptions import GoldenMismatchError
from repro.scenarios.report import ScenarioReport

#: Most unified-diff lines included in a mismatch error before truncation.
MAX_DIFF_LINES = 60

#: Relative tolerance for float comparisons.  The simulator is exactly
#: deterministic, so this only absorbs float-formatting differences across
#: Python versions, not real drift.
DEFAULT_RTOL = 1e-6
DEFAULT_ATOL = 1e-9


def default_golden_dir() -> Path:
    """``tests/golden`` at the repository root (next to ``src/``)."""
    return Path(__file__).resolve().parents[3] / "tests" / "golden"


def golden_path(name: str, golden_dir: Optional[Path] = None) -> Path:
    """Path of the golden file for scenario ``name``."""
    return (golden_dir or default_golden_dir()) / f"{name}.json"


def write_golden(report: ScenarioReport, golden_dir: Optional[Path] = None) -> Path:
    """Serialize ``report`` as the golden file for its scenario."""
    path = golden_path(report.scenario, golden_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(report.to_json())
    return path


def load_golden(name: str, golden_dir: Optional[Path] = None) -> Dict[str, Any]:
    """Load the committed golden metrics for scenario ``name``."""
    path = golden_path(name, golden_dir)
    if not path.exists():
        raise GoldenMismatchError(
            f"no golden file for scenario {name!r} at {path}; run "
            f"'python -m repro.scenarios --regen-golden {name}' and commit it"
        )
    return json.loads(path.read_text())


def diff_values(
    live: Any,
    golden: Any,
    path: str = "$",
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
) -> List[str]:
    """Recursively diff two report trees; return human-readable mismatches.

    Numbers are compared with relative/absolute tolerance, everything else
    exactly.  The returned strings name the JSON path of each divergence so a
    regression points straight at the metric that moved.
    """
    mismatches: List[str] = []
    numeric = (int, float)
    if isinstance(live, bool) or isinstance(golden, bool):
        if live != golden:
            mismatches.append(f"{path}: live={live!r} golden={golden!r}")
    elif isinstance(live, numeric) and isinstance(golden, numeric):
        if not math.isclose(float(live), float(golden), rel_tol=rtol, abs_tol=atol):
            mismatches.append(f"{path}: live={live!r} golden={golden!r}")
    elif isinstance(live, dict) and isinstance(golden, dict):
        for key in sorted(set(live) | set(golden)):
            if key not in live:
                mismatches.append(f"{path}.{key}: missing from live report")
            elif key not in golden:
                mismatches.append(f"{path}.{key}: not present in golden")
            else:
                mismatches.extend(diff_values(live[key], golden[key], f"{path}.{key}", rtol, atol))
    elif isinstance(live, list) and isinstance(golden, list):
        if len(live) != len(golden):
            mismatches.append(f"{path}: length {len(live)} != golden {len(golden)}")
        for index, (live_item, golden_item) in enumerate(zip(live, golden)):
            mismatches.extend(
                diff_values(live_item, golden_item, f"{path}[{index}]", rtol, atol)
            )
    elif live != golden:
        mismatches.append(f"{path}: live={live!r} golden={golden!r}")
    return mismatches


def unified_diff_summary(
    live: Dict[str, Any], golden: Dict[str, Any], name: str, max_lines: int = MAX_DIFF_LINES
) -> str:
    """Canonical-JSON unified diff between a live report and its golden.

    Both sides are re-serialized with the canonical formatting, so the diff
    shows exactly the lines that would change in the committed file.
    """
    golden_lines = json.dumps(golden, sort_keys=True, indent=2).splitlines(keepends=True)
    live_lines = json.dumps(live, sort_keys=True, indent=2).splitlines(keepends=True)
    diff = list(
        difflib.unified_diff(
            golden_lines,
            live_lines,
            fromfile=f"golden/{name}.json",
            tofile=f"live/{name}.json",
            lineterm="\n",
        )
    )
    if len(diff) > max_lines:
        omitted = len(diff) - max_lines
        diff = diff[:max_lines] + [f"... ({omitted} more diff line(s) omitted)\n"]
    return "".join(diff).rstrip("\n")


def assert_matches_golden(
    report: ScenarioReport,
    golden_dir: Optional[Path] = None,
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
) -> None:
    """Raise :class:`GoldenMismatchError` if ``report`` diverges from its golden."""
    assert_dict_matches_golden(
        report.scenario, report.to_dict(), golden_dir=golden_dir, rtol=rtol, atol=atol
    )


def assert_dict_matches_golden(
    name: str,
    live: Dict[str, Any],
    golden_dir: Optional[Path] = None,
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
) -> None:
    """Dict-level variant of :func:`assert_matches_golden`.

    Used by the parallel runner, which ships reports across process
    boundaries as JSON rather than as live :class:`ScenarioReport` objects.
    """
    golden = load_golden(name, golden_dir)
    mismatches = diff_values(live, golden, rtol=rtol, atol=atol)
    if mismatches:
        details = "\n  ".join(mismatches[:20])
        diff_text = unified_diff_summary(live, golden, name)
        raise GoldenMismatchError(
            f"scenario {name!r} diverged from its golden metrics "
            f"({len(mismatches)} mismatch(es)):\n  {details}\n"
            f"Unified diff (golden -> live):\n{diff_text}\n"
            "If the change is intentional, regenerate with "
            f"'python -m repro.scenarios --regen-golden {name}'"
        )
