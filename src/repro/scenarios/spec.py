"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a complete, serializable description of one
multi-tenant experiment: who the tenants are, which queries they run (by
workload-qualified name such as ``"tpch:q12"``), when they arrive, and every
device / layout / scheduler / cache knob.  Specs are pure data — resolving
them into live objects is the :class:`~repro.scenarios.runner.ScenarioRunner`'s
job — so the same spec can be rerun, diffed and stored alongside its golden
metrics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.client import MODE_SKIPPER, MODE_VANILLA
from repro.exceptions import ScenarioError
from repro.fleet.spec import FleetSpec
from repro.scenarios.arrivals import ArrivalPattern, SimultaneousArrival
from repro.service.admission import AdmissionConfig

#: Workload-qualified query names look like ``"tpch:q12"`` or ``"ssb:q1_1"``.
KNOWN_WORKLOADS = ("tpch", "ssb", "mrbench", "nref")

#: Layout policy names resolvable by the runner.
KNOWN_LAYOUTS = (
    "all-in-one",
    "clients-per-group",
    "incremental",
    "round-robin",
    "skewed",
    "tenant-colocated",
)

#: Scheduler policy names resolvable by the runner.
KNOWN_SCHEDULERS = (
    "object-fcfs",
    "slack-fcfs",
    "query-fcfs",
    "max-queries",
    "rank-based",
)


def split_query_ref(reference: str) -> Tuple[str, str]:
    """Split ``"workload:query"`` into its parts, validating the workload."""
    workload, separator, query_name = reference.partition(":")
    if not separator or not workload or not query_name:
        raise ScenarioError(
            f"query references must look like 'workload:query', got {reference!r}"
        )
    if workload not in KNOWN_WORKLOADS:
        raise ScenarioError(
            f"unknown workload {workload!r} in {reference!r}; "
            f"expected one of {sorted(KNOWN_WORKLOADS)}"
        )
    return workload, query_name


@dataclass(frozen=True)
class TenantSpec:
    """One tenant in a scenario: identity, queries and executor knobs."""

    tenant_id: str
    queries: Tuple[str, ...]
    mode: str = MODE_SKIPPER
    repetitions: int = 1
    cache_capacity: int = 30
    enable_pruning: bool = True

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ScenarioError("tenant_id must be non-empty")
        if self.mode not in (MODE_SKIPPER, MODE_VANILLA):
            raise ScenarioError(f"tenant {self.tenant_id!r}: unknown mode {self.mode!r}")
        if not self.queries:
            raise ScenarioError(f"tenant {self.tenant_id!r} has no queries")
        for reference in self.queries:
            split_query_ref(reference)
        if self.repetitions <= 0:
            raise ScenarioError(
                f"tenant {self.tenant_id!r}: repetitions must be positive, "
                f"got {self.repetitions}"
            )
        if self.cache_capacity <= 0:
            raise ScenarioError(
                f"tenant {self.tenant_id!r}: cache_capacity must be positive, "
                f"got {self.cache_capacity}"
            )

    def workloads(self) -> List[str]:
        """Distinct workloads referenced by this tenant (stable order)."""
        seen: List[str] = []
        for reference in self.queries:
            workload, _query = split_query_ref(reference)
            if workload not in seen:
                seen.append(workload)
        return seen

    def to_dict(self) -> Dict[str, object]:
        return {
            "tenant_id": self.tenant_id,
            "queries": list(self.queries),
            "mode": self.mode,
            "repetitions": self.repetitions,
            "cache_capacity": self.cache_capacity,
            "enable_pruning": self.enable_pruning,
        }


@dataclass(frozen=True)
class ScenarioSpec:
    """A fully declarative multi-tenant experiment."""

    name: str
    description: str
    tenants: Tuple[TenantSpec, ...]
    arrival: ArrivalPattern = field(default_factory=SimultaneousArrival)
    scale: str = "tiny"
    seed: int = 42
    layout: str = "clients-per-group"
    #: Meaning depends on the layout: clients per group ("clients-per-group"),
    #: number of groups ("round-robin"), or the per-group client counts
    #: ("skewed").  Ignored by "all-in-one" and "incremental".
    layout_param: Optional[Tuple[int, ...]] = None
    scheduler: str = "rank-based"
    #: Fairness constant K of the rank-based policy / slack of slack-FCFS.
    scheduler_param: Optional[float] = None
    switch_seconds: float = 10.0
    transfer_seconds: float = 9.6
    concurrent_transfers: bool = False
    #: When set, the scenario runs against a sharded multi-device fleet
    #: (placement, replication lifecycle — R changes, read-repair, throttled
    #: rebalance I/O — and optional mid-run device failures) instead of the
    #: single shared CSD.
    fleet: Optional[FleetSpec] = None
    #: When set, queries pass through the service façade's admission
    #: controller (in-flight caps, bounded queue, typed rejections).  ``None``
    #: disables admission and reproduces the legacy batch behaviour exactly.
    admission: Optional[AdmissionConfig] = None
    #: When true, the service records an end-to-end trace of the run
    #: (admission → routing → device → operators) exportable with
    #: ``--trace``.  Off by default; the untraced event sequence — and hence
    #: every golden report — is unaffected either way.
    trace: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("scenario name must be non-empty")
        if not self.tenants:
            raise ScenarioError(f"scenario {self.name!r} has no tenants")
        tenant_ids = [tenant.tenant_id for tenant in self.tenants]
        if len(set(tenant_ids)) != len(tenant_ids):
            raise ScenarioError(f"scenario {self.name!r}: tenant ids must be unique")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool) or self.seed <= 0:
            raise ScenarioError(
                f"scenario {self.name!r}: seed must be a positive integer, got {self.seed!r}"
            )
        if self.layout not in KNOWN_LAYOUTS:
            raise ScenarioError(
                f"scenario {self.name!r}: unknown layout {self.layout!r}; "
                f"expected one of {sorted(KNOWN_LAYOUTS)}"
            )
        if self.scheduler not in KNOWN_SCHEDULERS:
            raise ScenarioError(
                f"scenario {self.name!r}: unknown scheduler {self.scheduler!r}; "
                f"expected one of {sorted(KNOWN_SCHEDULERS)}"
            )
        for label, value in (
            ("switch_seconds", self.switch_seconds),
            ("transfer_seconds", self.transfer_seconds),
        ):
            if not math.isfinite(value) or value < 0:
                raise ScenarioError(
                    f"scenario {self.name!r}: {label} must be finite and "
                    f"non-negative, got {value!r}"
                )
        if self.layout_param is not None:
            if not self.layout_param or any(
                not isinstance(part, int) or part <= 0 for part in self.layout_param
            ):
                raise ScenarioError(
                    f"scenario {self.name!r}: layout_param must be a tuple of "
                    f"positive integers, got {self.layout_param!r}"
                )
        if self.fleet is not None and not isinstance(self.fleet, FleetSpec):
            raise ScenarioError(
                f"scenario {self.name!r}: fleet must be a FleetSpec or None, "
                f"got {self.fleet!r}"
            )
        if self.admission is not None and not isinstance(self.admission, AdmissionConfig):
            raise ScenarioError(
                f"scenario {self.name!r}: admission must be an AdmissionConfig "
                f"or None, got {self.admission!r}"
            )
        if not isinstance(self.trace, bool):
            raise ScenarioError(
                f"scenario {self.name!r}: trace must be a bool, got {self.trace!r}"
            )
        if self.scheduler_param is not None and (
            not math.isfinite(self.scheduler_param) or self.scheduler_param < 0
        ):
            raise ScenarioError(
                f"scenario {self.name!r}: scheduler_param must be finite and "
                f"non-negative, got {self.scheduler_param!r}"
            )
        if (
            self.scheduler == "slack-fcfs"
            and self.scheduler_param is not None
            and (self.scheduler_param != int(self.scheduler_param) or self.scheduler_param < 1)
        ):
            raise ScenarioError(
                f"scenario {self.name!r}: slack-fcfs scheduler_param is a slack "
                f"count and must be an integer >= 1, got {self.scheduler_param!r}"
            )

    def workloads(self) -> List[str]:
        """Distinct workloads referenced by any tenant (stable order)."""
        seen: List[str] = []
        for tenant in self.tenants:
            for workload in tenant.workloads():
                if workload not in seen:
                    seen.append(workload)
        return seen

    def to_dict(self) -> Dict[str, object]:
        """Serializable description of the spec (embedded in reports).

        ``trace`` is only emitted when enabled, so the reports (and goldens)
        of untraced runs are byte-identical to the pre-tracing schema.
        """
        document: Dict[str, object] = {
            "name": self.name,
            "description": self.description,
            "tenants": [tenant.to_dict() for tenant in self.tenants],
            "arrival": self.arrival.to_dict(),
            "scale": self.scale,
            "seed": self.seed,
            "layout": self.layout,
            "layout_param": list(self.layout_param) if self.layout_param else None,
            "scheduler": self.scheduler,
            "scheduler_param": self.scheduler_param,
            "switch_seconds": self.switch_seconds,
            "transfer_seconds": self.transfer_seconds,
            "concurrent_transfers": self.concurrent_transfers,
            "fleet": self.fleet.to_dict() if self.fleet is not None else None,
            "admission": self.admission.to_dict() if self.admission is not None else None,
        }
        if self.trace:
            document["trace"] = True
        return document


def uniform_tenants(
    count: int,
    query: str,
    mode: str = MODE_SKIPPER,
    repetitions: int = 1,
    cache_capacity: int = 30,
    prefix: str = "tenant",
) -> Tuple[TenantSpec, ...]:
    """Convenience builder: ``count`` identical tenants running ``query``."""
    if count <= 0:
        raise ScenarioError(f"tenant count must be positive, got {count!r}")
    return tuple(
        TenantSpec(
            tenant_id=f"{prefix}{index}",
            queries=(query,),
            mode=mode,
            repetitions=repetitions,
            cache_capacity=cache_capacity,
        )
        for index in range(count)
    )
