"""Scenario engine: declarative multi-tenant experiments with golden metrics.

This package turns the paper reproduction into a regression-tested scenario
suite:

* :mod:`repro.scenarios.spec` — declarative :class:`ScenarioSpec` /
  :class:`TenantSpec` (tenants, workload mix, device/layout/scheduler/cache
  knobs, RNG seed).
* :mod:`repro.scenarios.arrivals` — deterministic tenant arrival patterns.
* :mod:`repro.scenarios.registry` — named, ready-made scenarios.
* :mod:`repro.scenarios.runner` — :class:`ScenarioRunner` executing specs
  through the :class:`~repro.cluster.cluster.Cluster` layers.
* :mod:`repro.scenarios.invariants` — cross-cutting checks every run must
  pass (conservation, bounded starvation, monotone clock, cache bounds).
* :mod:`repro.scenarios.golden` — golden-metrics serialization and diffing.

Command line::

    python -m repro.scenarios --list
    python -m repro.scenarios --run bursty
    python -m repro.scenarios --regen-golden
"""

from repro.scenarios.arrivals import (
    ArrivalPattern,
    BurstyArrival,
    PoissonArrival,
    SimultaneousArrival,
    UniformArrival,
)
from repro.scenarios.golden import (
    assert_matches_golden,
    diff_values,
    golden_path,
    load_golden,
    write_golden,
)
from repro.scenarios.invariants import check_invariants, starvation_bound
from repro.scenarios.registry import (
    all_scenarios,
    get_scenario,
    register,
    scenario_names,
)
from repro.scenarios.report import ClientReport, ScenarioReport
from repro.scenarios.runner import ScenarioRunner
from repro.scenarios.spec import ScenarioSpec, TenantSpec, uniform_tenants

__all__ = [
    "ArrivalPattern",
    "BurstyArrival",
    "ClientReport",
    "PoissonArrival",
    "ScenarioReport",
    "ScenarioRunner",
    "ScenarioSpec",
    "SimultaneousArrival",
    "TenantSpec",
    "UniformArrival",
    "all_scenarios",
    "assert_matches_golden",
    "check_invariants",
    "diff_values",
    "get_scenario",
    "golden_path",
    "load_golden",
    "register",
    "scenario_names",
    "starvation_bound",
    "uniform_tenants",
    "write_golden",
]
