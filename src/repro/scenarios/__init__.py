"""Scenario engine: declarative multi-tenant experiments with golden metrics.

This package turns the paper reproduction into a regression-tested scenario
suite:

* :mod:`repro.scenarios.spec` — declarative :class:`ScenarioSpec` /
  :class:`TenantSpec` (tenants, workload mix, device/layout/scheduler/cache
  knobs, RNG seed).
* :mod:`repro.scenarios.arrivals` — deterministic tenant arrival patterns.
* :mod:`repro.scenarios.registry` — named, ready-made scenarios.
* :mod:`repro.scenarios.runner` — :class:`ScenarioRunner` executing specs
  through the :class:`~repro.service.service.StorageService` façade.
* :mod:`repro.scenarios.invariants` — cross-cutting checks every run must
  pass (conservation, bounded starvation, monotone clock, cache bounds).
* :mod:`repro.scenarios.golden` — golden-metrics serialization and diffing.
* :mod:`repro.scenarios.budgets` — committed per-scenario perf budgets.
* :mod:`repro.scenarios.parallel` — deterministic multi-process execution.

Fleet scenarios declare a :class:`~repro.fleet.spec.FleetSpec` on their spec
and run against a sharded multi-device fleet (see :mod:`repro.fleet`).

Command line::

    python -m repro.scenarios --list
    python -m repro.scenarios --run bursty
    python -m repro.scenarios --run-all --jobs 4
    python -m repro.scenarios --check --jobs 4
    python -m repro.scenarios --regen-golden
    python -m repro.scenarios --regen-budgets
"""

from repro.scenarios.arrivals import (
    ArrivalPattern,
    BurstyArrival,
    PoissonArrival,
    SimultaneousArrival,
    UniformArrival,
)
from repro.scenarios.budgets import check_budget, load_budgets, write_budgets
from repro.scenarios.golden import (
    assert_dict_matches_golden,
    assert_matches_golden,
    diff_values,
    golden_path,
    load_golden,
    unified_diff_summary,
    write_golden,
)
from repro.scenarios.parallel import ScenarioOutcome, run_scenarios
from repro.scenarios.invariants import check_invariants, starvation_bound
from repro.scenarios.registry import (
    all_scenarios,
    get_scenario,
    register,
    scenario_names,
)
from repro.scenarios.report import ClientReport, ScenarioReport
from repro.scenarios.runner import ScenarioRunner
from repro.scenarios.spec import ScenarioSpec, TenantSpec, uniform_tenants

__all__ = [
    "ArrivalPattern",
    "BurstyArrival",
    "ClientReport",
    "PoissonArrival",
    "ScenarioOutcome",
    "ScenarioReport",
    "ScenarioRunner",
    "ScenarioSpec",
    "SimultaneousArrival",
    "TenantSpec",
    "UniformArrival",
    "all_scenarios",
    "assert_dict_matches_golden",
    "assert_matches_golden",
    "check_budget",
    "check_invariants",
    "diff_values",
    "get_scenario",
    "golden_path",
    "load_budgets",
    "load_golden",
    "register",
    "run_scenarios",
    "scenario_names",
    "starvation_bound",
    "unified_diff_summary",
    "uniform_tenants",
    "write_budgets",
    "write_golden",
]
