"""Command-line entry point: ``python -m repro.analysis [paths] [options]``.

Exit status: 0 when no unsuppressed finding remains (warnings allowed unless
``--strict``), 1 when findings fail the run, 2 on usage errors.  CI runs
``python -m repro.analysis src tests --strict`` and uploads the ``--output``
JSON document as an artifact.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.config import DEFAULT_CONFIG, AnalysisConfig
from repro.analysis.engine import (
    MALFORMED_SUPPRESSION,
    PARSE_ERROR,
    AnalysisError,
    Finding,
    analyze_source,
    discover_files,
)
from repro.analysis.reporting import (
    build_document,
    count_findings,
    format_json,
    format_text,
    list_rules_text,
)
from repro.analysis.rules import build_rules, rules_by_code


def analyze_paths(
    paths: Sequence[Path],
    root: Path,
    config: AnalysisConfig = DEFAULT_CONFIG,
) -> tuple[List[Finding], int]:
    """Analyse every .py file under ``paths``; returns (findings, files)."""
    known_codes = sorted(rules_by_code()) + [MALFORMED_SUPPRESSION, PARSE_ERROR]
    findings: List[Finding] = []
    files = discover_files([Path(path) for path in paths])
    for file_path in files:
        try:
            rel_path = file_path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError as error:
            raise AnalysisError(
                f"{file_path} is outside the analysis root {root}; pass "
                "--rootdir to anchor rule scoping"
            ) from error
        active_rules = [
            rule
            for rule in build_rules()
            if config.rule_active(rule.code, rel_path)
        ]
        findings.extend(
            analyze_source(
                file_path.read_text(encoding="utf-8"),
                rel_path,
                active_rules,
                known_codes=known_codes,
            )
        )
    return sorted(findings, key=lambda finding: finding.sort_key), len(files)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism & safety static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyse (default: src)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on any unsuppressed finding, warnings included",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format printed to stdout (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="also write the JSON findings document to FILE (CI artifact)",
    )
    parser.add_argument(
        "--rootdir",
        metavar="DIR",
        default=".",
        help="repo root that rule-scoping patterns are relative to "
        "(default: current directory)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed findings in the text report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        sys.stdout.write(list_rules_text())
        return 0

    root = Path(args.rootdir)
    try:
        findings, files_scanned = analyze_paths(
            [Path(path) for path in args.paths], root
        )
    except (AnalysisError, OSError) as error:
        sys.stderr.write(f"repro.analysis: {error}\n")
        return 2

    document = build_document(
        findings,
        paths=[str(path) for path in args.paths],
        files_scanned=files_scanned,
        strict=args.strict,
    )
    if args.format == "json":
        sys.stdout.write(format_json(document))
    else:
        sys.stdout.write(
            format_text(findings, files_scanned, show_suppressed=args.show_suppressed)
        )
    if args.output is not None:
        Path(args.output).write_text(format_json(document), encoding="utf-8")

    counts = count_findings(findings)
    failed = counts["active"] if args.strict else counts["errors"]
    return 1 if failed else 0
