"""Closed-form performance models from the paper."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


def vanilla_execution_time(
    switch_seconds: float,
    num_clients: int,
    num_segments: int,
    transfer_seconds_per_object: float = 0.0,
    processing_seconds: float = 0.0,
) -> float:
    """Section 3.2: pull-based execution time ≈ ``S × C × D``.

    Each of the ``D`` segments a client pulls is separated from its next
    request by one group switch and one transfer per concurrent client, so
    the client observes ``D × C × (S + T)`` of waiting plus its own CPU work.
    """
    _validate_positive(num_clients=num_clients, num_segments=num_segments)
    _validate_non_negative(
        switch_seconds=switch_seconds,
        transfer_seconds_per_object=transfer_seconds_per_object,
        processing_seconds=processing_seconds,
    )
    per_object_round = num_clients * (switch_seconds + transfer_seconds_per_object)
    return num_segments * per_object_round + processing_seconds


def skipper_waiting_time(
    switch_seconds: float,
    client_position: int,
    num_segments: int,
    transfer_seconds_per_object: float,
) -> float:
    """Section 5.2.1: waiting time of the ``k``-th Skipper client.

    The CSD serves tenants group by group, so the client whose group is
    loaded ``k``-th waits for ``k − 1`` full group services, each costing the
    data transfer of one tenant (``D/B``) plus one group switch.
    ``client_position`` is 1-based.
    """
    if client_position < 1:
        raise ConfigurationError("client_position is 1-based and must be >= 1")
    _validate_positive(num_segments=num_segments)
    _validate_non_negative(
        switch_seconds=switch_seconds, transfer_seconds_per_object=transfer_seconds_per_object
    )
    group_service = num_segments * transfer_seconds_per_object + switch_seconds
    return (client_position - 1) * group_service


def skipper_average_execution_time(
    switch_seconds: float,
    num_clients: int,
    num_segments: int,
    transfer_seconds_per_object: float,
    processing_seconds: float = 0.0,
) -> float:
    """Average over all client positions of waiting + own transfer + CPU."""
    _validate_positive(num_clients=num_clients, num_segments=num_segments)
    waits = [
        skipper_waiting_time(switch_seconds, position, num_segments, transfer_seconds_per_object)
        for position in range(1, num_clients + 1)
    ]
    own_service = num_segments * transfer_seconds_per_object + switch_seconds
    return sum(waits) / num_clients + own_service + processing_seconds


def mjoin_expected_cycles(num_relations: int, segments_per_relation: int, cache_objects: int) -> float:
    """Section 5.2.4: number of request cycles ≈ ``(R × S / C)^(R−1)``.

    ``R`` relations of ``S`` segments each joined with a cache of ``C``
    objects; with a round-robin delivery the cache is split evenly across the
    relations and every batch of ``C`` objects evaluates ``(C/R)^R`` subplans.
    The estimate degenerates to 1 cycle when the cache holds all but one
    relation (the hash-join regime).
    """
    _validate_positive(
        num_relations=num_relations,
        segments_per_relation=segments_per_relation,
        cache_objects=cache_objects,
    )
    if cache_objects < num_relations:
        raise ConfigurationError(
            "the cache must hold at least one object per joined relation"
        )
    if cache_objects >= (num_relations - 1) * segments_per_relation:
        return 1.0
    ratio = (num_relations * segments_per_relation) / cache_objects
    return ratio ** (num_relations - 1)


def mjoin_expected_requests(
    num_relations: int, segments_per_relation: int, cache_objects: int
) -> float:
    """Total object requests implied by :func:`mjoin_expected_cycles`.

    The first cycle requests every object once; each further cycle re-fetches
    at most the objects that do not fit in the cache.
    """
    cycles = mjoin_expected_cycles(num_relations, segments_per_relation, cache_objects)
    total_objects = num_relations * segments_per_relation
    refetch_per_cycle = max(0, total_objects - cache_objects)
    return total_objects + (cycles - 1) * refetch_per_cycle


def rank_fairness_bound(arrival_gap_switches: int) -> float:
    """Section 4.4: the fairness constant must satisfy ``K ≤ 1 / s``.

    ``s`` is the number of group switches between the arrivals of two query
    sets; ``K = 1`` (the paper's choice, obtained for ``s = 1``) maximises
    fairness while still preferring longer queues whenever they differ by
    more than the accumulated waiting time.
    """
    if arrival_gap_switches < 1:
        raise ConfigurationError("the arrival gap must be at least one switch")
    return 1.0 / arrival_gap_switches


@dataclass
class AnalyticalModel:
    """Bundles the paper's formulas for one experimental configuration."""

    switch_seconds: float = 10.0
    transfer_seconds_per_object: float = 9.6
    num_clients: int = 5
    num_segments: int = 57
    processing_seconds: float = 0.0

    def vanilla_time(self) -> float:
        """Expected pull-based execution time on the shared CSD."""
        return vanilla_execution_time(
            self.switch_seconds,
            self.num_clients,
            self.num_segments,
            self.transfer_seconds_per_object,
            self.processing_seconds,
        )

    def skipper_time(self) -> float:
        """Expected average Skipper execution time on the shared CSD."""
        return skipper_average_execution_time(
            self.switch_seconds,
            self.num_clients,
            self.num_segments,
            self.transfer_seconds_per_object,
            self.processing_seconds,
        )

    def speedup(self) -> float:
        """Expected Skipper speed-up over the vanilla engine."""
        return self.vanilla_time() / self.skipper_time()

    def latency_sensitivity(self, switch_seconds: float) -> float:
        """Vanilla slowdown when the switch latency changes to ``switch_seconds``."""
        baseline = self.vanilla_time()
        changed = vanilla_execution_time(
            switch_seconds,
            self.num_clients,
            self.num_segments,
            self.transfer_seconds_per_object,
            self.processing_seconds,
        )
        return changed / baseline


def _validate_positive(**values: float) -> None:
    for name, value in values.items():
        if value <= 0:
            raise ConfigurationError(f"{name} must be positive, got {value}")


def _validate_non_negative(**values: float) -> None:
    for name, value in values.items():
        if value < 0:
            raise ConfigurationError(f"{name} must be non-negative, got {value}")
