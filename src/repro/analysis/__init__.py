"""Analytical models from the paper.

Alongside measurements, the paper derives closed-form expressions for the
behaviour of both systems:

* vanilla pull-based execution on a shared CSD costs roughly
  ``S × C × D`` (switch latency × clients × data segments) — Section 3.2;
* a Skipper client's waiting time is roughly ``(C − 1) × (D/B + S)`` because
  the CSD serves tenants group by group — Section 5.2.1;
* MJoin under a cache of ``C_objects`` needs about ``(R × S / C_objects)^(R−1)``
  request cycles for ``R`` relations of ``S`` segments each — Section 5.2.4;
* the rank-based scheduler's fairness constant must satisfy ``K ≤ 1/s`` to
  favour efficiency and ``K = 1`` to maximise fairness — Section 4.4.

:mod:`repro.analysis.model` implements these formulas so that the simulator
can be validated against them (see ``tests/test_analysis.py`` and
``benchmarks/bench_analysis_validation.py``).
"""

from repro.analysis.model import (
    AnalyticalModel,
    mjoin_expected_cycles,
    rank_fairness_bound,
    skipper_waiting_time,
    vanilla_execution_time,
)

__all__ = [
    "AnalyticalModel",
    "mjoin_expected_cycles",
    "rank_fairness_bound",
    "skipper_waiting_time",
    "vanilla_execution_time",
]
