"""Analytical models from the paper.

Alongside measurements, the paper derives closed-form expressions for the
behaviour of both systems:

* vanilla pull-based execution on a shared CSD costs roughly
  ``S × C × D`` (switch latency × clients × data segments) — Section 3.2;
* a Skipper client's waiting time is roughly ``(C − 1) × (D/B + S)`` because
  the CSD serves tenants group by group — Section 5.2.1;
* MJoin under a cache of ``C_objects`` needs about ``(R × S / C_objects)^(R−1)``
  request cycles for ``R`` relations of ``S`` segments each — Section 5.2.4;
* the rank-based scheduler's fairness constant must satisfy ``K ≤ 1/s`` to
  favour efficiency and ``K = 1`` to maximise fairness — Section 4.4.

:mod:`repro.analysis.model` implements these formulas so that the simulator
can be validated against them (see ``tests/test_analysis.py`` and
``benchmarks/bench_analysis_validation.py``).

The package also houses the repo's *static*-analysis suite — an AST-based
rule engine (:mod:`repro.analysis.engine`) with determinism and
simulation-safety rule packs (:mod:`repro.analysis.rules`), run as
``python -m repro.analysis [paths] [--strict] [--format json|text]`` and
gated in CI.  See the README "Static analysis & typing" section for the
rule table and the ``# repro: noqa[RPRnnn] reason=...`` policy.
"""

from repro.analysis.config import DEFAULT_CONFIG, AnalysisConfig, RuleScope
from repro.analysis.engine import AnalysisError, Finding, Rule, analyze_source
from repro.analysis.model import (
    AnalyticalModel,
    mjoin_expected_cycles,
    rank_fairness_bound,
    skipper_waiting_time,
    vanilla_execution_time,
)
from repro.analysis.rules import ALL_RULES, build_rules

__all__ = [
    "ALL_RULES",
    "AnalysisConfig",
    "AnalysisError",
    "AnalyticalModel",
    "DEFAULT_CONFIG",
    "Finding",
    "Rule",
    "RuleScope",
    "analyze_source",
    "build_rules",
    "mjoin_expected_cycles",
    "rank_fairness_bound",
    "skipper_waiting_time",
    "vanilla_execution_time",
]
