"""Per-directory rule scoping for the static-analysis suite.

Rules default to active everywhere.  A :class:`RuleScope` narrows a rule to
``include`` patterns (active *only* under those paths) and/or carves out
``exclude`` patterns — both are :mod:`fnmatch` globs matched against the
repo-relative POSIX path of the analysed file, so ``src/repro/fleet/*``
matches arbitrarily deep files under that package.

:data:`DEFAULT_CONFIG` encodes the repo policy:

* wall-clock reads (RPR002) are the *job* of the bench harness and of the
  wall-time budget measurement in the parallel scenario runner, so those
  files are excluded rather than littered with suppressions;
* the builtin-``hash()`` guard (RPR004) only bites where ``PYTHONHASHSEED``
  could bend goldens — placement, routing and device-layout code;
* float-time equality (RPR101) and the exception-taxonomy rule (RPR104)
  apply to library code only: tests pin exact golden floats on purpose and
  raise builtin exceptions freely in fixtures.

Deliberate one-off violations inside scoped code use inline
``# repro: noqa[RPRnnn] reason=...`` comments instead (see README).
"""

from __future__ import annotations

from fnmatch import fnmatch
from typing import Dict, Mapping, Tuple

from repro.exceptions import ConfigurationError


class RuleScope:
    """Where one rule applies; empty include/exclude means "everywhere"."""

    __slots__ = ("include", "exclude", "reason")

    def __init__(
        self,
        include: Tuple[str, ...] = (),
        exclude: Tuple[str, ...] = (),
        reason: str = "",
    ) -> None:
        self.include = tuple(include)
        self.exclude = tuple(exclude)
        self.reason = reason

    def applies_to(self, rel_path: str) -> bool:
        if self.include and not any(fnmatch(rel_path, pat) for pat in self.include):
            return False
        return not any(fnmatch(rel_path, pat) for pat in self.exclude)

    def to_dict(self) -> Dict[str, object]:
        return {
            "include": list(self.include),
            "exclude": list(self.exclude),
            "reason": self.reason,
        }


class AnalysisConfig:
    """Maps rule codes to their :class:`RuleScope`."""

    def __init__(self, scopes: Mapping[str, RuleScope]) -> None:
        for code, scope in scopes.items():
            if not isinstance(scope, RuleScope):
                raise ConfigurationError(
                    f"scope for rule {code!r} must be a RuleScope, got {scope!r}"
                )
        self._scopes = dict(scopes)

    def scope(self, code: str) -> RuleScope:
        return self._scopes.get(code, _EVERYWHERE)

    def rule_active(self, code: str, rel_path: str) -> bool:
        return self.scope(code).applies_to(rel_path)

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        return {code: self._scopes[code].to_dict() for code in sorted(self._scopes)}


_EVERYWHERE = RuleScope()

DEFAULT_CONFIG = AnalysisConfig(
    {
        "RPR002": RuleScope(
            exclude=(
                "src/repro/bench/*",
                "src/repro/scenarios/parallel.py",
                "benchmarks/*",
            ),
            reason="measuring wall-clock time is these modules' purpose "
            "(bench harness, wall-time budgets); simulated logic must "
            "never read the host clock",
        ),
        "RPR004": RuleScope(
            include=(
                "src/repro/fleet/*",
                "src/repro/csd/*",
                "src/repro/cluster/*",
            ),
            reason="PYTHONHASHSEED-dependent hash() only corrupts goldens "
            "on placement/routing/layout paths; engine-internal __hash__ "
            "implementations are process-local",
        ),
        "RPR101": RuleScope(
            include=("src/repro/*",),
            reason="golden tests assert exact metric floats on purpose",
        ),
        "RPR104": RuleScope(
            include=("src/repro/*",),
            reason="the ReproError taxonomy binds library code; tests and "
            "examples raise builtin exceptions in fixtures",
        ),
        "RPR105": RuleScope(
            exclude=("src/repro/scenarios/parallel.py",),
            reason="the parallel runner legitimately talks to worker "
            "processes; everything else must stay simulation-driven",
        ),
    }
)
