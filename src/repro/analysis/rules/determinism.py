"""Determinism rules: nondeterminism hazards that would corrupt goldens.

The regression net of this reproduction is byte-equality — 26 golden
scenario reports, serial == ``--jobs N`` trace equality, committed perf
budgets.  Each rule here targets one way Python lets nondeterminism leak
into an otherwise deterministic simulation: unordered collection iteration,
the host wall clock, the process-seeded ``random`` module, the
``PYTHONHASHSEED``-randomised builtin ``hash()`` and unsorted directory
listings.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.analysis.engine import FileContext, Rule

_SET_METHODS = ("difference", "intersection", "symmetric_difference", "union")

#: Wall-clock reads.  ``datetime`` *construction/conversion* (``date
#: .fromisoformat`` etc.) is fine — only "what time is it now" calls are
#: nondeterministic across runs.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_LISTING_CALLS = frozenset(
    {"os.listdir", "os.scandir", "os.walk", "glob.glob", "glob.iglob"}
)
_LISTING_METHODS = frozenset({"iterdir", "rglob"})


class UnorderedSetIteration(Rule):
    """RPR001: iterating a ``set`` feeds its arbitrary order downstream.

    ``set`` iteration order depends on insertion history and hash seeds of
    the *values*; folding it into scheduling, report assembly or placement
    makes event order run-dependent.  The fix is ``sorted(...)`` (or an
    ordered container).  Tracked set values: set displays/comprehensions,
    ``set()``/``frozenset()`` calls, set-algebra results and local names
    assigned from any of those.
    """

    code = "RPR001"
    name = "unordered-set-iteration"
    summary = "iteration over an unordered set; wrap in sorted(...)"

    def start_file(self, ctx: FileContext) -> None:
        self._scopes: List[Dict[str, bool]] = [{}]

    # ---- local "is this name a set" inference ---------------------- #
    def _is_set_expr(self, node: ast.AST, ctx: FileContext) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if ctx.is_builtin_ref(node.func, "set") or ctx.is_builtin_ref(
                node.func, "frozenset"
            ):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_METHODS
                and self._is_set_expr(node.func.value, ctx)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_set_expr(node.left, ctx) or self._is_set_expr(
                node.right, ctx
            )
        if isinstance(node, ast.Name):
            for scope in reversed(self._scopes):
                if node.id in scope:
                    return scope[node.id]
        return False

    def _annotation_is_set(self, annotation: Optional[ast.AST]) -> bool:
        target = annotation
        if isinstance(target, ast.Subscript):
            target = target.value
        return isinstance(target, ast.Name) and target.id in (
            "set",
            "frozenset",
            "Set",
            "FrozenSet",
            "MutableSet",
        )

    # ---- scope tracking -------------------------------------------- #
    def visit_FunctionDef(self, node: ast.FunctionDef, ctx: FileContext) -> None:
        scope: Dict[str, bool] = {}
        annotated = list(node.args.args) + list(node.args.kwonlyargs)
        for arg in annotated:
            if self._annotation_is_set(arg.annotation):
                scope[arg.arg] = True
        self._scopes.append(scope)

    def leave_FunctionDef(self, node: ast.FunctionDef, ctx: FileContext) -> None:
        self._scopes.pop()

    visit_AsyncFunctionDef = visit_FunctionDef
    leave_AsyncFunctionDef = leave_FunctionDef

    def visit_Assign(self, node: ast.Assign, ctx: FileContext) -> None:
        is_set = self._is_set_expr(node.value, ctx)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._scopes[-1][target.id] = is_set

    def visit_AnnAssign(self, node: ast.AnnAssign, ctx: FileContext) -> None:
        if isinstance(node.target, ast.Name):
            self._scopes[-1][node.target.id] = self._annotation_is_set(
                node.annotation
            ) or (node.value is not None and self._is_set_expr(node.value, ctx))

    # ---- the actual checks ----------------------------------------- #
    def _flag(self, node: ast.AST, ctx: FileContext, how: str) -> None:
        ctx.report(
            self,
            node,
            f"{how} iterates a set in unordered form; wrap it in sorted(...) "
            "or use an order-preserving container",
        )

    def visit_For(self, node: ast.For, ctx: FileContext) -> None:
        if self._is_set_expr(node.iter, ctx):
            self._flag(node.iter, ctx, "for-loop")

    visit_AsyncFor = visit_For

    def visit_comprehension(self, node: ast.comprehension, ctx: FileContext) -> None:
        if self._is_set_expr(node.iter, ctx):
            self._flag(node.iter, ctx, "comprehension")

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        for builtin in ("list", "tuple", "enumerate", "iter"):
            if ctx.is_builtin_ref(node.func, builtin):
                if node.args and self._is_set_expr(node.args[0], ctx):
                    self._flag(node.args[0], ctx, f"{builtin}() materialisation")
                return


class WallClockCall(Rule):
    """RPR002: the host wall clock read inside simulated logic.

    Every timestamp in the simulation comes from ``env.now``; a wall-clock
    read woven into scheduling or reporting varies run to run and breaks
    byte-identical goldens.  Scoped out (config.py) for the bench harness
    and wall-time budget measurement, whose entire purpose is real time.
    """

    code = "RPR002"
    name = "wall-clock-call"
    summary = "wall-clock read (time.time & co.); use the simulated clock"

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        target = ctx.call_target(node)
        if target in _WALL_CLOCK_CALLS:
            ctx.report(
                self,
                node,
                f"{target}() reads the host wall clock; simulated code must "
                "take its time from Environment.now",
            )


class UnseededRandomCall(Rule):
    """RPR003: module-level ``random.*`` draws from the process-global RNG.

    The global generator is shared across the whole process (parallel
    scenario workers included) and seeded per interpreter; only explicit
    ``random.Random(seed)`` instances give reproducible streams.
    """

    code = "RPR003"
    name = "unseeded-random-call"
    summary = "module-level random.* call; use a seeded random.Random"

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        target = ctx.call_target(node)
        if target is None or not target.startswith("random."):
            return
        if target == "random.Random":
            return  # constructing a seeded instance is the sanctioned pattern
        ctx.report(
            self,
            node,
            f"{target}() uses the process-global RNG; draw from a "
            "random.Random(seed) instance owned by the spec",
        )


class BuiltinHashInPlacement(Rule):
    """RPR004: builtin ``hash()`` on placement/routing paths.

    String hashing is randomised per process via ``PYTHONHASHSEED``; a
    placement or routing decision derived from it changes between runs and
    between parallel workers.  Use :func:`repro.fleet.placement.stable_hash`
    (sha256-based) instead.  ``__hash__`` implementations are exempt —
    they only feed process-local dict/set buckets.
    """

    code = "RPR004"
    name = "builtin-hash-in-placement"
    summary = "builtin hash() on a placement/routing path; use stable_hash"

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if not ctx.is_builtin_ref(node.func, "hash"):
            return
        current = ctx.current_function()
        if current is not None and getattr(current, "name", "") == "__hash__":
            return
        ctx.report(
            self,
            node,
            "builtin hash() is PYTHONHASHSEED-randomised across processes; "
            "use repro.fleet.placement.stable_hash for placement decisions",
        )


class UnsortedDirectoryListing(Rule):
    """RPR005: directory listings without ``sorted(...)``.

    ``os.listdir`` and friends return entries in filesystem order, which
    differs between machines and runs; any listing that feeds scenario
    discovery or report assembly must be sorted first.
    """

    code = "RPR005"
    name = "unsorted-directory-listing"
    summary = "os.listdir/glob/iterdir result used without sorted(...)"

    def _inside_sorted(self, node: ast.Call, ctx: FileContext) -> bool:
        parent = ctx.parent()
        return (
            isinstance(parent, ast.Call)
            and ctx.is_builtin_ref(parent.func, "sorted")
            and node in parent.args
        )

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        target = ctx.call_target(node)
        is_listing = target in _LISTING_CALLS or (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _LISTING_METHODS
        )
        if not is_listing or self._inside_sorted(node, ctx):
            return
        shown = target or node.func.attr  # type: ignore[union-attr]
        ctx.report(
            self,
            node,
            f"{shown}() lists the filesystem in arbitrary order; wrap the "
            "call in sorted(...)",
        )
