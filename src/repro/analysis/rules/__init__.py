"""Registry of the repo-specific static-analysis rules."""

from __future__ import annotations

from typing import Dict, List, Tuple, Type

from repro.analysis.engine import Rule
from repro.analysis.rules.determinism import (
    BuiltinHashInPlacement,
    UnorderedSetIteration,
    UnseededRandomCall,
    UnsortedDirectoryListing,
    WallClockCall,
)
from repro.analysis.rules.safety import (
    BareOrBroadExcept,
    BlockingCallInSimulation,
    FloatTimeEquality,
    MutableDefaultArgument,
    NonTaxonomyRaise,
)

#: Every shipped rule class, in code order.
ALL_RULES: Tuple[Type[Rule], ...] = (
    UnorderedSetIteration,
    WallClockCall,
    UnseededRandomCall,
    BuiltinHashInPlacement,
    UnsortedDirectoryListing,
    FloatTimeEquality,
    MutableDefaultArgument,
    BareOrBroadExcept,
    NonTaxonomyRaise,
    BlockingCallInSimulation,
)


def build_rules() -> List[Rule]:
    """Fresh rule instances (rules may hold per-file state)."""
    return [rule_class() for rule_class in ALL_RULES]


def rules_by_code() -> Dict[str, Type[Rule]]:
    return {rule_class.code: rule_class for rule_class in ALL_RULES}


__all__ = ["ALL_RULES", "build_rules", "rules_by_code"]
