"""Simulation-safety rules: API misuse that corrupts results silently.

These rules guard invariants the simulator's dynamic checks cannot see:
float equality on simulated timestamps (drift-sensitive), mutable default
arguments (state bleeding between calls), exception handling outside the
:class:`~repro.exceptions.ReproError` taxonomy and blocking stdlib calls
inside simulation process generators.
"""

from __future__ import annotations

import ast
import re
from typing import Optional

from repro.analysis.engine import SEVERITY_WARNING, FileContext, Rule

_TIME_NAME_RE = re.compile(
    r"(?:^now$|^deadline$|_deadline$|_seconds$|_time$|^elapsed$|^simulated_time$)"
)

#: Builtin exceptions that library code must not raise — everything callers
#: can hit should derive from ReproError.  NotImplementedError (abstract
#: methods) and the generator/interpreter control-flow exceptions stay legal.
_DISALLOWED_RAISES = frozenset(
    {
        "ArithmeticError",
        "AssertionError",
        "AttributeError",
        "BaseException",
        "BufferError",
        "EOFError",
        "Exception",
        "IOError",
        "ImportError",
        "IndexError",
        "KeyError",
        "LookupError",
        "MemoryError",
        "NameError",
        "OSError",
        "OverflowError",
        "RuntimeError",
        "TypeError",
        "ValueError",
        "ZeroDivisionError",
    }
)

#: Calls that block on the outside world — poison inside a simulation that
#: models time itself.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "socket.create_connection",
        "socket.socket",
        "subprocess.run",
        "subprocess.Popen",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "os.system",
        "os.popen",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
        "requests.request",
    }
)

#: Additionally disallowed inside simulation process generators, where even
#: fast host I/O desynchronises the simulated timeline from side effects.
_GENERATOR_BLOCKING_BUILTINS = ("open", "input")


class FloatTimeEquality(Rule):
    """RPR101: ``==``/``!=`` on simulated-time floats.

    Simulated timestamps are sums of float delays; two paths to "the same"
    instant can differ in the last ulp, so exact equality silently flips
    branches.  Compare with an epsilon, or order with ``<``/``>``.
    """

    code = "RPR101"
    name = "float-time-equality"
    summary = "==/!= on simulated-time expressions; compare with tolerance"
    severity = SEVERITY_WARNING

    def _time_like(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            identifier = node.id
        elif isinstance(node, ast.Attribute):
            identifier = node.attr
        else:
            return None
        return identifier if _TIME_NAME_RE.search(identifier) else None

    def visit_Compare(self, node: ast.Compare, ctx: FileContext) -> None:
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        operands = [node.left] + list(node.comparators)
        if any(
            isinstance(operand, ast.Constant) and isinstance(operand.value, str)
            for operand in operands
        ):
            return  # comparing names/kinds, not timestamps
        for operand in operands:
            identifier = self._time_like(operand)
            if identifier is not None:
                ctx.report(
                    self,
                    node,
                    f"exact ==/!= on simulated-time value {identifier!r}; "
                    "float timestamps need a tolerance or an ordering check",
                )
                return


class MutableDefaultArgument(Rule):
    """RPR102: mutable default arguments share state across calls."""

    code = "RPR102"
    name = "mutable-default-argument"
    summary = "mutable default argument; default to None and build inside"

    def _check(self, node: ast.AST, ctx: FileContext) -> None:
        args = node.args  # type: ignore[attr-defined]
        defaults = list(args.defaults) + [
            default for default in args.kw_defaults if default is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
            ) or (
                isinstance(default, ast.Call)
                and any(
                    ctx.is_builtin_ref(default.func, builtin)
                    for builtin in ("list", "dict", "set", "bytearray")
                )
            )
            if mutable:
                ctx.report(
                    self,
                    default,
                    "mutable default argument is shared across calls; use "
                    "None and construct inside the function",
                )

    visit_FunctionDef = _check
    visit_AsyncFunctionDef = _check
    visit_Lambda = _check


class BareOrBroadExcept(Rule):
    """RPR103: ``except:`` / ``except BaseException`` swallow everything.

    Bare handlers catch ``KeyboardInterrupt``/``SystemExit`` and simulator
    control-flow failures alike, hiding corrupted runs behind a healthy exit
    code.  Catch the narrowest :class:`ReproError` subclass instead.
    """

    code = "RPR103"
    name = "bare-or-broad-except"
    summary = "bare except / except BaseException; catch ReproError kinds"

    def visit_ExceptHandler(self, node: ast.ExceptHandler, ctx: FileContext) -> None:
        if node.type is None:
            ctx.report(
                self,
                node,
                "bare except catches even KeyboardInterrupt; name the "
                "exception types (ideally a ReproError subclass)",
            )
            return
        if isinstance(node.type, ast.Name) and node.type.id == "BaseException":
            ctx.report(
                self,
                node,
                "except BaseException swallows interpreter control flow; "
                "catch Exception or a ReproError subclass",
            )


class NonTaxonomyRaise(Rule):
    """RPR104: raising builtin exceptions instead of the ReproError taxonomy.

    Callers are promised a single-rooted exception hierarchy (``except
    ReproError``); a stray ``ValueError`` escapes that net.  Re-raises
    (``raise`` with no expression) and ``NotImplementedError`` stay legal.
    """

    code = "RPR104"
    name = "non-taxonomy-raise"
    summary = "builtin exception raised; use a ReproError subclass"

    def visit_Raise(self, node: ast.Raise, ctx: FileContext) -> None:
        exc = node.exc
        if exc is None:
            return
        target = exc
        if isinstance(target, ast.Call):
            target = target.func
        name = ctx.dotted_name(target)
        if name is None:
            return
        terminal = name.split(".")[-1]
        if terminal in _DISALLOWED_RAISES:
            ctx.report(
                self,
                node,
                f"raise {terminal} escapes the ReproError taxonomy; use the "
                "matching subclass from repro.exceptions",
            )


class BlockingCallInSimulation(Rule):
    """RPR105: blocking stdlib calls inside simulated code.

    ``time.sleep`` (and sockets, subprocesses, ...) block the host thread —
    the simulation models waiting with ``env.timeout``; real blocking both
    slows the run and decouples wall time from simulated time.  Inside
    process generators even ``open``/``input`` are flagged: a generator is
    re-entered at simulated instants and must not perform host I/O.
    """

    code = "RPR105"
    name = "blocking-call-in-simulation"
    summary = "blocking host call (time.sleep & co.) in simulated code"

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        target = ctx.call_target(node)
        if target in _BLOCKING_CALLS:
            ctx.report(
                self,
                node,
                f"{target}() blocks the host thread; model waiting with "
                "env.timeout(...) instead",
            )
            return
        if ctx.in_process_generator():
            for builtin in _GENERATOR_BLOCKING_BUILTINS:
                if ctx.is_builtin_ref(node.func, builtin):
                    ctx.report(
                        self,
                        node,
                        f"{builtin}() performs host I/O inside a simulation "
                        "process generator; move it outside the sim loop",
                    )
                    return
