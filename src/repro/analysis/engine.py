"""Rule engine for the repo-specific static-analysis suite.

The engine parses each Python file once, walks the AST a single time and
dispatches every node to the ``visit_<NodeType>`` / ``leave_<NodeType>``
methods of the active rules.  Rules report :class:`Finding` objects through
the shared :class:`FileContext`; the engine then applies inline suppression
comments of the form::

    # repro: noqa[RPR001] reason=iteration order is folded through sorted()

A suppression must name at least one rule code *and* carry a non-empty
``reason=`` — a comment that fails either requirement is itself reported as
``RPR000`` so that reason-less escapes cannot accumulate silently.

Everything here is deterministic by construction: files are visited in
sorted order, findings sort by ``(path, line, col, code)`` and no wall-clock
or randomised state is consulted (the analyzer must satisfy its own rules —
it is part of ``src/repro`` and is analysed in CI like any other module).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import ReproError

#: Engine-reserved codes (not tied to a rule class).
MALFORMED_SUPPRESSION = "RPR000"
PARSE_ERROR = "RPR999"

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa"
    r"(?:\[(?P<codes>[^\]]*)\])?"
    r"(?:\s+reason=(?P<reason>.*\S))?"
)
_CODE_RE = re.compile(r"^RPR\d{3}$")


class AnalysisError(ReproError):
    """Raised when the static-analysis suite itself is misused."""


class Rule:
    """Base class for analysis rules.

    Subclasses set the class attributes below and implement any number of
    ``visit_<NodeType>(node, ctx)`` / ``leave_<NodeType>(node, ctx)``
    methods; the engine calls them during its single AST walk.  Per-file
    state belongs in :meth:`start_file`.
    """

    code: str = "RPR???"
    name: str = "unnamed-rule"
    summary: str = ""
    severity: str = SEVERITY_ERROR

    def start_file(self, ctx: FileContext) -> None:
        """Hook called before the walk of each file begins."""


@dataclass
class Finding:
    """One rule violation (or suppression bookkeeping entry) in one file."""

    code: str
    name: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    suppression_reason: Optional[str] = None

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "name": self.name,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
            "suppression_reason": self.suppression_reason,
        }


@dataclass
class Suppression:
    """A parsed ``# repro: noqa[...]`` comment on one physical line."""

    line: int
    codes: Tuple[str, ...]
    reason: str
    malformed: Optional[str] = None  # message when the comment is invalid


@dataclass
class FileContext:
    """Per-file state shared between the engine and the rules."""

    rel_path: str
    source: str
    tree: ast.Module
    findings: List[Finding] = field(default_factory=list)
    #: Alias -> fully dotted imported name (``{"dt": "datetime.datetime"}``).
    imports: Dict[str, str] = field(default_factory=dict)
    #: Ancestors of the node currently being visited (outermost first),
    #: including that node as the last element.
    node_stack: List[ast.AST] = field(default_factory=list)
    #: Enclosing function definitions (outermost first).
    function_stack: List[ast.AST] = field(default_factory=list)
    #: Function nodes whose own body contains a ``yield``.
    generator_functions: Set[ast.AST] = field(default_factory=set)

    def report(self, rule: Rule, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                code=rule.code,
                name=rule.name,
                severity=rule.severity,
                path=self.rel_path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    # -------------------------------------------------------------- #
    # Helpers shared by rules
    # -------------------------------------------------------------- #
    def parent(self) -> Optional[ast.AST]:
        """The direct parent of the node currently being visited."""
        if len(self.node_stack) < 2:
            return None
        return self.node_stack[-2]

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain to a dotted path through imports.

        ``time.sleep`` resolves even when imported as ``import time as t``
        (``t.sleep``) or ``from time import sleep`` (``sleep``).  Returns
        ``None`` for expressions that are not plain dotted names.
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.imports.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def call_target(self, node: ast.Call) -> Optional[str]:
        """Dotted name of a call's callee, or ``None``."""
        return self.dotted_name(node.func)

    def is_builtin_ref(self, node: ast.AST, builtin_name: str) -> bool:
        """Whether ``node`` is a bare reference to an unshadowed builtin."""
        return (
            isinstance(node, ast.Name)
            and node.id == builtin_name
            and node.id not in self.imports
        )

    def current_function(self) -> Optional[ast.AST]:
        """Innermost enclosing ``def`` (lambdas excluded), or ``None``."""
        for candidate in reversed(self.function_stack):
            if isinstance(candidate, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return candidate
        return None

    def in_process_generator(self) -> bool:
        """Whether the current code is inside a generator function body."""
        current = self.current_function()
        return current is not None and current in self.generator_functions


def _comment_tokens(source: str) -> List[Tuple[int, str]]:
    """``(line, text)`` for every real comment token in ``source``.

    Tokenising (rather than regex-scanning raw lines) keeps docstrings and
    string literals that merely *mention* the noqa syntax from being parsed
    as suppressions.
    """
    comments: List[Tuple[int, str]] = []
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except tokenize.TokenError:  # pragma: no cover - file already parsed
        pass
    return comments


def parse_suppressions(source: str) -> List[Suppression]:
    """Extract ``# repro: noqa[...]`` comments, flagging malformed ones."""
    suppressions: List[Suppression] = []
    for lineno, line in _comment_tokens(source):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        raw_codes = match.group("codes")
        reason = (match.group("reason") or "").strip()
        if raw_codes is None:
            suppressions.append(
                Suppression(
                    line=lineno,
                    codes=(),
                    reason=reason,
                    malformed="suppression must name rule codes: "
                    "`# repro: noqa[RPRnnn] reason=...`",
                )
            )
            continue
        codes = tuple(code.strip() for code in raw_codes.split(",") if code.strip())
        bad = sorted(code for code in codes if not _CODE_RE.match(code))
        if not codes or bad:
            suppressions.append(
                Suppression(
                    line=lineno,
                    codes=codes,
                    reason=reason,
                    malformed=f"suppression names invalid rule codes {bad or ['<none>']}",
                )
            )
            continue
        if not reason:
            suppressions.append(
                Suppression(
                    line=lineno,
                    codes=codes,
                    reason="",
                    malformed="suppression requires a justification: "
                    "`# repro: noqa[%s] reason=...`" % ",".join(codes),
                )
            )
            continue
        suppressions.append(Suppression(line=lineno, codes=codes, reason=reason))
    return suppressions


def _collect_imports(tree: ast.Module) -> Dict[str, str]:
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports stay unresolved
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return imports


def _collect_generator_functions(tree: ast.Module) -> Set[ast.AST]:
    generators: Set[ast.AST] = set()
    stack: List[ast.AST] = []

    class _Visitor(ast.NodeVisitor):
        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            stack.append(node)
            self.generic_visit(node)
            stack.pop()

        def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
            stack.append(node)
            self.generic_visit(node)
            stack.pop()

        def visit_Yield(self, node: ast.Yield) -> None:
            if stack:
                generators.add(stack[-1])
            self.generic_visit(node)

        def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
            if stack:
                generators.add(stack[-1])
            self.generic_visit(node)

    _Visitor().visit(tree)
    return generators


class _Walker:
    """Single-pass AST walker with per-node rule dispatch."""

    def __init__(self, rules: Sequence[Rule], ctx: FileContext) -> None:
        self.ctx = ctx
        self._visit: Dict[str, List[Any]] = {}
        self._leave: Dict[str, List[Any]] = {}
        for rule in rules:
            for attr in sorted(dir(rule)):
                if attr.startswith("visit_"):
                    self._visit.setdefault(attr[len("visit_"):], []).append(
                        getattr(rule, attr)
                    )
                elif attr.startswith("leave_"):
                    self._leave.setdefault(attr[len("leave_"):], []).append(
                        getattr(rule, attr)
                    )

    def walk(self, node: ast.AST) -> None:
        ctx = self.ctx
        type_name = type(node).__name__
        is_function = isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
        ctx.node_stack.append(node)
        if is_function:
            ctx.function_stack.append(node)
        for method in self._visit.get(type_name, ()):
            method(node, ctx)
        for child in ast.iter_child_nodes(node):
            self.walk(child)
        for method in self._leave.get(type_name, ()):
            method(node, ctx)
        if is_function:
            ctx.function_stack.pop()
        ctx.node_stack.pop()


def _engine_finding(
    code: str, rel_path: str, line: int, col: int, message: str
) -> Finding:
    name = "malformed-suppression" if code == MALFORMED_SUPPRESSION else "parse-error"
    return Finding(
        code=code,
        name=name,
        severity=SEVERITY_ERROR,
        path=rel_path,
        line=line,
        col=col,
        message=message,
    )


def analyze_source(
    source: str,
    rel_path: str,
    rules: Sequence[Rule],
    known_codes: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Analyse one file's source with the given (already scoped) rules.

    Returns all findings — suppressed ones included, with their
    ``suppressed`` flag set — sorted by position.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [
            _engine_finding(
                PARSE_ERROR,
                rel_path,
                error.lineno or 1,
                (error.offset or 1) - 1,
                f"file does not parse: {error.msg}",
            )
        ]

    ctx = FileContext(rel_path=rel_path, source=source, tree=tree)
    ctx.imports = _collect_imports(tree)
    ctx.generator_functions = _collect_generator_functions(tree)
    for rule in rules:
        rule.start_file(ctx)
    _Walker(rules, ctx).walk(tree)

    findings = ctx.findings
    suppressions = parse_suppressions(source)
    recognised = set(known_codes) if known_codes is not None else None
    by_line: Dict[int, Suppression] = {}
    for suppression in suppressions:
        if suppression.malformed is not None:
            findings.append(
                _engine_finding(
                    MALFORMED_SUPPRESSION,
                    rel_path,
                    suppression.line,
                    0,
                    suppression.malformed,
                )
            )
            continue
        unknown = (
            sorted(set(suppression.codes) - recognised)
            if recognised is not None
            else []
        )
        if unknown:
            findings.append(
                _engine_finding(
                    MALFORMED_SUPPRESSION,
                    rel_path,
                    suppression.line,
                    0,
                    f"suppression names unknown rule codes {unknown}",
                )
            )
            continue
        by_line[suppression.line] = suppression

    for finding in findings:
        suppression = by_line.get(finding.line)
        if suppression is not None and finding.code in suppression.codes:
            finding.suppressed = True
            finding.suppression_reason = suppression.reason

    return sorted(findings, key=lambda finding: finding.sort_key)


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: Set[Path] = set()
    ordered: List[Path] = []
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            raise AnalysisError(f"not a Python file or directory: {path}")
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                ordered.append(candidate)
    return ordered
