"""Deterministic text and JSON rendering of analysis findings."""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.analysis.engine import SEVERITY_ERROR, SEVERITY_WARNING, Finding
from repro.analysis.rules import ALL_RULES

#: Version of the JSON findings document (CI uploads it as an artifact).
DOCUMENT_SCHEMA_VERSION = 1


def count_findings(findings: Sequence[Finding]) -> Dict[str, int]:
    active = [finding for finding in findings if not finding.suppressed]
    return {
        "total": len(findings),
        "active": len(active),
        "errors": sum(1 for f in active if f.severity == SEVERITY_ERROR),
        "warnings": sum(1 for f in active if f.severity == SEVERITY_WARNING),
        "suppressed": len(findings) - len(active),
    }


def build_document(
    findings: Sequence[Finding],
    paths: Sequence[str],
    files_scanned: int,
    strict: bool,
) -> Dict[str, Any]:
    """The machine-readable findings document (stable key order)."""
    ordered = sorted(findings, key=lambda finding: finding.sort_key)
    return {
        "schema_version": DOCUMENT_SCHEMA_VERSION,
        "tool": "repro.analysis",
        "strict": strict,
        "paths": list(paths),
        "files_scanned": files_scanned,
        "rules": [
            {
                "code": rule.code,
                "name": rule.name,
                "severity": rule.severity,
                "summary": rule.summary,
            }
            for rule in ALL_RULES
        ],
        "counts": count_findings(ordered),
        "findings": [finding.to_dict() for finding in ordered],
    }


def format_json(document: Dict[str, Any]) -> str:
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def format_text(
    findings: Sequence[Finding], files_scanned: int, show_suppressed: bool = False
) -> str:
    """Human-readable report: one line per finding plus a summary."""
    ordered = sorted(findings, key=lambda finding: finding.sort_key)
    lines: List[str] = []
    for finding in ordered:
        if finding.suppressed and not show_suppressed:
            continue
        suffix = ""
        if finding.suppressed:
            suffix = f"  (suppressed: {finding.suppression_reason})"
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.code} [{finding.name}] {finding.message}{suffix}"
        )
    counts = count_findings(ordered)
    lines.append(
        f"{files_scanned} files scanned: {counts['errors']} errors, "
        f"{counts['warnings']} warnings, {counts['suppressed']} suppressed"
    )
    return "\n".join(lines) + "\n"


def list_rules_text() -> str:
    """The rule table printed by ``--list-rules`` (mirrored in the README)."""
    lines = [f"{'code':<8} {'severity':<8} {'name':<28} summary", "-" * 76]
    for rule in ALL_RULES:
        lines.append(f"{rule.code:<8} {rule.severity:<8} {rule.name:<28} {rule.summary}")
    return "\n".join(lines) + "\n"
