"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration problems from runtime ones.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Raised when the discrete-event simulator is used incorrectly."""


class SchemaError(ReproError):
    """Raised for malformed schemas, unknown columns or type mismatches."""


class CatalogError(ReproError):
    """Raised when a relation or segment cannot be resolved in the catalog."""


class QueryError(ReproError):
    """Raised for malformed query specifications (unknown tables, bad joins)."""


class PlanningError(ReproError):
    """Raised when the planner cannot build a plan for a query."""


class ExecutionError(ReproError):
    """Raised when query execution fails at runtime."""


class StorageError(ReproError):
    """Raised by the object store / CSD substrate (missing objects, etc.)."""


class LayoutError(StorageError):
    """Raised when a data layout policy cannot place objects."""


class SchedulingError(StorageError):
    """Raised when an I/O scheduler is misconfigured."""


class PlacementError(StorageError):
    """Raised when a fleet placement policy cannot place objects."""


class FleetError(StorageError):
    """Raised by the fleet router (dead replicas, unroutable requests)."""


class CacheError(ReproError):
    """Raised by the Skipper buffer cache (e.g. capacity too small)."""


class ServiceError(ReproError):
    """Raised for misuse of the query-service façade (sessions, handles)."""


class SessionClosedError(ServiceError):
    """Raised when submitting a query to a session that has been closed."""


class AdmissionError(ServiceError):
    """Raised when admission control rejects a query (caps or queue full)."""


class ConfigurationError(ReproError):
    """Raised for invalid experiment or cost-model configuration."""


class ScenarioError(ConfigurationError):
    """Raised for unknown or malformed scenario specifications."""


class InvariantViolation(ReproError):
    """Raised when a scenario run breaks a cross-cutting system invariant."""


class GoldenMismatchError(ReproError):
    """Raised when a scenario report diverges from its committed golden file."""


class BudgetExceededError(ReproError):
    """Raised when a scenario run exceeds its committed perf budget."""
