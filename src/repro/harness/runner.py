"""Command-line entry point: run any paper experiment by name.

``python -m repro list`` prints the available experiments;
``python -m repro run figure7 --option client_counts=1,3,5 --option scale=small``
runs one of them with keyword overrides and prints the result.
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Callable, Dict, List, Mapping, Sequence

from repro.exceptions import ConfigurationError
from repro.harness import experiments
from repro.harness.tables import format_table

#: Experiment registry: short name -> (callable, one-line description).
EXPERIMENTS: Dict[str, tuple] = {
    "table1": (experiments.table1_figure2_tiering_cost, "Table 1 / Figure 2: tiering cost"),
    "figure2": (experiments.table1_figure2_tiering_cost, "Figure 2: tiering cost"),
    "figure3": (experiments.figure3_cst_savings, "Figure 3: cold-storage-tier savings"),
    "figure4": (experiments.figure4_postgres_on_csd, "Figure 4: vanilla engine on CSD vs HDD"),
    "figure5": (experiments.figure5_latency_sensitivity, "Figure 5: vanilla latency sensitivity"),
    "figure7": (experiments.figure7_skipper_scaling, "Figure 7: Skipper vs vanilla vs ideal"),
    "figure8": (experiments.figure8_mixed_workload, "Figure 8: mixed workload"),
    "figure9": (experiments.figure9_breakdown, "Figure 9: execution-time breakdown"),
    "figure10": (experiments.figure10_switch_latency, "Figure 10: switch-latency sensitivity"),
    "figure11a": (experiments.figure11a_layout_sensitivity, "Figure 11a: layout sensitivity"),
    "figure11b": (experiments.figure11b_cache_size, "Figure 11b: cache-size sensitivity"),
    "figure11c": (experiments.figure11c_dataset_size, "Figure 11c: data-set-size sensitivity"),
    "figure12": (experiments.figure12_fairness, "Figure 12: fairness vs efficiency"),
    "table2": (experiments.table2_subplan_example, "Table 2: subplan example"),
    "table3": (experiments.table3_component_breakdown, "Table 3: component breakdown"),
    "ablation-eviction": (
        experiments.ablation_eviction_policies,
        "Ablation: cache-eviction policies",
    ),
    "ablation-ordering": (
        experiments.ablation_intra_group_ordering,
        "Ablation: intra-group ordering",
    ),
    "ablation-pruning": (
        experiments.ablation_subplan_pruning,
        "Ablation: empty-object subplan pruning",
    ),
    "ablation-schedulers": (
        experiments.ablation_csd_schedulers,
        "Ablation: CSD scheduling policies (incl. slack-FCFS)",
    ),
    "ablation-fairness-k": (
        experiments.ablation_fairness_constant,
        "Ablation: rank-based fairness constant K",
    ),
}


def list_experiments() -> List[str]:
    """Names of all runnable experiments."""
    return sorted(EXPERIMENTS)


def run_experiment(name: str, **overrides: Any):
    """Run the experiment registered under ``name`` with keyword overrides."""
    try:
        function, _description = EXPERIMENTS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; available: {', '.join(list_experiments())}"
        ) from None
    return function(**overrides)


def render_result(name: str, result: Any) -> str:
    """Render an experiment result as text tables."""
    lines: List[str] = [f"experiment: {name}"]
    lines.append(_render_value(result))
    return "\n".join(lines)


def _render_value(value: Any, indent: str = "") -> str:
    if isinstance(value, Mapping):
        # Mapping of parallel lists -> one table with a column per key.
        if value and all(isinstance(item, (list, tuple)) for item in value.values()):
            lengths = {len(item) for item in value.values()}
            if len(lengths) == 1:
                headers = list(value)
                rows = list(zip(*[value[key] for key in headers]))
                return format_table(headers, rows)
        # Mapping of mappings -> one row per outer key.
        if value and all(isinstance(item, Mapping) for item in value.values()):
            inner_keys: List[str] = []
            for item in value.values():
                for key in item:
                    if key not in inner_keys:
                        inner_keys.append(str(key))
            headers = ["name"] + inner_keys
            rows = [
                [outer] + [item.get(key, "") for key in inner_keys]
                for outer, item in value.items()
            ]
            return format_table(headers, rows)
        return format_table(["key", "value"], [[key, _compact(item)] for key, item in value.items()])
    return indent + _compact(value)


def _compact(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, (list, tuple, Mapping)):
        return json.dumps(value, default=str)
    return str(value)


def _parse_option(text: str) -> tuple:
    """Parse a ``key=value`` option; values may be ints, floats, tuples or strings."""
    key, separator, raw = text.partition("=")
    if not separator or not key:
        raise ConfigurationError(f"options must look like key=value, got {text!r}")
    if "," in raw:
        return key, tuple(_coerce(part) for part in raw.split(",") if part != "")
    return key, _coerce(raw)


def _coerce(raw: str):
    for converter in (int, float):
        try:
            return converter(raw)
        except ValueError:
            continue
    if raw.lower() in ("true", "false"):
        return raw.lower() == "true"
    return raw


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the tables and figures of 'Cheap Data Analytics using Cold "
        "Storage Devices' (VLDB 2016).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list the available experiments")
    run_parser = subparsers.add_parser("run", help="run one experiment and print its result")
    run_parser.add_argument("experiment", choices=list_experiments())
    run_parser.add_argument(
        "--option",
        "-o",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override an experiment keyword argument (repeatable); "
        "comma-separated values become tuples, e.g. -o client_counts=1,3,5",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    if arguments.command == "list":
        for name in list_experiments():
            print(f"{name:20s} {EXPERIMENTS[name][1]}")
        return 0
    overrides = dict(_parse_option(option) for option in arguments.option)
    result = run_experiment(arguments.experiment, **overrides)
    print(render_result(arguments.experiment, result))
    return 0
