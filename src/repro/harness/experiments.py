"""Reproduction of every table and figure in the paper's evaluation.

Each ``figureNN_*`` / ``tableNN_*`` function builds the corresponding
experiment, runs it over simulated time and returns a dictionary of the
series the paper plots.  Absolute values depend on the cost-model calibration
(see DESIGN.md); what is expected to match the paper is the *shape*: who
wins, by roughly what factor, and where the crossovers are.  EXPERIMENTS.md
records paper-vs-measured values produced by these functions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - deferred to avoid a service<->harness cycle
    from repro.service.admission import AdmissionConfig

from repro.cluster import ClientSpec, ClusterConfig, ClusterResult
from repro.cluster.metrics import l2_norm, max_stretch, mean, stretches
from repro.core.cache import (
    EvictionPolicy,
    FIFOEviction,
    LRUEviction,
    MaxPendingSubplansEviction,
    MaxProgressEviction,
)
from repro.core.subplan import enumerate_subplans
from repro.csd.device import DeviceConfig
from repro.csd.layout import (
    AllInOneLayout,
    ClientsPerGroupLayout,
    IncrementalLayout,
    LayoutPolicy,
    SkewedLayout,
)
from repro.csd.ordering import SemanticRoundRobinOrdering, TableMajorOrdering
from repro.csd.scheduler import (
    IOScheduler,
    MaxQueriesScheduler,
    ObjectFCFSScheduler,
    QueryFCFSScheduler,
    RankBasedScheduler,
    SlackFCFSScheduler,
)
from repro.engine.catalog import Catalog
from repro.engine.cost import CostModel
from repro.engine.query import Query
from repro.exceptions import CacheError
from repro.tiering import TieringCostModel
from repro.workloads import mrbench, nref, ssb, tpch

#: Default group-switch latency used throughout the paper (Pelican ≈ 8 s,
#: the paper's experiments use 10 s).
DEFAULT_SWITCH_SECONDS = 10.0
#: Default cache capacity (objects ≈ GB): the paper's 30 GB configuration.
DEFAULT_CACHE_OBJECTS = 30


# --------------------------------------------------------------------------- #
# Generic cluster runners
# --------------------------------------------------------------------------- #
def run_uniform_cluster(
    catalog: Catalog,
    query: Query,
    num_clients: int,
    mode: str,
    scheduler: Optional[IOScheduler] = None,
    layout: Optional[LayoutPolicy] = None,
    switch_seconds: float = DEFAULT_SWITCH_SECONDS,
    transfer_seconds: float = 9.6,
    concurrent_transfers: bool = False,
    cache_capacity: int = DEFAULT_CACHE_OBJECTS,
    repetitions: int = 1,
    eviction_policy: Optional[EvictionPolicy] = None,
    cost_model: Optional[CostModel] = None,
    enable_pruning: bool = True,
    admission: Optional[AdmissionConfig] = None,
) -> ClusterResult:
    """Run ``num_clients`` identical clients, all executing ``query``.

    This is the shape of most experiments in the paper: every tenant runs the
    same query over its own copy of the dataset while sharing the CSD.  When
    an ``admission`` config is passed the run goes through the service
    façade's admission controller and the returned result carries the
    admission summary (``result.admission``).
    """
    specs = [
        ClientSpec(
            client_id=f"client{index}",
            queries=[query],
            mode=mode,
            repetitions=repetitions,
            cache_capacity=cache_capacity,
            eviction_policy=eviction_policy,
            enable_pruning=enable_pruning,
        )
        for index in range(num_clients)
    ]
    config = ClusterConfig(
        client_specs=specs,
        layout_policy=layout or ClientsPerGroupLayout(1),
        device_config=DeviceConfig(
            group_switch_seconds=switch_seconds,
            transfer_seconds_per_object=transfer_seconds,
            concurrent_transfers=concurrent_transfers,
        ),
        cost_model=cost_model or CostModel(),
    )
    scheduler = scheduler if scheduler is not None else _default_scheduler(mode)
    return _run_service(catalog, config, scheduler, admission=admission)


def _run_service(
    catalog: Catalog,
    config: ClusterConfig,
    scheduler: IOScheduler,
    admission: Optional[AdmissionConfig] = None,
) -> ClusterResult:
    """Run one batch experiment through the service façade."""
    # Deferred import: the façade package re-exports this harness.
    from repro.service.service import StorageService

    return StorageService(
        config, catalog=catalog, scheduler=scheduler, admission=admission
    ).run()


def _default_scheduler(mode: str) -> IOScheduler:
    """Vanilla clients face today's object-FCFS CSD; Skipper uses rank-based."""
    if mode == "vanilla":
        return ObjectFCFSScheduler()
    return RankBasedScheduler()


def run_ideal_cluster(
    catalog: Catalog,
    query: Query,
    num_clients: int,
    transfer_seconds: float = 9.6,
    cost_model: Optional[CostModel] = None,
) -> ClusterResult:
    """The paper's "Ideal" configuration: the HDD-based capacity tier.

    All data maps to a single always-spinning group (no group switches) and
    per-tenant network streams proceed in parallel, which is how the paper's
    plain-Swift/HDD baseline behaves.
    """
    return run_uniform_cluster(
        catalog,
        query,
        num_clients,
        mode="vanilla",
        scheduler=ObjectFCFSScheduler(),
        layout=AllInOneLayout(),
        switch_seconds=0.0,
        transfer_seconds=transfer_seconds,
        concurrent_transfers=True,
        cost_model=cost_model,
    )


# --------------------------------------------------------------------------- #
# Table 1 / Figure 2 / Figure 3 — tiering cost analysis
# --------------------------------------------------------------------------- #
def table1_figure2_tiering_cost(database_gb: float = 100 * 1024) -> Dict[str, float]:
    """Acquisition cost (thousands of dollars) of each storage strategy."""
    return TieringCostModel(database_gb=database_gb).figure2_rows()


def figure3_cst_savings(database_gb: float = 100 * 1024) -> Dict[str, Dict[float, Dict[str, float]]]:
    """Cost of CSD-based vs. traditional 3-/4-tier at each CSD price point."""
    return TieringCostModel.figure3_rows(database_gb=database_gb)


# --------------------------------------------------------------------------- #
# Figure 4 / Figure 5 — the problem: vanilla PostgreSQL on a CSD
# --------------------------------------------------------------------------- #
def figure4_postgres_on_csd(
    client_counts: Sequence[int] = (1, 2, 3, 4, 5),
    scale: str = "sf50",
    switch_seconds: float = DEFAULT_SWITCH_SECONDS,
    seed: int = 42,
) -> Dict[str, List[float]]:
    """Average TPC-H Q12 time of vanilla clients on CSD vs. the HDD ideal."""
    catalog = tpch.build_catalog(scale, seed=seed)
    query = tpch.q12()
    on_csd: List[float] = []
    on_hdd: List[float] = []
    for count in client_counts:
        csd_result = run_uniform_cluster(
            catalog, query, count, mode="vanilla", switch_seconds=switch_seconds
        )
        ideal_result = run_ideal_cluster(catalog, query, count)
        on_csd.append(csd_result.average_execution_time())
        on_hdd.append(ideal_result.average_execution_time())
    return {
        "clients": list(client_counts),
        "postgresql_on_csd": on_csd,
        "postgresql_on_hdd": on_hdd,
    }


def figure5_latency_sensitivity(
    switch_latencies: Sequence[float] = (0.0, 5.0, 10.0, 15.0, 20.0),
    num_clients: int = 5,
    scale: str = "sf50",
    seed: int = 42,
) -> Dict[str, List[float]]:
    """Vanilla clients' sensitivity to the group-switch latency."""
    catalog = tpch.build_catalog(scale, seed=seed)
    query = tpch.q12()
    times = [
        run_uniform_cluster(
            catalog, query, num_clients, mode="vanilla", switch_seconds=latency
        ).average_execution_time()
        for latency in switch_latencies
    ]
    return {"switch_latency": list(switch_latencies), "postgresql_on_csd": times}


# --------------------------------------------------------------------------- #
# Figure 7 — Skipper vs. vanilla vs. ideal while scaling clients
# --------------------------------------------------------------------------- #
def figure7_skipper_scaling(
    client_counts: Sequence[int] = (1, 2, 3, 4, 5),
    scale: str = "sf50",
    cache_capacity: int = DEFAULT_CACHE_OBJECTS,
    switch_seconds: float = DEFAULT_SWITCH_SECONDS,
    seed: int = 42,
) -> Dict[str, List[float]]:
    """Average Q12 execution time of Skipper, vanilla and the HDD ideal."""
    catalog = tpch.build_catalog(scale, seed=seed)
    query = tpch.q12()
    vanilla_times: List[float] = []
    skipper_times: List[float] = []
    ideal_times: List[float] = []
    for count in client_counts:
        vanilla_times.append(
            run_uniform_cluster(
                catalog, query, count, mode="vanilla", switch_seconds=switch_seconds
            ).average_execution_time()
        )
        skipper_times.append(
            run_uniform_cluster(
                catalog,
                query,
                count,
                mode="skipper",
                switch_seconds=switch_seconds,
                cache_capacity=cache_capacity,
            ).average_execution_time()
        )
        ideal_times.append(run_ideal_cluster(catalog, query, count).average_execution_time())
    return {
        "clients": list(client_counts),
        "postgresql": vanilla_times,
        "skipper": skipper_times,
        "ideal": ideal_times,
    }


# --------------------------------------------------------------------------- #
# Figure 8 — mixed workload
# --------------------------------------------------------------------------- #
def figure8_mixed_workload(
    repetitions: int = 5,
    switch_seconds: float = DEFAULT_SWITCH_SECONDS,
    cache_capacity: int = DEFAULT_CACHE_OBJECTS,
    tpch_scale: str = "sf50",
    ssb_scale: str = "sf50",
    mrbench_scale: str = "paper",
    nref_scale: str = "paper",
    seed: int = 42,
) -> Dict[str, Dict[str, float]]:
    """Cumulative execution time of four heterogeneous clients.

    One client per benchmark (TPC-H Q12, the analytics-benchmark join task,
    the NREF counting join, SSB Q1.1), each repeating its query
    ``repetitions`` times, under vanilla and under Skipper.
    """
    catalog = tpch.build_catalog(tpch_scale, seed=seed)
    ssb.build_catalog(ssb_scale, seed=seed + 1, catalog=catalog)
    mrbench.build_catalog(mrbench_scale, seed=seed + 2, catalog=catalog)
    nref.build_catalog(nref_scale, seed=seed + 3, catalog=catalog)

    workloads = {
        "TPC-H": tpch.q12(),
        "MR-Bench": mrbench.join_task(),
        "NREF": nref.sequence_count(),
        "SSB": ssb.q1_1(),
    }

    def run(mode: str) -> Dict[str, float]:
        specs = [
            ClientSpec(
                client_id=f"client_{name.lower().replace('-', '_')}",
                queries=[query],
                mode=mode,
                repetitions=repetitions,
                cache_capacity=cache_capacity,
            )
            for name, query in workloads.items()
        ]
        config = ClusterConfig(
            client_specs=specs,
            layout_policy=ClientsPerGroupLayout(1),
            device_config=DeviceConfig(
                group_switch_seconds=switch_seconds, transfer_seconds_per_object=9.6
            ),
        )
        result = _run_service(catalog, config, _default_scheduler(mode))
        totals = result.per_client_totals()
        return {
            name: totals[f"client_{name.lower().replace('-', '_')}"] for name in workloads
        }

    return {"postgresql": run("vanilla"), "skipper": run("skipper")}


# --------------------------------------------------------------------------- #
# Figure 9 / Table 3 — execution-time breakdown
# --------------------------------------------------------------------------- #
def figure9_breakdown(
    num_clients: int = 5,
    scale: str = "sf50",
    cache_capacity: int = DEFAULT_CACHE_OBJECTS,
    switch_seconds: float = DEFAULT_SWITCH_SECONDS,
    seed: int = 42,
) -> Dict[str, Dict[str, float]]:
    """Average switch / transfer / processing split of Q12 per system."""
    catalog = tpch.build_catalog(scale, seed=seed)
    query = tpch.q12()
    result: Dict[str, Dict[str, float]] = {}
    for mode in ("vanilla", "skipper"):
        cluster_result = run_uniform_cluster(
            catalog,
            query,
            num_clients,
            mode=mode,
            switch_seconds=switch_seconds,
            cache_capacity=cache_capacity,
        )
        breakdown = cluster_result.average_breakdown()
        fractions = breakdown.fractions()
        label = "postgresql" if mode == "vanilla" else "skipper"
        result[label] = {
            "processing_seconds": breakdown.processing,
            "switch_seconds": breakdown.switch_wait,
            "transfer_seconds": breakdown.transfer_wait + breakdown.other_wait,
            "processing_fraction": fractions["processing"],
            "switch_fraction": fractions["switch"],
            "transfer_fraction": fractions["transfer"] + fractions["other"],
        }
    return result


def table3_component_breakdown(
    scale: str = "sf50",
    cache_capacity: int = DEFAULT_CACHE_OBJECTS,
    seed: int = 42,
) -> Dict[str, Dict[str, float]]:
    """Single-client component breakdown: query execution vs. network access.

    Mirrors Table 3: data resides on the shared store inside a single group
    (no switches), so the difference between total and CPU time is the
    network-transfer component; the vanilla row corresponds to PostgreSQL,
    the Skipper row to the MJoin-enabled engine.
    """
    catalog = tpch.build_catalog(scale, seed=seed)
    query = tpch.q12()
    result: Dict[str, Dict[str, float]] = {}
    for mode in ("vanilla", "skipper"):
        cluster_result = run_uniform_cluster(
            catalog,
            query,
            num_clients=1,
            mode=mode,
            layout=AllInOneLayout(),
            switch_seconds=0.0,
            cache_capacity=cache_capacity,
        )
        client_results = next(iter(cluster_result.results_by_client.values()))
        query_result = client_results[0]
        total = query_result.execution_time
        processing = query_result.processing_time
        label = "postgresql" if mode == "vanilla" else "skipper"
        result[label] = {
            "query_execution_seconds": processing,
            "network_access_seconds": total - processing,
            "total_seconds": total,
            "query_execution_fraction": processing / total if total else 0.0,
            "network_access_fraction": (total - processing) / total if total else 0.0,
        }
    return result


# --------------------------------------------------------------------------- #
# Figure 10 — sensitivity to the group switch latency (Skipper vs. vanilla)
# --------------------------------------------------------------------------- #
def figure10_switch_latency(
    switch_latencies: Sequence[float] = (10.0, 20.0, 30.0, 40.0),
    num_clients: int = 5,
    scale: str = "sf50",
    cache_capacity: int = DEFAULT_CACHE_OBJECTS,
    seed: int = 42,
) -> Dict[str, List[float]]:
    """Average Q12 time as the group-switch latency grows."""
    catalog = tpch.build_catalog(scale, seed=seed)
    query = tpch.q12()
    vanilla_times = []
    skipper_times = []
    for latency in switch_latencies:
        vanilla_times.append(
            run_uniform_cluster(
                catalog, query, num_clients, mode="vanilla", switch_seconds=latency
            ).average_execution_time()
        )
        skipper_times.append(
            run_uniform_cluster(
                catalog,
                query,
                num_clients,
                mode="skipper",
                switch_seconds=latency,
                cache_capacity=cache_capacity,
            ).average_execution_time()
        )
    return {
        "switch_latency": list(switch_latencies),
        "postgresql": vanilla_times,
        "skipper": skipper_times,
    }


# --------------------------------------------------------------------------- #
# Figure 11a — sensitivity to the data layout
# --------------------------------------------------------------------------- #
def figure11a_layout_sensitivity(
    num_clients: int = 4,
    scale: str = "sf50",
    cache_capacity: int = DEFAULT_CACHE_OBJECTS,
    switch_seconds: float = DEFAULT_SWITCH_SECONDS,
    seed: int = 42,
) -> Dict[str, Dict[str, float]]:
    """Average Q12 time under the four layouts of the paper."""
    catalog = tpch.build_catalog(scale, seed=seed)
    query = tpch.q12()
    layouts: Dict[str, LayoutPolicy] = {
        "all-in-one": AllInOneLayout(),
        "2-per-group": ClientsPerGroupLayout(2),
        "1-per-group": ClientsPerGroupLayout(1),
        "incremental": IncrementalLayout(),
    }
    result: Dict[str, Dict[str, float]] = {"postgresql": {}, "skipper": {}}
    for layout_name, layout in layouts.items():
        result["postgresql"][layout_name] = run_uniform_cluster(
            catalog,
            query,
            num_clients,
            mode="vanilla",
            layout=layout,
            switch_seconds=switch_seconds,
        ).average_execution_time()
        result["skipper"][layout_name] = run_uniform_cluster(
            catalog,
            query,
            num_clients,
            mode="skipper",
            layout=layout,
            switch_seconds=switch_seconds,
            cache_capacity=cache_capacity,
        ).average_execution_time()
    return result


# --------------------------------------------------------------------------- #
# Figure 11b / 11c — sensitivity to the cache size and the data set size
# --------------------------------------------------------------------------- #
def figure11b_cache_size(
    cache_sizes: Sequence[int] = (10, 15, 20, 25, 30),
    num_clients: int = 5,
    scale: str = "sf50",
    switch_seconds: float = DEFAULT_SWITCH_SECONDS,
    seed: int = 42,
) -> Dict[str, List[float]]:
    """Skipper's Q5 execution time and GET count as the cache shrinks."""
    catalog = tpch.build_catalog(scale, seed=seed)
    query = tpch.q5()
    vanilla_time = run_uniform_cluster(
        catalog, query, num_clients, mode="vanilla", switch_seconds=switch_seconds
    ).average_execution_time()
    times: List[float] = []
    gets: List[float] = []
    for cache_size in cache_sizes:
        result = run_uniform_cluster(
            catalog,
            query,
            num_clients,
            mode="skipper",
            switch_seconds=switch_seconds,
            cache_capacity=cache_size,
        )
        times.append(result.average_execution_time())
        gets.append(result.total_get_requests() / max(1, num_clients))
    return {
        "cache_size": list(cache_sizes),
        "skipper_time": times,
        "get_requests_per_client": gets,
        "postgresql_time": vanilla_time,
    }


def figure11c_dataset_size(
    cache_sizes: Sequence[int] = (14, 21, 28, 35, 42),
    num_clients: int = 3,
    scale: str = "sf100",
    switch_seconds: float = DEFAULT_SWITCH_SECONDS,
    seed: int = 42,
) -> Dict[str, List[float]]:
    """Same as Figure 11b but on the larger (SF-100 equivalent) dataset."""
    return figure11b_cache_size(
        cache_sizes=cache_sizes,
        num_clients=num_clients,
        scale=scale,
        switch_seconds=switch_seconds,
        seed=seed,
    )


# --------------------------------------------------------------------------- #
# Figure 12 — balancing efficiency and fairness
# --------------------------------------------------------------------------- #
def figure12_fairness(
    num_clients: int = 5,
    repetitions: int = 10,
    scale: str = "sf50",
    cache_capacity: int = DEFAULT_CACHE_OBJECTS,
    switch_seconds: float = DEFAULT_SWITCH_SECONDS,
    seed: int = 42,
) -> Dict[str, Dict[str, float]]:
    """L2-norm / max stretch and cumulative time per scheduling policy.

    Uses the paper's skewed layout: two groups hold two clients each and the
    last group holds a single client, so efficiency-first policies starve the
    lone client while FCFS wastes switches.
    """
    catalog = tpch.build_catalog(scale, seed=seed)
    query = tpch.q12()

    # Ideal (single-client) execution time used to normalise stretch.
    ideal_result = run_uniform_cluster(
        catalog,
        query,
        num_clients=1,
        mode="skipper",
        scheduler=RankBasedScheduler(),
        switch_seconds=switch_seconds,
        cache_capacity=cache_capacity,
    )
    ideal_time = ideal_result.average_execution_time()

    schedulers = {
        "fairness": QueryFCFSScheduler,
        "maxquery": MaxQueriesScheduler,
        "ranking": RankBasedScheduler,
    }
    clients_per_group = _skew_pattern(num_clients)
    output: Dict[str, Dict[str, float]] = {}
    for label, scheduler_factory in schedulers.items():
        result = run_uniform_cluster(
            catalog,
            query,
            num_clients,
            mode="skipper",
            scheduler=scheduler_factory(),
            layout=SkewedLayout(clients_per_group),
            switch_seconds=switch_seconds,
            cache_capacity=cache_capacity,
            repetitions=repetitions,
        )
        all_stretches = stretches(result.execution_times(), ideal_time)
        output[label] = {
            "l2_norm_stretch": l2_norm(all_stretches),
            "max_stretch": max_stretch(all_stretches),
            "mean_stretch": mean(all_stretches),
            "cumulative_time": result.cumulative_execution_time(),
            "group_switches": float(result.device_switches),
        }
    return output


def _skew_pattern(num_clients: int) -> List[int]:
    """The paper's skewed layout generalised: pairs of clients plus a loner."""
    if num_clients < 3:
        return [1] * num_clients
    pattern: List[int] = []
    remaining = num_clients
    while remaining > 1:
        take = 2 if remaining > 2 else remaining
        pattern.append(take)
        remaining -= take
    if remaining == 1:
        pattern.append(1)
    return pattern


# --------------------------------------------------------------------------- #
# Table 2 — the subplan example
# --------------------------------------------------------------------------- #
def table2_subplan_example() -> Dict[str, List]:
    """The layout / subplan enumeration example of Table 2."""
    layout = {
        "g1": ["A.1", "B.1", "C.1"],
        "g2": ["A.2", "B.2"],
        "g3": ["C.3"],
    }
    subplans = enumerate_subplans({"A": ["A.1", "A.2"], "B": ["B.1", "B.2"], "C": ["C.1", "C.3"]})
    return {"layout": list(layout.items()), "subplans": subplans}


# --------------------------------------------------------------------------- #
# Admission control under overload (service façade)
# --------------------------------------------------------------------------- #
def experiment_admission_overload(
    num_clients: int = 6,
    max_in_flight: int = 2,
    max_queue_depth: int = 2,
    scale: str = "tiny",
    cache_capacity: int = 8,
    switch_seconds: float = DEFAULT_SWITCH_SECONDS,
    seed: int = 42,
) -> Dict[str, object]:
    """Drive more tenants at the service than admission control lets run.

    Every tenant submits the same TPC-H Q12; the admission controller caps
    concurrent execution at ``max_in_flight`` with a ``max_queue_depth``-deep
    wait queue, so the overflow is queued and — past the queue — shed with
    typed rejections.  Returns the controller's summary (global and
    per-tenant), the same metrics scenario reports carry, now surfaced for
    harness/notebook consumers; render it with
    :func:`repro.harness.tables.format_admission_table`.
    """
    from repro.service.admission import AdmissionConfig

    catalog = tpch.build_catalog(scale, seed=seed)
    result = run_uniform_cluster(
        catalog,
        tpch.q12(),
        num_clients,
        mode="skipper",
        switch_seconds=switch_seconds,
        cache_capacity=cache_capacity,
        admission=AdmissionConfig(
            max_in_flight=max_in_flight, max_queue_depth=max_queue_depth
        ),
    )
    summary = dict(result.admission)
    summary["queries_completed"] = len(result.execution_times())
    summary["mean_execution_time"] = result.average_execution_time()
    return summary


# --------------------------------------------------------------------------- #
# Ablations beyond the paper's headline figures
# --------------------------------------------------------------------------- #
def ablation_eviction_policies(
    cache_capacity: int = 10,
    num_clients: int = 2,
    scale: str = "small",
    switch_seconds: float = DEFAULT_SWITCH_SECONDS,
    seed: int = 42,
) -> Dict[str, Dict[str, float]]:
    """Compare cache-eviction policies at a constrained cache size."""
    catalog = tpch.build_catalog(scale, seed=seed)
    query = tpch.q5()
    policies = {
        "max-progress": MaxProgressEviction(),
        "max-pending-subplans": MaxPendingSubplansEviction(),
        "lru": LRUEviction(),
        "fifo": FIFOEviction(),
    }
    output: Dict[str, Dict[str, float]] = {}
    for label, policy in policies.items():
        try:
            result = run_uniform_cluster(
                catalog,
                query,
                num_clients,
                mode="skipper",
                switch_seconds=switch_seconds,
                cache_capacity=cache_capacity,
                eviction_policy=policy,
            )
        except CacheError:
            # Naive policies can evict the same objects cycle after cycle at
            # small cache sizes and never finish the query — itself a result
            # worth reporting (the paper's policy is designed to avoid this).
            output[label] = {
                "avg_time": float("inf"),
                "get_requests_per_client": float("inf"),
                "converged": 0.0,
            }
            continue
        output[label] = {
            "avg_time": result.average_execution_time(),
            "get_requests_per_client": result.total_get_requests() / num_clients,
            "converged": 1.0,
        }
    return output


def ablation_intra_group_ordering(
    cache_capacity: int = 6,
    scale: str = "small",
    switch_seconds: float = DEFAULT_SWITCH_SECONDS,
    seed: int = 42,
) -> Dict[str, Dict[str, float]]:
    """Semantically-smart vs. table-major object ordering within a group.

    The cache is sized at exactly one object per joined relation, the regime
    in which Section 4.4 argues that returning one table at a time starves
    the MJoin of runnable subplans.
    """
    catalog = tpch.build_catalog(scale, seed=seed)
    query = tpch.q5()
    orderings = {
        "semantic-round-robin": SemanticRoundRobinOrdering(),
        "table-major": TableMajorOrdering(),
    }
    output: Dict[str, Dict[str, float]] = {}
    for label, ordering in orderings.items():
        try:
            result = run_uniform_cluster(
                catalog,
                query,
                num_clients=2,
                mode="skipper",
                scheduler=RankBasedScheduler(ordering=ordering),
                switch_seconds=switch_seconds,
                cache_capacity=cache_capacity,
            )
        except CacheError:
            output[label] = {
                "avg_time": float("inf"),
                "get_requests_per_client": float("inf"),
                "converged": 0.0,
            }
            continue
        output[label] = {
            "avg_time": result.average_execution_time(),
            "get_requests_per_client": result.total_get_requests() / 2,
            "converged": 1.0,
        }
    return output


def ablation_csd_schedulers(
    num_clients: int = 4,
    repetitions: int = 2,
    scale: str = "small",
    cache_capacity: int = 12,
    switch_seconds: float = DEFAULT_SWITCH_SECONDS,
    seed: int = 42,
) -> Dict[str, Dict[str, float]]:
    """Skipper clients under every CSD scheduling policy, including the
    slack-FCFS policy that models today's CSD firmware.

    Extends Figure 12: the incremental layout (every tenant's data spans two
    groups) plus repeated queries makes requests from different tenants
    interleave at the device, so query-oblivious policies (object-FCFS and,
    to a lesser degree, slack-FCFS) pay far more group switches than the
    query-aware ones even though the clients batch their requests.
    """
    catalog = tpch.build_catalog(scale, seed=seed)
    query = tpch.q12()
    schedulers = {
        "object-fcfs": ObjectFCFSScheduler,
        "slack-fcfs": SlackFCFSScheduler,
        "query-fcfs": QueryFCFSScheduler,
        "max-queries": MaxQueriesScheduler,
        "rank-based": RankBasedScheduler,
    }
    output: Dict[str, Dict[str, float]] = {}
    for label, scheduler_factory in schedulers.items():
        result = run_uniform_cluster(
            catalog,
            query,
            num_clients,
            mode="skipper",
            scheduler=scheduler_factory(),
            layout=IncrementalLayout(),
            switch_seconds=switch_seconds,
            cache_capacity=cache_capacity,
            repetitions=repetitions,
        )
        output[label] = {
            "avg_time": result.average_execution_time(),
            "group_switches": float(result.device_switches),
        }
    return output


def ablation_fairness_constant(
    constants: Sequence[float] = (0.0, 0.25, 1.0, 4.0),
    num_clients: int = 5,
    repetitions: int = 4,
    scale: str = "small",
    cache_capacity: int = 12,
    switch_seconds: float = DEFAULT_SWITCH_SECONDS,
    seed: int = 42,
) -> Dict[float, Dict[str, float]]:
    """Sweep the rank-based scheduler's fairness constant K (Section 4.4).

    ``K = 0`` degenerates to Max-Queries (efficient, unfair); larger K values
    weigh accumulated waiting time more heavily.  The paper derives ``K = 1``
    as the fairness-maximising choice.
    """
    catalog = tpch.build_catalog(scale, seed=seed)
    query = tpch.q12()
    ideal = run_uniform_cluster(
        catalog,
        query,
        num_clients=1,
        mode="skipper",
        switch_seconds=switch_seconds,
        cache_capacity=cache_capacity,
    ).average_execution_time()
    output: Dict[float, Dict[str, float]] = {}
    for constant in constants:
        result = run_uniform_cluster(
            catalog,
            query,
            num_clients,
            mode="skipper",
            scheduler=RankBasedScheduler(fairness_constant=constant),
            layout=SkewedLayout(_skew_pattern(num_clients)),
            switch_seconds=switch_seconds,
            cache_capacity=cache_capacity,
            repetitions=repetitions,
        )
        all_stretches = stretches(result.execution_times(), ideal)
        output[constant] = {
            "max_stretch": max_stretch(all_stretches),
            "l2_norm_stretch": l2_norm(all_stretches),
            "cumulative_time": result.cumulative_execution_time(),
            "group_switches": float(result.device_switches),
        }
    return output


def ablation_subplan_pruning(
    scale: str = "small",
    cache_capacity: int = 4,
    seed: int = 42,
) -> Dict[str, Dict[str, float]]:
    """Effect of empty-object subplan pruning on a clustered selective query.

    TPC-H Q12 is restricted to a narrow range of order keys.  Because line
    items are generated in order-key order, the matching tuples are clustered
    in a minority of segments and most lineitem segments are empty after
    filtering — the situation in which the paper argues pruning eliminates
    both subplans and re-issued requests.
    """
    catalog = tpch.build_catalog(scale, seed=seed)
    base = tpch.q12()
    from repro.engine.predicate import Comparison, Literal, col

    selective = Query(
        name="tpch_q12_selective",
        tables=base.tables,
        joins=base.joins,
        filters={"lineitem": Comparison("<", col("l_orderkey"), Literal(30))},
        group_by=base.group_by,
        aggregates=base.aggregates,
        order_by=base.order_by,
    )
    output: Dict[str, Dict[str, float]] = {}
    for label, pruning in (("pruning-on", True), ("pruning-off", False)):
        result = run_uniform_cluster(
            catalog,
            selective,
            num_clients=1,
            mode="skipper",
            cache_capacity=cache_capacity,
            enable_pruning=pruning,
        )
        client_results = next(iter(result.results_by_client.values()))
        query_result = client_results[0]
        output[label] = {
            "avg_time": result.average_execution_time(),
            "get_requests": float(query_result.num_requests),
            "subplans_executed": float(query_result.subplans_executed),
            "subplans_pruned": float(query_result.subplans_pruned),
        }
    return output
