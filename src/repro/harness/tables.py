"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        return f"{value:.3f}".rstrip("0").rstrip(".") if value != 0 else "0"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render ``rows`` under ``headers`` as a fixed-width text table."""
    rendered_rows: List[List[str]] = [[_format_cell(value) for value in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_line([str(header) for header in headers]))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


def render_mapping(mapping: Mapping[str, object], title: str = "") -> str:
    """Render a flat mapping as a two-column table."""
    return format_table(["key", "value"], list(mapping.items()), title=title)


def format_admission_table(summary: Mapping[str, object], title: str = "") -> str:
    """Render an admission-controller summary as per-tenant rows plus totals.

    ``summary`` is the dict produced by
    :meth:`repro.service.admission.AdmissionController.summary` (also carried
    on ``ClusterResult.admission`` and scenario reports).
    """
    headers = ["tenant", "submitted", "admitted", "queued", "rejected", "mean queue delay (s)"]
    rows = [
        [
            tenant,
            counters["submitted"],
            counters["admitted"],
            counters["queued"],
            counters["rejected"],
            counters["mean_queue_delay"],
        ]
        for tenant, counters in summary.get("per_tenant", {}).items()
    ]
    rows.append(
        [
            "TOTAL",
            summary["submitted"],
            summary["admitted"],
            summary["queued"],
            summary["rejected"],
            summary["queue_delay"]["mean"],
        ]
    )
    if not title:
        config = summary.get("config", {})
        title = (
            f"admission: in-flight cap {config.get('max_in_flight')} "
            f"(per-tenant {config.get('max_in_flight_per_tenant')}), "
            f"queue depth {config.get('max_queue_depth')}"
        )
    return format_table(headers, rows, title=title)
