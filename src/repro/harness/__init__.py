"""Experiment harness: one entry point per table / figure in the paper.

Every experiment function in :mod:`repro.harness.experiments` builds the
relevant workload, wires up a batch run through the service façade
(:class:`~repro.service.service.StorageService`: tenants + layout +
scheduler + CSD), runs it over simulated time and returns a plain-data
summary that the benchmarks print and EXPERIMENTS.md records.
:mod:`repro.harness.tables` renders those summaries as fixed-width text
tables.
"""

from repro.harness.tables import format_admission_table, format_table, render_mapping
from repro.harness import experiments

__all__ = ["experiments", "format_admission_table", "format_table", "render_mapping"]
