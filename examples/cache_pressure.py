#!/usr/bin/env python3
"""Cache pressure and re-issued requests (Figure 11b/11c at reduced scale).

Runs TPC-H Q5 — the six-table join whose inputs nearly cover the whole
dataset — with Skipper under decreasing cache capacities and reports the
average execution time and the number of GET requests per client (initial
requests plus re-issues of evicted objects).  It also compares the paper's
maximal-progress eviction policy against simpler alternatives.

Run with::

    python examples/cache_pressure.py
"""

from repro.service import experiments, format_table


def main() -> None:
    sweep = experiments.figure11b_cache_size(
        cache_sizes=(6, 8, 10, 14, 18), num_clients=2, scale="small"
    )
    rows = [
        [size, round(time, 1), round(gets, 1)]
        for size, time, gets in zip(
            sweep["cache_size"], sweep["skipper_time"], sweep["get_requests_per_client"]
        )
    ]
    print(
        format_table(
            ["cache size (objects)", "avg execution time (s)", "GET requests / client"],
            rows,
            title="Skipper under cache pressure (TPC-H Q5, 2 clients, small scale)",
        )
    )
    print(f"\nVanilla pull-based baseline: {sweep['postgresql_time']:.1f} s")

    print()
    ablation = experiments.ablation_eviction_policies(
        cache_capacity=8, num_clients=2, scale="small"
    )
    rows = [
        [policy, round(values["avg_time"], 1), round(values["get_requests_per_client"], 1)]
        for policy, values in ablation.items()
    ]
    print(
        format_table(
            ["eviction policy", "avg execution time (s)", "GET requests / client"],
            rows,
            title="Cache-eviction-policy ablation (cache of 8 objects)",
        )
    )


if __name__ == "__main__":
    main()
