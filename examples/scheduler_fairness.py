#!/usr/bin/env python3
"""Balancing efficiency and fairness in the CSD I/O scheduler.

Recreates the paper's Figure 12 at a reduced scale: five Skipper clients on a
*skewed* layout (two disk groups hold two tenants each, the third holds a
single tenant) repeatedly run TPC-H Q12 while the CSD uses one of three
scheduling policies:

* query-FCFS ("fairness") — fair but switch-happy,
* Max-Queries ("maxquery") — efficient but starves the lone tenant,
* the paper's rank-based policy ("ranking") — balances both.

The script reports the L2 norm of stretch, the maximum stretch and the
cumulative workload time per policy.

Run with::

    python examples/scheduler_fairness.py
"""

from repro.service import experiments, format_table


def main() -> None:
    results = experiments.figure12_fairness(
        num_clients=5, repetitions=3, scale="small", cache_capacity=12
    )
    rows = [
        [
            policy,
            round(values["l2_norm_stretch"], 2),
            round(values["max_stretch"], 2),
            round(values["mean_stretch"], 2),
            round(values["cumulative_time"], 1),
            int(values["group_switches"]),
        ]
        for policy, values in results.items()
    ]
    print(
        format_table(
            ["policy", "L2-norm stretch", "max stretch", "mean stretch",
             "cumulative time (s)", "group switches"],
            rows,
            title="Fairness vs. efficiency of CSD I/O scheduling policies (skewed layout)",
        )
    )
    print()
    print("Expected shape (paper, Figure 12): maxquery minimises cumulative time but has")
    print("the largest max stretch; fairness (FCFS) minimises stretch at the cost of time;")
    print("ranking sits in between on both metrics.")


if __name__ == "__main__":
    main()
