#!/usr/bin/env python3
"""Quickstart: sessions and query handles on the storage-service façade.

Builds a small TPC-H-like dataset, stands up a :class:`StorageService` over
an emulated Cold Storage Device, opens one Skipper session and one vanilla
(pull-based) session, submits TPC-H Q12 through both and drives the
simulation to completion.  The two executors must agree on the answer, and
each :class:`QueryHandle` carries the submit/start/finish timeline and the
simulated execution-time metrics Skipper collects.

Run with::

    python examples/quickstart.py
"""

from repro.service import (
    ClientSpec,
    ClusterConfig,
    StorageService,
    canonical_rows,
    format_table,
    workloads,
)

tpch = workloads.tpch


def main() -> None:
    # 1. Generate the dataset and the query.
    catalog = tpch.build_catalog("small", seed=42)
    query = tpch.q12()

    # 2. One service, two tenants: Skipper vs the pull-based baseline.
    config = ClusterConfig(
        client_specs=[
            ClientSpec(client_id="skipper", queries=[query], mode="skipper", cache_capacity=8),
            ClientSpec(client_id="vanilla", queries=[query], mode="vanilla"),
        ]
    )
    service = StorageService(config, catalog=catalog)

    # 3. Open a session per tenant and submit the query through the façade.
    handles = {}
    for tenant in ("skipper", "vanilla"):
        session = service.open_session(tenant)
        handles[tenant] = session.submit(query)
        session.close()

    # 4. Drive the simulation until every submitted query has resolved.
    service.run()

    # 5. Both executors must produce the same answer.
    skipper_rows = canonical_rows(handles["skipper"].result().rows)
    vanilla_rows = canonical_rows(handles["vanilla"].result().rows)
    assert skipper_rows == vanilla_rows, "executors disagree on the query answer"
    print(f"answer verified: {len(skipper_rows)} groups, executors agree\n")

    # 6. Report each handle's lifecycle and measurements.
    rows = []
    for tenant, handle in handles.items():
        result = handle.result()
        rows.append(
            [
                tenant,
                handle.status,
                round(handle.submitted_at, 1),
                round(handle.started_at, 1),
                round(handle.finished_at, 1),
                round(result.execution_time, 1),
                result.num_requests,
            ]
        )
    print(
        format_table(
            ["session", "status", "submitted", "started", "finished",
             "execution time (s)", "GET requests"],
            rows,
            title="Query handles after StorageService.run() (simulated seconds)",
        )
    )


if __name__ == "__main__":
    main()
