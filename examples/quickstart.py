#!/usr/bin/env python3
"""Quickstart: run one query with Skipper on a simulated Cold Storage Device.

Builds a small TPC-H-like dataset, stores it as objects on an emulated CSD,
executes TPC-H Q12 with the cache-aware MJoin executor and verifies that the
answer matches a plain in-memory execution.  Also prints the simulated
execution-time metrics Skipper collects.

Run with::

    python examples/quickstart.py
"""

from repro.core import SkipperExecutor
from repro.csd import (
    AllInOneLayout,
    ColdStorageDevice,
    DeviceConfig,
    ObjectStore,
    RankBasedScheduler,
)
from repro.engine import InMemoryExecutor
from repro.engine.executor import canonical_rows
from repro.sim import Environment
from repro.workloads import tpch


def main() -> None:
    # 1. Generate the dataset and the query.
    catalog = tpch.build_catalog("small", seed=42)
    query = tpch.q12()

    # 2. Ground truth: run the query directly over the in-memory relations.
    expected = InMemoryExecutor(catalog).execute(query)

    # 3. Store every segment as an object on an emulated CSD.
    env = Environment()
    store = ObjectStore()
    keys = []
    for table in query.tables:
        keys.extend(
            store.put_segment("tenant0", segment.segment_id, segment)
            for segment in catalog.relation(table).segments
        )
    layout = AllInOneLayout().build({"tenant0": keys})
    device = ColdStorageDevice(
        env,
        store,
        layout,
        RankBasedScheduler(),
        DeviceConfig(group_switch_seconds=10.0, transfer_seconds_per_object=9.6),
    )

    # 4. Execute the query with Skipper (cache of 8 objects forces evictions).
    executor = SkipperExecutor(env, "tenant0", catalog, device, cache_capacity=8)
    process = env.process(executor.execute(query))
    env.run(until=process)
    result = process.value

    # 5. Report.
    print(f"Query          : {query.name}")
    print(f"Answer matches : {canonical_rows(result.rows) == canonical_rows(expected.rows)}")
    for row in result.rows:
        print(f"  {row}")
    print(f"Simulated time : {result.execution_time:8.1f} s")
    print(f"Processing time: {result.processing_time:8.1f} s")
    print(f"GET requests   : {result.num_requests}")
    print(f"Request cycles : {result.num_cycles}")
    print(f"Cache evictions: {result.num_evictions}")
    print(
        "Subplans       : "
        f"{result.subplans_executed} executed, {result.subplans_pruned} pruned "
        f"of {result.subplans_total}"
    )


if __name__ == "__main__":
    main()
