#!/usr/bin/env python3
"""Multi-tenant analytics on a shared Cold Storage Device.

Recreates the paper's headline comparison (Figures 4 and 7) at a reduced
scale: several database clients, each with its own copy of a TPC-H-like
dataset on its own disk group, run TPC-H Q12 concurrently against one shared
CSD.  The script compares

* vanilla pull-based clients on the CSD (object-FCFS scheduling),
* Skipper clients on the CSD (cache-aware MJoin + rank-based scheduling), and
* the ideal HDD-based capacity tier (single group, no switches),

and prints average execution times for 1..N clients.

Run with::

    python examples/multi_tenant_analytics.py [max_clients]
"""

import sys

from repro.service import experiments, format_table


def main(max_clients: int = 4) -> None:
    client_counts = tuple(range(1, max_clients + 1))
    results = experiments.figure7_skipper_scaling(
        client_counts=client_counts, scale="small", cache_capacity=12
    )

    rows = []
    for index, count in enumerate(results["clients"]):
        vanilla = results["postgresql"][index]
        skipper = results["skipper"][index]
        ideal = results["ideal"][index]
        rows.append(
            [
                count,
                round(vanilla, 1),
                round(skipper, 1),
                round(ideal, 1),
                round(vanilla / skipper, 2),
                round(skipper / ideal, 2),
            ]
        )
    print(
        format_table(
            ["clients", "postgresql-on-CSD (s)", "skipper-on-CSD (s)", "ideal HDD (s)",
             "speedup vs postgresql", "slowdown vs ideal"],
            rows,
            title="Average TPC-H Q12 execution time on a shared CSD (simulated seconds)",
        )
    )

    breakdown = experiments.figure9_breakdown(
        num_clients=max_clients, scale="small", cache_capacity=12
    )
    rows = [
        [
            system,
            f"{values['switch_fraction'] * 100:.1f}%",
            f"{values['transfer_fraction'] * 100:.1f}%",
            f"{values['processing_fraction'] * 100:.1f}%",
        ]
        for system, values in breakdown.items()
    ]
    print()
    print(
        format_table(
            ["system", "switch wait", "transfer wait", "processing"],
            rows,
            title=f"Execution-time breakdown with {max_clients} concurrent clients",
        )
    )


if __name__ == "__main__":
    max_clients = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    main(max_clients)
