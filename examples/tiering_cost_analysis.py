#!/usr/bin/env python3
"""Storage-tiering acquisition-cost analysis (Table 1, Figures 2 and 3).

Computes the cost of housing a database under the storage strategies the
paper examines, and the savings of replacing the capacity + archival tiers
with a CSD-based cold storage tier at several CSD price points.

Run with::

    python examples/tiering_cost_analysis.py [database_terabytes]
"""

import sys

from repro.service import experiments, format_table


def main(database_terabytes: float = 100.0) -> None:
    database_gb = database_terabytes * 1024

    figure2 = experiments.table1_figure2_tiering_cost(database_gb=database_gb)
    rows = [[name, round(cost, 2)] for name, cost in figure2.items()]
    print(
        format_table(
            ["configuration", "cost (x1000 $)"],
            rows,
            title=f"Figure 2: acquisition cost of a {database_terabytes:.0f} TB database",
        )
    )

    figure3 = experiments.figure3_cst_savings(database_gb=database_gb)
    rows = []
    for base, per_price in figure3.items():
        for price, values in per_price.items():
            rows.append(
                [
                    base,
                    price,
                    round(values["traditional_cost"], 1),
                    round(values["csd_cost"], 1),
                    round(values["savings_factor"], 2),
                ]
            )
    print()
    print(
        format_table(
            ["base strategy", "CSD $/GB", "traditional (x1000 $)", "with CST (x1000 $)",
             "savings factor"],
            rows,
            title="Figure 3: savings of the CSD-based cold storage tier",
        )
    )


if __name__ == "__main__":
    terabytes = float(sys.argv[1]) if len(sys.argv) > 1 else 100.0
    main(terabytes)
