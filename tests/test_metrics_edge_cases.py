"""Edge cases for :mod:`repro.cluster.metrics`.

The scenario engine leans on these metrics for every golden file, so the
corner cases — empty inputs, single queries, overlapping blocked intervals —
get explicit coverage here.  The overlapping-interval tests pin the fix for
a real double-counting bug: blocked intervals are unioned before being
intersected with device busy time.
"""

from __future__ import annotations

import pytest

from repro.cluster.client import ClientSpec
from repro.cluster.cluster import ClusterConfig, ClusterResult
from repro.cluster.metrics import (
    ExecutionBreakdown,
    attribute_waiting,
    imbalance_coefficient,
    jain_fairness,
    max_stretch,
    mean,
    merge_intervals,
    percentile,
    stretches,
)
from repro.csd.device import BusyInterval
from repro.exceptions import ConfigurationError
from repro.workloads import tpch


def switch(start, end, group=0):
    return BusyInterval(start=start, end=end, kind="switch", group_id=group)


def transfer(start, end, group=0):
    return BusyInterval(
        start=start, end=end, kind="transfer", group_id=group, client_id="c", query_id="q"
    )


class TestMergeIntervals:
    def test_empty(self):
        assert merge_intervals([]) == []

    def test_zero_length_intervals_dropped(self):
        assert merge_intervals([(3.0, 3.0), (1.0, 2.0)]) == [(1.0, 2.0)]

    def test_overlapping_and_nested_coalesce(self):
        merged = merge_intervals([(0.0, 5.0), (1.0, 2.0), (4.0, 8.0), (10.0, 11.0)])
        assert merged == [(0.0, 8.0), (10.0, 11.0)]

    def test_touching_intervals_coalesce(self):
        assert merge_intervals([(0.0, 1.0), (1.0, 2.0)]) == [(0.0, 2.0)]

    def test_unsorted_input(self):
        assert merge_intervals([(5.0, 6.0), (0.0, 1.0)]) == [(0.0, 1.0), (5.0, 6.0)]

    def test_inverted_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            merge_intervals([(2.0, 1.0)])


class TestAttributeWaiting:
    def test_empty_blocked_intervals(self):
        breakdown = attribute_waiting([], [switch(0.0, 10.0)], processing_time=2.0)
        assert breakdown.switch_wait == 0.0
        assert breakdown.transfer_wait == 0.0
        assert breakdown.other_wait == 0.0
        assert breakdown.total == 2.0

    def test_no_busy_intervals_all_other_wait(self):
        breakdown = attribute_waiting([(0.0, 4.0)], [])
        assert breakdown.other_wait == 4.0

    def test_overlapping_blocked_intervals_counted_once(self):
        """Duplicated/overlapping blocked intervals must not double-count."""
        busy = [switch(0.0, 10.0)]
        exact = attribute_waiting([(0.0, 10.0)], busy)
        duplicated = attribute_waiting([(0.0, 10.0), (0.0, 10.0)], busy)
        overlapping = attribute_waiting([(0.0, 6.0), (4.0, 10.0)], busy)
        assert exact.switch_wait == 10.0
        assert duplicated.switch_wait == exact.switch_wait
        assert overlapping.switch_wait == exact.switch_wait
        assert duplicated.total == exact.total

    def test_split_attribution(self):
        busy = [switch(0.0, 5.0), transfer(5.0, 8.0)]
        breakdown = attribute_waiting([(2.0, 9.0)], busy)
        assert breakdown.switch_wait == pytest.approx(3.0)
        assert breakdown.transfer_wait == pytest.approx(3.0)
        assert breakdown.other_wait == pytest.approx(1.0)

    def test_inverted_blocked_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            attribute_waiting([(5.0, 1.0)], [])

    def test_fractions_of_zero_total_are_zero(self):
        breakdown = ExecutionBreakdown(0.0, 0.0, 0.0, 0.0)
        assert breakdown.fractions() == {
            "processing": 0.0,
            "switch": 0.0,
            "transfer": 0.0,
            "other": 0.0,
        }


class TestClusterResultEdgeCases:
    def _empty_result(self):
        config = ClusterConfig(
            client_specs=[
                ClientSpec(client_id="c0", queries=[tpch.q12()], cache_capacity=8)
            ]
        )
        return ClusterResult(
            config=config,
            results_by_client={"c0": []},
            breakdowns_by_client={"c0": []},
            device_switches=0,
            device_objects_served=0,
            total_simulated_time=0.0,
        )

    def test_empty_results_average_is_zero(self):
        result = self._empty_result()
        assert result.execution_times() == []
        assert result.average_execution_time() == 0.0
        assert result.cumulative_execution_time() == 0.0
        assert result.total_get_requests() == 0

    def test_empty_results_breakdown_is_zero(self):
        breakdown = self._empty_result().average_breakdown()
        assert breakdown.total == 0.0

    def test_per_client_totals_with_empty_lists(self):
        assert self._empty_result().per_client_totals() == {"c0": 0.0}


class TestStretchMetrics:
    def test_single_query_breakdown(self):
        values = stretches([10.0], ideal_time=5.0)
        assert values == [2.0]
        assert max_stretch(values) == 2.0

    def test_nonpositive_ideal_rejected(self):
        with pytest.raises(ConfigurationError):
            stretches([1.0], ideal_time=0.0)

    def test_max_stretch_of_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            max_stretch([])

    def test_mean_of_empty_is_zero(self):
        assert mean([]) == 0.0


class TestPercentile:
    def test_single_value(self):
        assert percentile([7.0], 0.95) == 7.0

    def test_linear_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.5) == pytest.approx(2.5)
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0

    def test_order_independent(self):
        assert percentile([4.0, 1.0, 3.0, 2.0], 0.5) == percentile([1.0, 2.0, 3.0, 4.0], 0.5)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile([], 0.5)

    def test_fraction_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile([1.0], 1.5)
        with pytest.raises(ConfigurationError):
            percentile([1.0], -0.1)


class TestImbalanceCoefficient:
    def test_even_load_is_zero(self):
        assert imbalance_coefficient([4.0, 4.0, 4.0]) == 0.0

    def test_empty_and_all_zero_are_balanced_by_convention(self):
        assert imbalance_coefficient([]) == 0.0
        assert imbalance_coefficient([0.0, 0.0]) == 0.0

    def test_negative_values_rejected(self):
        # A negative load is broken accounting; it must not cancel against
        # positive loads into a zero mean and report as "perfectly balanced".
        with pytest.raises(ConfigurationError):
            imbalance_coefficient([1.0, -1.0])
        with pytest.raises(ConfigurationError):
            imbalance_coefficient([-3.0, -3.0])


class TestJainFairness:
    def test_even_allocation_is_one(self):
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_one_hot_allocation_is_one_over_n(self):
        assert jain_fairness([9.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)

    def test_all_zero_is_perfectly_fair(self):
        assert jain_fairness([0.0, 0.0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            jain_fairness([])

    def test_negative_values_rejected(self):
        with pytest.raises(ConfigurationError):
            jain_fairness([1.0, -1.0])
