"""Parallel scenario execution, perf budgets and report schema/diff UX."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import BudgetExceededError, GoldenMismatchError
from repro.scenarios import (
    ScenarioRunner,
    assert_dict_matches_golden,
    assert_matches_golden,
    check_budget,
    get_scenario,
    load_budgets,
    load_golden,
    run_scenarios,
    scenario_names,
    unified_diff_summary,
    write_budgets,
)
from repro.scenarios.budgets import budgets_path, check_wall_time
from repro.scenarios.parallel import reports_by_name
from repro.scenarios.report import SCHEMA_VERSION

#: A cheap but diverse subset for the byte-identity comparison (the full
#: registry is exercised serially by the golden tests and in CI by --jobs).
SUBSET = ["uniform", "bursty", "fleet-uniform", "fleet-device-loss", "multi-workload-mix"]


class TestParallelExecution:
    def test_parallel_reports_are_byte_identical_to_serial(self):
        serial = reports_by_name(run_scenarios(SUBSET, jobs=1))
        parallel = reports_by_name(run_scenarios(SUBSET, jobs=3))
        assert serial.keys() == parallel.keys() == set(SUBSET)
        for name in SUBSET:
            assert serial[name] == parallel[name], f"{name} diverged across processes"

    def test_outcomes_preserve_requested_order(self):
        outcomes = run_scenarios(SUBSET, jobs=2)
        assert [outcome.name for outcome in outcomes] == SUBSET

    def test_parallel_outcomes_match_committed_goldens(self):
        for outcome in run_scenarios(["uniform", "fleet-uniform"], jobs=2):
            assert outcome.ok
            assert_dict_matches_golden(outcome.name, json.loads(outcome.report_json))

    def test_scenario_errors_are_captured_not_raised(self):
        outcomes = run_scenarios(["uniform", "no-such-scenario"], jobs=2)
        by_name = {outcome.name: outcome for outcome in outcomes}
        assert by_name["uniform"].ok
        assert not by_name["no-such-scenario"].ok
        assert "unknown scenario" in by_name["no-such-scenario"].error


class TestBudgets:
    def test_committed_budgets_cover_every_scenario(self):
        document = load_budgets()
        assert set(document["budgets"]) == set(scenario_names())

    def test_current_runs_fit_their_budgets(self):
        document = load_budgets()
        report = ScenarioRunner().run(get_scenario("uniform"))
        check_budget("uniform", report.total_simulated_time, document)

    def test_blown_budget_raises_with_regen_hint(self):
        document = {"default_tolerance": 0.1, "budgets": {"x": {"simulated_time": 100.0}}}
        check_budget("x", 109.9, document)  # within tolerance
        with pytest.raises(BudgetExceededError, match="regen-budgets"):
            check_budget("x", 111.0, document)

    def test_per_scenario_tolerance_overrides_default(self):
        document = {
            "default_tolerance": 0.5,
            "budgets": {"x": {"simulated_time": 100.0, "tolerance": 0.01}},
        }
        with pytest.raises(BudgetExceededError):
            check_budget("x", 102.0, document)

    def test_missing_scenario_budget_fails(self):
        with pytest.raises(BudgetExceededError, match="no committed perf budget"):
            check_budget("never-budgeted", 1.0, {"budgets": {}})

    def test_write_and_reload_roundtrip(self, tmp_path):
        path = write_budgets({"a": 12.5, "b": 900.0}, golden_dir=tmp_path)
        assert path == budgets_path(tmp_path)
        document = load_budgets(golden_dir=tmp_path)
        assert document["budgets"]["a"]["simulated_time"] == 12.5
        check_budget("b", 900.0, document)

    def test_missing_budgets_file_fails_with_hint(self, tmp_path):
        with pytest.raises(BudgetExceededError, match="regen-budgets"):
            load_budgets(golden_dir=tmp_path)

    def test_corrupt_budgets_json_fails_as_budget_error(self, tmp_path):
        budgets_path(tmp_path).parent.mkdir(parents=True, exist_ok=True)
        budgets_path(tmp_path).write_text("{not json")
        with pytest.raises(BudgetExceededError, match="not valid JSON"):
            load_budgets(golden_dir=tmp_path)
        budgets_path(tmp_path).write_text('{"budgets": []}')
        with pytest.raises(BudgetExceededError, match="malformed"):
            load_budgets(golden_dir=tmp_path)

    def test_malformed_budget_entry_fails_as_budget_error(self):
        # A budget entry missing simulated_time must not escape as KeyError:
        # --check relies on every budget failure being a ReproError so the
        # remaining scenarios keep being checked.  The error names the
        # missing key instead of reporting a generic "malformed" entry.
        with pytest.raises(BudgetExceededError, match="missing its 'simulated_time'"):
            check_budget("x", 1.0, {"budgets": {"x": {}}})
        with pytest.raises(BudgetExceededError, match="missing its 'simulated_time'"):
            check_budget("x", 1.0, {"budgets": {"x": {"wall_time_budget": 5.0}}})
        with pytest.raises(BudgetExceededError, match="malformed"):
            check_budget("x", 1.0, {"budgets": {"x": {"simulated_time": "fast"}}})

    def test_wall_time_only_entries_are_rejected_at_write_time(self, tmp_path):
        # A wall time for a scenario absent from simulated_times would write
        # an entry with no simulated_time, which check_budget must reject;
        # refuse to write the poisoned file in the first place.
        with pytest.raises(BudgetExceededError, match="ghost"):
            write_budgets(
                {"a": 100.0}, golden_dir=tmp_path, wall_times={"a": 1.0, "ghost": 1.0}
            )
        assert not budgets_path(tmp_path).exists()


class TestWallTimeBudgets:
    def test_regen_writes_padded_wall_ceilings(self, tmp_path):
        write_budgets({"a": 100.0}, golden_dir=tmp_path, wall_times={"a": 1.0})
        document = load_budgets(golden_dir=tmp_path)
        entry = document["budgets"]["a"]
        assert entry["simulated_time"] == 100.0
        # Wall time is machine-dependent: the committed ceiling carries
        # generous headroom (x5, floored at 2s) to catch blowups, not drift.
        assert entry["wall_time_budget"] == 5.0
        write_budgets({"a": 100.0}, golden_dir=tmp_path, wall_times={"a": 0.01})
        document = load_budgets(golden_dir=tmp_path)
        assert document["budgets"]["a"]["wall_time_budget"] == 2.0

    def test_committed_budgets_carry_wall_ceilings(self):
        document = load_budgets()
        for name in scenario_names():
            assert document["budgets"][name]["wall_time_budget"] >= 2.0

    def test_enforcement_is_per_entry_opt_in(self):
        # No entry / no wall_time_budget key: the check passes silently —
        # that is what makes --enforce-wall-time safe to wire into CI as a
        # non-blocking step before every machine has a committed ceiling.
        check_wall_time("x", 1e9, {"budgets": {}})
        check_wall_time("x", 1e9, {"budgets": {"x": {"simulated_time": 1.0}}})

    def test_blown_wall_ceiling_raises_with_hints(self):
        document = {"budgets": {"x": {"wall_time_budget": 2.0}}}
        check_wall_time("x", 1.99, document)
        with pytest.raises(BudgetExceededError, match="enforce-wall-time"):
            check_wall_time("x", 2.01, document)
        with pytest.raises(BudgetExceededError, match="malformed"):
            check_wall_time("x", 1.0, {"budgets": {"x": {"wall_time_budget": "slow"}}})

    def test_check_cli_exposes_the_flag_defaulting_off(self):
        from repro.scenarios.__main__ import build_parser

        arguments = build_parser().parse_args(["--check"])
        assert arguments.enforce_wall_time is False
        arguments = build_parser().parse_args(["--check", "--enforce-wall-time"])
        assert arguments.enforce_wall_time is True


class TestReportSchema:
    def test_reports_carry_schema_version(self):
        report = ScenarioRunner().run(get_scenario("uniform"))
        assert report.to_dict()["schema_version"] == SCHEMA_VERSION

    def test_committed_goldens_carry_schema_version(self):
        for name in scenario_names():
            assert load_golden(name)["schema_version"] == SCHEMA_VERSION


class TestGoldenDiffUX:
    def test_mismatch_error_includes_unified_diff(self):
        report = ScenarioRunner().run(get_scenario("uniform"))
        live = report.to_dict()
        live["cluster"]["device_switches"] += 1
        with pytest.raises(GoldenMismatchError) as excinfo:
            assert_dict_matches_golden("uniform", live)
        message = str(excinfo.value)
        assert "--- golden/uniform.json" in message
        assert "+++ live/uniform.json" in message
        assert "device_switches" in message

    def test_unified_diff_summary_truncates(self):
        live = {f"key{index}": index for index in range(200)}
        golden = {f"key{index}": index + 1 for index in range(200)}
        summary = unified_diff_summary(live, golden, "x", max_lines=10)
        assert "omitted" in summary

    def test_matching_report_raises_nothing(self):
        report = ScenarioRunner().run(get_scenario("uniform"))
        assert_matches_golden(report)
