"""Unit tests for subplan enumeration and tracking."""

import pytest

from repro.core.subplan import SubplanTracker, enumerate_subplans
from repro.exceptions import QueryError
from repro.workloads import tpch


@pytest.fixture()
def q12_tracker(tiny_tpch_catalog):
    return SubplanTracker(tpch.q12(), tiny_tpch_catalog)


class TestEnumeration:
    def test_table2_example(self):
        """The paper's Table 2: 2 x 2 x 2 segments -> 8 subplans."""
        subplans = enumerate_subplans(
            {"A": ["A.1", "A.2"], "B": ["B.1", "B.2"], "C": ["C.1", "C.3"]}
        )
        assert len(subplans) == 8
        assert ("A.1", "B.1", "C.1") in subplans
        assert ("A.2", "B.2", "C.3") in subplans
        assert len(set(subplans)) == 8

    def test_total_is_product_of_segment_counts(self, tiny_tpch_catalog, q12_tracker):
        expected = tiny_tpch_catalog.num_segments("orders") * tiny_tpch_catalog.num_segments(
            "lineitem"
        )
        assert q12_tracker.total_subplans == expected
        assert q12_tracker.num_pending == expected

    def test_q5_subplans_product(self, tiny_tpch_catalog):
        tracker = SubplanTracker(tpch.q5(), tiny_tpch_catalog)
        expected = 1
        for table in tpch.q5().tables:
            expected *= tiny_tpch_catalog.num_segments(table)
        assert tracker.total_subplans == expected

    def test_table_order_must_cover_query(self, tiny_tpch_catalog):
        with pytest.raises(QueryError):
            SubplanTracker(tpch.q12(), tiny_tpch_catalog, table_order=["orders"])


class TestTrackerTransitions:
    def test_mark_executed_moves_state(self, q12_tracker):
        subplan = q12_tracker.pending_subplans()[0]
        q12_tracker.mark_executed(subplan)
        assert q12_tracker.num_executed == 1
        assert not q12_tracker.is_pending(subplan)
        with pytest.raises(QueryError):
            q12_tracker.mark_executed(subplan)

    def test_pending_count_for_object(self, tiny_tpch_catalog, q12_tracker):
        lineitem_segments = tiny_tpch_catalog.num_segments("lineitem")
        orders_segments = tiny_tpch_catalog.num_segments("orders")
        assert q12_tracker.pending_count_for("orders.0") == lineitem_segments
        assert q12_tracker.pending_count_for("lineitem.0") == orders_segments
        assert q12_tracker.pending_count_for("unknown.0") == 0

    def test_prune_object_discards_its_subplans(self, tiny_tpch_catalog, q12_tracker):
        before = q12_tracker.num_pending
        pruned = q12_tracker.prune_object("lineitem.0")
        assert len(pruned) == tiny_tpch_catalog.num_segments("orders")
        assert q12_tracker.num_pending == before - len(pruned)
        assert q12_tracker.num_pruned == len(pruned)
        assert q12_tracker.pending_count_for("lineitem.0") == 0

    def test_objects_needed_shrinks_as_subplans_finish(self, q12_tracker):
        assert "lineitem.0" in q12_tracker.objects_needed()
        q12_tracker.prune_object("lineitem.0")
        assert "lineitem.0" not in q12_tracker.objects_needed()

    def test_has_pending_goes_false_when_everything_handled(self, tiny_tpch_catalog):
        tracker = SubplanTracker(tpch.q12(), tiny_tpch_catalog)
        for segment_id in tiny_tpch_catalog.segment_ids("lineitem"):
            tracker.prune_object(segment_id)
        assert not tracker.has_pending()
        assert tracker.num_pending == 0


class TestRunnableComputation:
    def test_newly_runnable_requires_full_coverage(self, q12_tracker):
        runnable = q12_tracker.newly_runnable({"orders.0"}, "lineitem.0")
        assert len(runnable) == 1
        assert set(runnable[0].segments) == {"orders.0", "lineitem.0"}
        assert q12_tracker.newly_runnable(set(), "lineitem.0") == []

    def test_newly_runnable_excludes_executed(self, q12_tracker):
        runnable = q12_tracker.newly_runnable({"orders.0"}, "lineitem.0")
        q12_tracker.mark_executed(runnable[0])
        assert q12_tracker.newly_runnable({"orders.0"}, "lineitem.0") == []

    def test_executable_counts_match_paper_example(self):
        """Recreate the worked example of Section 4.2.

        Cache = (A.1, B.1, A.2, C.3), arrivals already executed
        <A.1,B.1,C.3> and <A.2,B.1,C.3>, new object C.1.  Executable counts
        must be 1 for A.1 and A.2, 2 for B.1 and 0 for C.3, so the maximal
        progress policy evicts C.3.
        """
        from repro.engine import Catalog, Column, DataType, Relation, TableSchema
        from repro.engine.query import AggregateSpec, JoinCondition, Query

        catalog = Catalog()
        specs = {"a": ("a_key", 2), "b": ("b_key", 2), "c": ("c_key", 2)}
        for table, (column, segments) in specs.items():
            schema = TableSchema(table, [Column(column, DataType.INTEGER)])
            rows = [{column: index} for index in range(segments)]
            catalog.register(Relation.from_rows(schema, rows, rows_per_segment=1))
        query = Query(
            name="abc",
            tables=["a", "b", "c"],
            joins=[
                JoinCondition("a", "a_key", "b", "b_key"),
                JoinCondition("b", "b_key", "c", "c_key"),
            ],
            group_by=[],
            aggregates=[AggregateSpec("count", None, "cnt")],
        )
        tracker = SubplanTracker(query, catalog, table_order=["a", "b", "c"])
        # Map the paper's names onto segment ids: X.1 -> x.0, X.2/X.3 -> x.1.
        executed = [("a.0", "b.0", "c.1"), ("a.1", "b.0", "c.1")]
        for combination in executed:
            for subplan in tracker.pending_subplans():
                if set(subplan.segments) == set(combination):
                    tracker.mark_executed(subplan)
                    break
        cache = {"a.0", "b.0", "a.1", "c.1"}
        counts = tracker.executable_counts(cache, "c.0")
        assert counts["a.0"] == 1
        assert counts["a.1"] == 1
        assert counts["b.0"] == 2
        assert counts["c.1"] == 0
