"""Elastic fleet membership: epochs, migration plans, rebalancing scenarios.

Pins the acceptance criteria of the elastic-fleet work: a mid-run join loses
zero objects, moves at most 2·K/N of K keys, and strictly lowers the
post-join imbalance coefficient; a graceful leave hands its queue off and
re-homes its replicas; heterogeneous device profiles reach the devices; and
sessions survive membership changes without noticing them.
"""

from __future__ import annotations

import pytest

from repro.csd.device import DeviceConfig
from repro.csd.disk_group import DiskGroupLayout
from repro.csd.layout import TenantColocatedLayout, extend_layout_with_keys
from repro.exceptions import FleetError, LayoutError, ScenarioError
from repro.fleet.membership import FleetMembership, resolve_device_config
from repro.fleet.migration import plan_migration
from repro.fleet.spec import (
    DeviceFailure,
    DeviceJoin,
    DeviceLeave,
    DeviceProfile,
    FleetSpec,
)
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ScenarioSpec, uniform_tenants
from repro.scenarios.runner import ScenarioRunner
from repro.service import StorageService
from repro.workloads import tpch

RUNNER = ScenarioRunner()


@pytest.fixture(scope="module")
def elastic_reports():
    """Each elastic scenario run once for the whole module."""
    names = ["fleet-elastic-join", "fleet-elastic-drain", "fleet-rebalance-under-load"]
    return {name: RUNNER.run(get_scenario(name)) for name in names}


class TestMembershipModel:
    def test_epoch_advances_once_per_change(self):
        spec = FleetSpec(
            devices=3,
            replication=2,
            events=(DeviceJoin(3, 10.0), DeviceLeave(0, 20.0)),
        )
        membership = FleetMembership(spec, DeviceConfig())
        assert membership.epoch == 0
        membership.join(DeviceJoin(3, 10.0), 10.0)
        assert membership.epoch == 1
        assert membership.serving_ids() == ("csd0", "csd1", "csd2", "csd3")
        membership.leave("csd0", 20.0)
        assert membership.epoch == 2
        assert membership.serving_ids() == ("csd1", "csd2", "csd3")
        membership.fail("csd1", 30.0)
        assert membership.epoch == 3
        assert membership.serving_ids() == ("csd2", "csd3")
        kinds = [record.kind for record in membership.epoch_log]
        assert kinds == ["join", "leave", "failure"]
        assert [record.epoch for record in membership.epoch_log] == [1, 2, 3]

    def test_membership_changes_cannot_go_back_in_time(self):
        spec = FleetSpec(devices=3, replication=2, events=(DeviceJoin(3, 50.0),))
        membership = FleetMembership(spec, DeviceConfig())
        membership.join(DeviceJoin(3, 50.0), 50.0)
        with pytest.raises(FleetError, match="precedes"):
            membership.leave("csd0", 10.0)

    def test_double_leave_and_unknown_member_rejected(self):
        membership = FleetMembership(FleetSpec(devices=2, replication=1), DeviceConfig())
        membership.leave("csd0", 5.0)
        with pytest.raises(FleetError, match="not serving"):
            membership.leave("csd0", 6.0)
        with pytest.raises(FleetError, match="unknown"):
            membership.leave("csd9", 7.0)

    def test_profiles_resolve_into_per_device_configs(self):
        base = DeviceConfig(group_switch_seconds=10.0, transfer_seconds_per_object=9.6)
        spec = FleetSpec(
            devices=2,
            replication=1,
            events=(DeviceJoin(2, 30.0, transfer_seconds=4.8),),
            profiles=(DeviceProfile(device=1, switch_seconds=40.0),),
        )
        membership = FleetMembership(spec, base)
        assert membership.device_config("csd0") == base
        assert membership.device_config("csd1").group_switch_seconds == 40.0
        assert membership.device_config("csd1").transfer_seconds_per_object == 9.6
        joined = membership.join(DeviceJoin(2, 30.0, transfer_seconds=4.8), 30.0)
        assert joined.config.transfer_seconds_per_object == 4.8
        assert membership.heterogeneous

    def test_resolve_device_config_keeps_base_when_no_overrides(self):
        base = DeviceConfig()
        assert resolve_device_config(base) is base
        derived = resolve_device_config(base, switch_seconds=1.0)
        assert derived.group_switch_seconds == 1.0
        assert derived.transfer_seconds_per_object == base.transfer_seconds_per_object


class TestMigrationPlanner:
    def test_only_changed_keys_move(self):
        old = {"a/t.0": ("csd0",), "a/t.1": ("csd1",), "a/t.2": ("csd0",)}
        new = {"a/t.0": ("csd0",), "a/t.1": ("csd2",), "a/t.2": ("csd0",)}
        plan = plan_migration(
            1, 10.0, "join", "csd2", old, new, devices_before=2, devices_after=3
        )
        assert plan.keys_moved == 1
        assert plan.objects_migrated == 1
        assert plan.moves[0].object_key == "a/t.1"
        assert plan.moves[0].source == "csd1"
        assert plan.moves[0].dest == "csd2"

    def test_dead_sources_are_skipped(self):
        old = {"a/t.0": ("csd0", "csd1")}
        new = {"a/t.0": ("csd1", "csd2")}
        plan = plan_migration(
            1, 0.0, "leave", "csd0", old, new, alive={"csd0": False, "csd1": True}
        )
        assert plan.moves[0].source == "csd1"

    def test_migration_bound_caps_at_full_reshuffle(self):
        plan = plan_migration(1, 0.0, "join", "csd2", {}, {}, replication=3)
        plan.total_keys = 10
        plan.devices_before = 2
        plan.devices_after = 3
        assert plan.migration_bound() == 10  # min(K, ceil(2*3*10/2)) == K


class TestSpecValidation:
    def test_join_must_use_fresh_index(self):
        with pytest.raises(ScenarioError, match="fresh indexes"):
            FleetSpec(devices=3, events=(DeviceJoin(1, 10.0),))

    def test_leave_of_unknown_joiner_rejected(self):
        with pytest.raises(ScenarioError, match="never joins"):
            FleetSpec(devices=2, events=(DeviceLeave(5, 10.0),))

    def test_leave_before_join_rejected(self):
        with pytest.raises(ScenarioError, match="join strictly before"):
            FleetSpec(
                devices=2,
                events=(DeviceJoin(2, 20.0), DeviceLeave(2, 10.0)),
            )

    def test_events_require_consistent_hash(self):
        with pytest.raises(ScenarioError, match="consistent-hash"):
            FleetSpec(
                devices=3, placement="round-robin", events=(DeviceJoin(3, 10.0),)
            )

    def test_fleet_cannot_shrink_below_replication(self):
        with pytest.raises(ScenarioError, match="below the replication factor"):
            FleetSpec(devices=2, replication=2, events=(DeviceLeave(0, 10.0),))

    def test_leave_and_failure_are_mutually_exclusive(self):
        with pytest.raises(ScenarioError, match="fails and leaves"):
            FleetSpec(
                devices=3,
                replication=2,
                failures=(DeviceFailure(0, 5.0),),
                events=(DeviceLeave(0, 10.0),),
            )

    def test_profiles_checked_against_roster(self):
        with pytest.raises(ScenarioError, match="unknown device"):
            FleetSpec(devices=2, profiles=(DeviceProfile(device=7, switch_seconds=1.0),))
        with pytest.raises(ScenarioError, match="overrides nothing"):
            DeviceProfile(device=0)

    def test_spec_dict_roundtrips_events_and_profiles(self):
        spec = FleetSpec(
            devices=3,
            replication=2,
            events=(DeviceJoin(3, 10.0, transfer_seconds=4.8), DeviceLeave(0, 20.0)),
            profiles=(DeviceProfile(device=1, switch_seconds=40.0),),
        )
        description = spec.to_dict()
        assert description["events"][0]["kind"] == "join"
        assert description["events"][1]["kind"] == "leave"
        assert description["profiles"] == [
            {"device": 1, "switch_seconds": 40.0, "transfer_seconds": None}
        ]


class TestRebalanceUnderLoad:
    """The acceptance pins for the headline scenario."""

    def test_zero_objects_lost_across_the_join(self, elastic_reports):
        report = elastic_reports["fleet-rebalance-under-load"]
        assert report.fleet["lost_objects"] == 0
        assert "fleet-rebalance" in report.invariants_checked
        issued = sum(client.requests for client in report.clients.values())
        assert report.objects_served == issued > 0

    def test_join_moves_at_most_two_k_over_n_keys(self, elastic_reports):
        report = elastic_reports["fleet-rebalance-under-load"]
        plan = report.rebalance["plans"][0]
        total_keys = report.rebalance["naive_reshuffle_keys"]
        devices_before = plan["devices_before"]
        assert plan["kind"] == "join"
        assert 0 < plan["keys_moved"] <= 2 * total_keys / devices_before
        assert plan["keys_moved"] < total_keys  # strictly better than naive

    def test_join_strictly_lowers_the_imbalance_coefficient(self, elastic_reports):
        report = elastic_reports["fleet-rebalance-under-load"]
        series = report.rebalance["per_epoch_imbalance"]
        assert [entry["epoch"] for entry in series] == [0, 1]
        assert (
            series[1]["imbalance_coefficient"] < series[0]["imbalance_coefficient"]
        )

    def test_epoch_monotonicity_recorded(self, elastic_reports):
        report = elastic_reports["fleet-rebalance-under-load"]
        assert report.rebalance["epoch"] == 1
        events = report.rebalance["events"]
        assert [event["epoch"] for event in events] == [1]
        assert events[0]["kind"] == "join"


class TestElasticJoin:
    def test_joiner_absorbs_keys_and_serves_traffic(self, elastic_reports):
        report = elastic_reports["fleet-elastic-join"]
        joiner = report.fleet["per_device"]["csd3"]
        assert joiner["objects_placed"] > 0
        assert joiner["objects_served"] > 0
        assert report.rebalance["keys_moved_total"] > 0
        assert report.rebalance["bytes_migrated_total"] > 0

    def test_migration_interference_is_measured(self, elastic_reports):
        report = elastic_reports["fleet-elastic-join"]
        assert report.rebalance["migration_seconds_total"] > 0
        # The join lands mid-burst, so some migration I/O necessarily ran
        # while foreground requests were waiting.
        assert (
            0
            < report.rebalance["interference_seconds_total"]
            <= report.rebalance["migration_seconds_total"]
        )


class TestElasticDrain:
    def test_leaver_hands_off_and_goes_quiet(self):
        service = StorageService(get_scenario("fleet-elastic-drain"))
        service.run()
        fleet = service.fleet
        leaver = fleet.members[0]
        assert leaver.left_at == 50.0 and not leaver.alive
        assert fleet.stats.handed_off > 0
        assert fleet.pending_total() == 0
        after_leave = [
            interval
            for interval in leaver.device.busy_intervals
            if interval.start > leaver.left_at
        ]
        assert all(interval.kind == "migration" for interval in after_leave)

    def test_leavers_keys_are_rehomed_to_live_devices(self):
        service = StorageService(get_scenario("fleet-elastic-drain"))
        service.run()
        fleet = service.fleet
        for object_key, replicas in fleet.placement.items():
            assert "csd0" not in replicas
            for device_id in replicas:
                member = fleet._member_by_id[device_id]
                assert member.device.layout.has_object(object_key)
        assert service.fleet_epoch() == 1


class TestHeterogeneousFleet:
    def test_profiles_reach_the_devices(self):
        service = StorageService(get_scenario("fleet-heterogeneous"))
        configs = {
            member.device_id: member.device.config for member in service.fleet.members
        }
        assert configs["csd1"].group_switch_seconds == 40.0
        assert configs["csd1"].transfer_seconds_per_object == 19.2
        assert configs["csd2"].group_switch_seconds == 5.0
        assert configs["csd0"].group_switch_seconds == 10.0
        assert service.membership.heterogeneous

    def test_least_loaded_routing_steers_around_the_straggler(self):
        report = RUNNER.run(get_scenario("fleet-heterogeneous"))
        per_device = report.fleet["per_device"]
        # The straggler transfers at 2x the time of the baseline device and
        # 4x the fast one; least-loaded routing gives it the fewest objects.
        assert (
            per_device["csd1"]["objects_served"]
            < per_device["csd2"]["objects_served"]
        )


class TestMultiEpochSequences:
    def test_replica_sets_may_return_to_a_former_owner(self):
        """A device that joins and later leaves bounces keys back to their
        old owners; the re-adopted replicas are still resident (layouts are
        append-only) so the reverse plan costs no migration I/O."""
        spec = ScenarioSpec(
            name="join-then-leave",
            description="x",
            tenants=uniform_tenants(4, "tpch:q12", cache_capacity=8, repetitions=2),
            fleet=FleetSpec(
                devices=3,
                replication=2,
                events=(DeviceJoin(3, 30.0), DeviceLeave(3, 90.0)),
            ),
            seed=42,
        )
        report = RUNNER.run(spec)
        assert report.rebalance["epoch"] == 2
        join_plan, leave_plan = report.rebalance["plans"]
        assert join_plan["keys_moved"] > 0
        # Every key the leaver held bounces back to a device that already
        # stores it: zero copies, zero bytes.
        assert leave_plan["keys_moved"] == 0
        assert leave_plan["bytes_migrated"] == 0
        assert report.fleet["lost_objects"] == 0

    def test_leave_after_failure_never_reads_from_the_dead_device(self):
        """A key whose replicas were exactly {failed device, leaver} must be
        sourced from the leaver (which still holds the data), never from the
        fail-stopped device — a dead device performs no I/O, ever.  Repair is
        disabled so the loss is still unhealed when the leave fires (with
        repair on, the failure epoch would re-replicate immediately and the
        leave would always find a live source)."""
        spec = ScenarioSpec(
            name="leave-after-failure",
            description="x",
            tenants=uniform_tenants(4, "tpch:q12", cache_capacity=8),
            fleet=FleetSpec(
                devices=4,
                replication=2,
                failures=(DeviceFailure(device=1, at_seconds=30.0),),
                events=(DeviceLeave(device=0, at_seconds=60.0),),
                repair=False,
            ),
            seed=42,
        )
        report = RUNNER.run(spec)  # invariant checker would reject dead-device I/O
        assert {"fleet-failover", "fleet-rebalance"} <= set(report.invariants_checked)
        assert report.fleet["lost_objects"] == 0
        plans = report.rebalance["plans"]
        assert plans and plans[0]["kind"] == "leave"

    def test_transient_under_replication_rejected_at_spec_time(self):
        with pytest.raises(ScenarioError, match="timeline drops the fleet"):
            FleetSpec(
                devices=2,
                replication=2,
                events=(DeviceLeave(0, 10.0), DeviceJoin(2, 200.0)),
            )
        # The same counts in a safe order (grow before shrinking) validate.
        FleetSpec(
            devices=2,
            replication=2,
            events=(DeviceJoin(2, 10.0), DeviceLeave(0, 200.0)),
        )

    def test_membership_process_crashes_surface_their_root_cause(self):
        spec = ScenarioSpec(
            name="crashing-join",
            description="x",
            tenants=uniform_tenants(2, "tpch:q12", cache_capacity=8),
            fleet=FleetSpec(devices=2, replication=1, events=(DeviceJoin(2, 20.0),)),
            seed=42,
        )
        service = StorageService(spec)

        def explode(_event):
            raise RuntimeError("injected membership crash")

        service.fleet._apply_join = explode
        # Without propagation this starves the sessions and dies with an
        # unrelated "ran out of events" SimulationError.
        with pytest.raises(RuntimeError, match="injected membership crash"):
            service.run()


class TestSessionsSurviveMembershipChanges:
    def test_deferred_submits_straddle_a_join(self):
        spec = get_scenario("fleet-elastic-join")
        service = StorageService(spec)
        session = service.open_session("tenant0")
        before = session.submit(tpch.q12())
        after = session.submit(tpch.q12(), at=200.0)  # well past the join
        session.close()
        service.run()
        assert before.done and after.done
        assert service.fleet_epoch() == 1
        assert after.started_at >= 200.0
        # The session never reconnected: same session object served both
        # queries across the epoch boundary.
        assert session.results[0].execution_time > 0
        assert session.results[1].execution_time > 0


class TestLayoutExtension:
    def test_tenant_colocated_layout_packs_one_group_per_tenant(self):
        layout = TenantColocatedLayout().build(
            {"a": ["a/t.0", "a/t.1"], "b": ["b/t.0"]}
        )
        assert layout.group_of("a/t.0") == layout.group_of("a/t.1") == 0
        assert layout.group_of("b/t.0") == 1

    def test_extend_layout_coalesces_with_existing_tenant_group(self):
        layout = TenantColocatedLayout().build({"a": ["a/t.0"], "b": ["b/t.0"]})
        groups = extend_layout_with_keys(layout, ["a/t.1", "c/t.0", "c/t.1"])
        assert groups == [0, 2, 2]
        assert layout.group_of("a/t.1") == layout.group_of("a/t.0")
        assert layout.tenant_group_map()["c"] == 2

    def test_layout_is_append_only(self):
        layout = DiskGroupLayout({"a/t.0": 0})
        layout.add_object("a/t.1", 0)
        with pytest.raises(LayoutError, match="already placed"):
            layout.add_object("a/t.1", 1)
        with pytest.raises(LayoutError, match="negative"):
            layout.add_object("a/t.2", -1)
