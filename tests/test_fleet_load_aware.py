"""Load-aware placement and adaptive routing: weighted rings, latency
EWMAs, replica-choice policies and the feedback rebalancer.

The headline acceptance pin lives here: on the same mixed-speed fleet and
traffic, profile-weighted placement plus ewma-latency routing must beat the
hash-uniform least-loaded baseline on *both* tail latency and busy-time
imbalance.  The hypothesis section pins the weighted ring's contract: share
tracks weight, all-equal weights collapse to the unweighted ring byte for
byte, and the bulk arc-sweep agrees with per-key lookup.
"""

from __future__ import annotations

from typing import Dict

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.exceptions import ConfigurationError, ScenarioError
from repro.fleet.placement import ConsistentHashPlacement, normalize_weights
from repro.fleet.spec import FleetSpec, RebalancePolicy
from repro.obs import Ewma
from repro.scenarios import ScenarioRunner, get_scenario
from repro.scenarios.report import ScenarioReport

_RUNNER = ScenarioRunner()
_REPORTS: Dict[str, ScenarioReport] = {}


def report_for(name: str) -> ScenarioReport:
    if name not in _REPORTS:
        _REPORTS[name] = _RUNNER.run(get_scenario(name))
    return _REPORTS[name]


def keys(count: int) -> list:
    return [f"tenant{index % 5}/lineitem.{index}" for index in range(count)]


class TestNormalizeWeights:
    def test_mean_normalises_to_one(self):
        weights = normalize_weights({"a": 1.0, "b": 2.0, "c": 3.0})
        assert sum(weights.values()) == pytest.approx(3.0)
        assert weights["b"] == pytest.approx(1.0)

    def test_all_equal_weights_become_exactly_one(self):
        weights = normalize_weights({"a": 0.7, "b": 0.7, "c": 0.7})
        assert all(value == 1.0 for value in weights.values())

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf"), True, "2"])
    def test_degenerate_weight_values_are_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            normalize_weights({"a": 1.0, "b": bad})

    def test_empty_mapping_is_rejected(self):
        with pytest.raises(ConfigurationError):
            normalize_weights({})


class TestEwma:
    def test_first_sample_initialises_then_smooths(self):
        ewma = Ewma(alpha=0.5)
        assert ewma.observe(10.0) == 10.0
        assert ewma.observe(20.0) == 15.0
        assert ewma.count == 2

    def test_value_with_zero_samples_is_an_error(self):
        ewma = Ewma(alpha=0.3)
        with pytest.raises(ConfigurationError):
            _ = ewma.value
        assert ewma.value_or(0.0) == 0.0

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5, float("nan"), True])
    def test_degenerate_alpha_is_rejected(self, alpha):
        with pytest.raises(ConfigurationError):
            Ewma(alpha=alpha)

    def test_non_finite_samples_are_rejected(self):
        ewma = Ewma(alpha=0.3)
        with pytest.raises(ConfigurationError):
            ewma.observe(float("nan"))


class TestSpecValidation:
    def test_unknown_weighting_rejected(self):
        with pytest.raises(ScenarioError):
            FleetSpec(devices=3, weighting="guess")

    def test_profile_weighting_requires_consistent_hash(self):
        with pytest.raises(ScenarioError):
            FleetSpec(devices=3, placement="round-robin", weighting="profile")

    @pytest.mark.parametrize("alpha", [0.0, -0.5, 1.5])
    def test_ewma_alpha_out_of_range_rejected(self, alpha):
        with pytest.raises(ScenarioError):
            FleetSpec(devices=3, ewma_alpha=alpha)

    @pytest.mark.parametrize("interval", [0.0, -5.0, float("inf")])
    def test_rebalance_interval_must_be_positive_and_finite(self, interval):
        with pytest.raises(ScenarioError):
            RebalancePolicy(interval_seconds=interval)

    def test_rebalance_requires_consistent_hash(self):
        with pytest.raises(ScenarioError):
            FleetSpec(
                devices=3,
                placement="round-robin",
                rebalance=RebalancePolicy(interval_seconds=100.0),
            )


class TestWeightedRingProperties:
    @settings(
        max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        weights=st.lists(
            st.sampled_from([0.5, 1.0, 2.0]), min_size=2, max_size=4
        )
    )
    def test_primary_share_tracks_vnode_share(self, weights):
        """Each device's primary-key share stays close to its share of the
        ring's vnodes (which is the weight share, post-rounding)."""
        policy = ConsistentHashPlacement(replication=1, virtual_nodes=64)
        roster = [f"csd{index}" for index in range(len(weights))]
        policy.set_weights(dict(zip(roster, weights)))
        counts = policy.vnode_counts(roster)
        placement = policy.place(keys(1500), roster)
        owned = {device_id: 0 for device_id in roster}
        for replicas in placement.values():
            owned[replicas[0]] += 1
        total_vnodes = sum(counts)
        for device_id, vnodes in zip(roster, counts):
            expected = vnodes / total_vnodes
            observed = owned[device_id] / 1500
            # Hash placement is noisy; the bound only needs to separate
            # "share follows weight" from "weights ignored" (where every
            # share would sit at 1/len(roster)).
            assert abs(observed - expected) < 0.10

    @settings(max_examples=15, deadline=None)
    @given(
        weight=st.floats(
            min_value=0.1, max_value=9.0, allow_nan=False, allow_infinity=False
        ),
        devices=st.integers(min_value=1, max_value=5),
    )
    def test_all_equal_weights_ring_is_byte_identical_to_unweighted(
        self, weight, devices
    ):
        roster = [f"csd{index}" for index in range(devices)]
        population = keys(300)
        unweighted = ConsistentHashPlacement(replication=1, virtual_nodes=32)
        baseline = unweighted.place(population, roster)
        weighted = ConsistentHashPlacement(replication=1, virtual_nodes=32)
        weighted.set_weights({device_id: weight for device_id in roster})
        assert weighted.vnode_counts(roster) == (32,) * devices
        assert weighted.place(population, roster) == baseline

    @settings(
        max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        weights=st.lists(
            st.floats(
                min_value=0.25, max_value=4.0, allow_nan=False, allow_infinity=False
            ),
            min_size=2,
            max_size=4,
        ),
        replication=st.integers(min_value=1, max_value=2),
    )
    def test_bulk_weighted_place_matches_per_key_lookup(self, weights, replication):
        policy = ConsistentHashPlacement(
            replication=replication, virtual_nodes=48
        )
        roster = [f"csd{index}" for index in range(len(weights))]
        policy.set_weights(dict(zip(roster, weights)))
        population = keys(400)
        sorted_hashes = sorted(
            zip(policy.bulk_key_hashes(population), population)
        )
        bulk = policy.place(population, roster, sorted_key_hashes=sorted_hashes)
        for key in population[::7]:
            assert bulk[key] == policy.replicas_for(key, roster)


class TestLoadAwareScenarios:
    def test_load_aware_beats_hash_uniform_baseline(self):
        """The acceptance pin: same fleet, same traffic, same seed — the
        weighted ring + ewma-latency routing must strictly cut both the p99
        request latency and the busy-time imbalance coefficient."""
        baseline = report_for("fleet-load-aware-baseline")
        treated = report_for("fleet-load-aware")
        baseline_p99 = baseline.routing["request_latency"]["p99"]
        treated_p99 = treated.routing["request_latency"]["p99"]
        assert treated_p99 < baseline_p99
        assert (
            treated.fleet["imbalance_coefficient"]
            < baseline.fleet["imbalance_coefficient"]
        )

    def test_profile_weighting_shrinks_the_straggler_arc(self):
        routing = report_for("fleet-load-aware").routing
        per_device = routing["per_device"]
        # csd1 is the 2x-slow straggler, csd2 the 2x-fast device.
        assert per_device["csd1"]["weight"] < 1.0 < per_device["csd2"]["weight"]
        assert per_device["csd1"]["vnode_count"] < per_device["csd2"]["vnode_count"]
        assert routing["weighting"] == "profile"
        assert routing["replica_policy"] == "ewma-latency"

    def test_routing_section_shape(self):
        routing = report_for("fleet-load-aware").routing
        choices = routing["replica_choices"]
        latency = routing["request_latency"]
        assert choices["primary"] + choices["diverted"] == latency["count"] > 0
        assert latency["p50"] <= latency["p95"] <= latency["p99"] <= latency["max"]
        for entry in routing["per_device"].values():
            if entry["completed_requests"]:
                assert entry["ewma_latency_seconds"] > 0.0
                assert entry["mean_latency_seconds"] > 0.0
        assert report_for("uniform").routing is None

    def test_feedback_rebalancer_triggers_reweight_epochs(self):
        report = report_for("fleet-adaptive-rebalance")
        rebalancer = report.routing["rebalancer"]
        assert rebalancer["ticks"] >= 2
        assert rebalancer["reweight_epochs"] >= 1
        triggered = [entry for entry in rebalancer["log"] if entry["triggered"]]
        assert all(entry["outcome"] == "reweighted" for entry in triggered)
        reweight_epochs = [
            record
            for record in report.rebalance["events"]
            if record["kind"] == "reweight"
        ]
        assert len(reweight_epochs) == rebalancer["reweight_epochs"]
        reweight_plans = [
            plan for plan in report.rebalance["plans"] if plan["kind"] == "reweight"
        ]
        assert reweight_plans
        # Individual plans can move zero keys (every gained replica may be a
        # re-adoption of a still-resident copy), but a reweight that shifts
        # arc share must move something overall.
        assert sum(plan["keys_moved"] for plan in reweight_plans) > 0

    def test_rebalancer_log_entries_explain_skips(self):
        log = report_for("fleet-adaptive-rebalance").routing["rebalancer"]["log"]
        known = {
            "below-threshold",
            "insufficient-samples",
            "weights-stable",
            "reweighted",
        }
        assert log and all(entry["outcome"] in known for entry in log)
