"""Unit tests for the catalog."""

import pytest

from repro.engine import Catalog, Column, DataType, Relation, TableSchema
from repro.exceptions import CatalogError


def _relation(name: str, num_rows: int = 6, rows_per_segment: int = 3) -> Relation:
    schema = TableSchema(name, [Column(f"{name}_id", DataType.INTEGER)])
    rows = [{f"{name}_id": index} for index in range(num_rows)]
    return Relation.from_rows(schema, rows, rows_per_segment)


@pytest.fixture()
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.register_all([_relation("alpha"), _relation("beta", num_rows=9)])
    return catalog


def test_register_and_lookup(catalog):
    assert catalog.has_relation("alpha")
    assert not catalog.has_relation("gamma")
    assert catalog.table_names() == ["alpha", "beta"]
    assert catalog.relation("beta").num_rows == 9
    assert len(catalog) == 2
    assert "alpha" in catalog


def test_duplicate_registration_rejected(catalog):
    with pytest.raises(CatalogError):
        catalog.register(_relation("alpha"))


def test_unknown_relation_raises(catalog):
    with pytest.raises(CatalogError):
        catalog.relation("gamma")


def test_segment_metadata(catalog):
    assert catalog.num_segments("alpha") == 2
    assert catalog.segment_ids("beta") == ["beta.0", "beta.1", "beta.2"]
    assert catalog.segment_ids_for_tables(["alpha", "beta"]) == [
        "alpha.0",
        "alpha.1",
        "beta.0",
        "beta.1",
        "beta.2",
    ]
    assert catalog.total_segments() == 5
    assert catalog.total_segments(["alpha"]) == 2


def test_resolve_segment_id(catalog):
    segment = catalog.resolve_segment_id("beta.1")
    assert segment.table_name == "beta"
    assert segment.index == 1
    assert catalog.table_of_segment("alpha.0") == "alpha"


def test_resolve_malformed_segment_id(catalog):
    with pytest.raises(CatalogError):
        catalog.resolve_segment_id("no-dot-here")
    with pytest.raises(CatalogError):
        catalog.table_of_segment("gamma.0")


def test_find_column(catalog):
    assert catalog.find_column("alpha_id") == "alpha"
    with pytest.raises(CatalogError):
        catalog.find_column("missing_column")


def test_find_column_ambiguous():
    schema_a = TableSchema("a", [Column("shared", DataType.INTEGER)])
    schema_b = TableSchema("b", [Column("shared", DataType.INTEGER)])
    catalog = Catalog()
    catalog.register(Relation.from_rows(schema_a, [{"shared": 1}], 1))
    catalog.register(Relation.from_rows(schema_b, [{"shared": 1}], 1))
    with pytest.raises(CatalogError):
        catalog.find_column("shared")
