"""Property-based tests for the core data structures and invariants.

The headline invariant: Skipper's out-of-order, cache-constrained execution
produces exactly the same answer as an in-memory execution, for *any* arrival
order and any (feasible) cache size.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.cache import (
    FIFOEviction,
    LRUEviction,
    MaxPendingSubplansEviction,
    MaxProgressEviction,
    ObjectCache,
)
from repro.core.mjoin import MJoinStateManager
from repro.core.subplan import SubplanTracker
from repro.csd.layout import ClientsPerGroupLayout, IncrementalLayout
from repro.csd.ordering import SemanticRoundRobinOrdering
from repro.csd.request import GetRequest
from repro.csd.scheduler import RankBasedScheduler
from repro.engine import InMemoryExecutor
from repro.engine.executor import canonical_rows
from repro.engine.operators.aggregate import AggregateState
from repro.engine.predicate import col
from repro.engine.query import AggregateSpec
from repro.sim import Environment
from repro.workloads import tpch

# A single module-level catalog keeps data generation out of the hypothesis
# hot loop (the catalog is never mutated by the tests).
_CATALOG = tpch.build_catalog("tiny", seed=42)
_Q12 = tpch.q12()
_EXPECTED_Q12 = canonical_rows(InMemoryExecutor(_CATALOG).execute(_Q12).rows)
_Q12_OBJECTS = _CATALOG.segment_ids("orders") + _CATALOG.segment_ids("lineitem")


@st.composite
def arrival_orders(draw):
    """A permutation of all objects Q12 needs."""
    return draw(st.permutations(_Q12_OBJECTS))


class TestMJoinInvariants:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(order=arrival_orders(), cache_capacity=st.integers(min_value=2, max_value=12))
    def test_any_arrival_order_any_cache_size_gives_the_same_answer(self, order, cache_capacity):
        cache = ObjectCache(cache_capacity, policy=MaxProgressEviction())
        manager = MJoinStateManager(_Q12, _CATALOG, cache)
        pending_requests = list(order)
        while pending_requests:
            for segment_id in pending_requests:
                manager.on_arrival(segment_id, _CATALOG.resolve_segment_id(segment_id))
            pending_requests = manager.next_cycle_requests()
        assert canonical_rows(manager.results()) == _EXPECTED_Q12
        assert manager.is_complete()

    @settings(max_examples=15, deadline=None)
    @given(order=arrival_orders())
    def test_every_subplan_is_executed_or_pruned_exactly_once(self, order):
        cache = ObjectCache(4, policy=MaxProgressEviction())
        manager = MJoinStateManager(_Q12, _CATALOG, cache)
        executed_total = 0
        pruned_total = 0
        pending_requests = list(order)
        while pending_requests:
            for segment_id in pending_requests:
                outcome = manager.on_arrival(segment_id, _CATALOG.resolve_segment_id(segment_id))
                executed_total += outcome.executed_subplans
                pruned_total += outcome.pruned_subplans
            pending_requests = manager.next_cycle_requests()
        assert executed_total + pruned_total == manager.tracker.total_subplans
        assert executed_total == manager.tracker.num_executed
        assert pruned_total == manager.tracker.num_pruned
        assert manager.tracker.num_pending == 0


class TestCacheInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=8),
        arrivals=st.lists(st.sampled_from(_Q12_OBJECTS), min_size=1, max_size=40, unique=True),
        policy=st.sampled_from(
            [MaxProgressEviction(), MaxPendingSubplansEviction(), LRUEviction(), FIFOEviction()]
        ),
    )
    def test_cache_never_exceeds_capacity_and_victims_are_cached(self, capacity, arrivals, policy):
        tracker = SubplanTracker(_Q12, _CATALOG)
        cache = ObjectCache(capacity, policy=policy)
        for segment_id in arrivals:
            if segment_id in cache:
                continue
            if cache.is_full:
                victim = cache.evict(segment_id, tracker)
                assert victim not in cache
            cache.add(segment_id, segment_id)
            assert len(cache) <= capacity
        assert cache.num_insertions == len({a for a in arrivals})


class TestAggregateInvariants:
    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(
            st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(-1000, 1000)),
            min_size=1,
            max_size=60,
        ),
        split=st.integers(min_value=0, max_value=60),
    )
    def test_incremental_aggregation_matches_single_pass(self, values, split):
        rows = [{"g": group, "v": value} for group, value in values]
        specs = [
            AggregateSpec("count", None, "cnt"),
            AggregateSpec("sum", col("v"), "total"),
            AggregateSpec("min", col("v"), "low"),
            AggregateSpec("max", col("v"), "high"),
            AggregateSpec("avg", col("v"), "mean"),
        ]
        one_pass = AggregateState(["g"], specs)
        one_pass.add_all(rows)
        split = min(split, len(rows))
        two_pass = AggregateState(["g"], specs)
        two_pass.add_all(rows[:split])
        two_pass.add_all(rows[split:])
        key = lambda row: row["g"]
        assert sorted(one_pass.results(), key=key) == sorted(two_pass.results(), key=key)


class TestSchedulerInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        groups=st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=30),
        switches=st.lists(st.integers(min_value=0, max_value=4), max_size=10),
    )
    def test_rank_is_at_least_query_count_and_waiting_is_non_negative(self, groups, switches):
        env = Environment()
        scheduler = RankBasedScheduler()
        for index, group in enumerate(groups):
            request = GetRequest(f"c{index}/t.{index}", f"c{index}", f"q{index}", env.event())
            scheduler.add_request(request, group)
        for group in switches:
            scheduler.notify_switch(group)
        for group in scheduler.pending_groups():
            assert scheduler.rank(group) >= len(scheduler.queries_on_group(group))
        for query_id in scheduler.pending_queries():
            assert scheduler.waiting_time(query_id) >= 0
        chosen = scheduler.choose_next_group(None)
        assert chosen in scheduler.pending_groups()
        best_rank = max(scheduler.rank(group) for group in scheduler.pending_groups())
        assert scheduler.rank(chosen) == pytest.approx(best_rank)

    @settings(max_examples=30, deadline=None)
    @given(
        keys=st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.integers(min_value=0, max_value=9),
                st.sampled_from(["q0", "q1"]),
            ),
            min_size=1,
            max_size=25,
            unique=True,
        )
    )
    def test_semantic_ordering_is_a_permutation(self, keys):
        env = Environment()
        requests = [
            GetRequest(f"c/{table}.{index}", "c", query, env.event())
            for table, index, query in keys
        ]
        ordered = SemanticRoundRobinOrdering().order(requests)
        assert sorted(r.request_id for r in ordered) == sorted(r.request_id for r in requests)


class TestLayoutInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        num_clients=st.integers(min_value=1, max_value=6),
        num_objects=st.integers(min_value=1, max_value=15),
        clients_per_group=st.integers(min_value=1, max_value=3),
    )
    def test_group_count_bounds(self, num_clients, num_objects, clients_per_group):
        clients = {
            f"c{c}": [f"c{c}/t.{i}" for i in range(num_objects)] for c in range(num_clients)
        }
        layout = ClientsPerGroupLayout(clients_per_group).build(clients)
        expected_groups = -(-num_clients // clients_per_group)  # ceil division
        assert layout.num_groups == expected_groups
        incremental = IncrementalLayout().build(clients)
        assert incremental.num_groups <= num_clients
